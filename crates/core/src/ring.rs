//! The per-function DMA command ring.
//!
//! "In addition to the NeSC-specific control registers ..., each VF also
//! exposes a set of registers for controlling a DMA ring buffer, which is
//! the de facto standard for communicating with devices" (paper §V).
//!
//! A ring is an array of 64-byte descriptors in *host memory*. The guest
//! driver writes descriptors at its tail and rings the `RingTail`
//! doorbell; the device DMAs descriptors from its head up to the tail,
//! turning each into a block request. Completions come back as MSIs
//! carrying the descriptor's id (the device model's
//! [`NescOutput::Completion`][crate::NescOutput]).
//!
//! Descriptor layout (little-endian):
//!
//! ```text
//! [0]      op        1 = read, 2 = write
//! [8..16]  id        completion-correlation token
//! [16..24] lba       first virtual block
//! [24..28] count     blocks
//! [32..40] buffer    host address of the data buffer
//! ```

use nesc_extent::{validate_count, validate_slba, GuestFault, Untrusted, Vlba};
use nesc_pcie::{HostAddr, HostMemory};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

/// Size of one ring descriptor.
pub const DESCRIPTOR_BYTES: u64 = 64;

/// One command descriptor.
///
/// Descriptors are DMAed out of guest-writable host memory, so the
/// address and count arrive quarantined in [`Untrusted`];
/// [`to_request`](RingDescriptor::to_request) is the bounds proof that
/// releases them. The buffer pointer stays a bare [`HostAddr`] — DMA
/// targets are policed by the memory model, not the block validators.
// nesc-lint: guest-input
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingDescriptor {
    /// The operation.
    pub op: BlockOp,
    /// Completion-correlation id.
    pub id: RequestId,
    /// First virtual block. Ring descriptors come from the guest, so the
    /// address is by definition in the function's virtual space — and
    /// unproven until validated.
    pub lba: Untrusted<Vlba>,
    /// Block count.
    pub count: Untrusted<u32>,
    /// Host data buffer.
    pub buffer: HostAddr,
}

impl RingDescriptor {
    /// Builds a descriptor from trusted host-side values (drivers,
    /// tests, benches), quarantining them exactly as the DMA decode
    /// would.
    pub fn new(op: BlockOp, id: RequestId, lba: Vlba, count: u32, buffer: HostAddr) -> Self {
        RingDescriptor {
            op,
            id,
            lba: Untrusted::new(lba),
            count: Untrusted::new(count),
            buffer,
        }
    }

    /// Encodes to the 64-byte wire form.
    pub fn encode(&self) -> [u8; DESCRIPTOR_BYTES as usize] {
        let mut b = [0u8; DESCRIPTOR_BYTES as usize];
        b[0] = match self.op {
            BlockOp::Read => 1,
            BlockOp::Write => 2,
        };
        b[8..16].copy_from_slice(&self.id.0.to_le_bytes());
        b[16..24].copy_from_slice(&self.lba.into_unchecked().0.to_le_bytes());
        b[24..28].copy_from_slice(&self.count.into_unchecked().to_le_bytes());
        b[32..40].copy_from_slice(&self.buffer.to_le_bytes());
        b
    }

    /// Decodes the wire form; `None` on a malformed opcode or zero count.
    // nesc-lint: guest-input
    pub fn decode(b: &[u8; DESCRIPTOR_BYTES as usize]) -> Option<RingDescriptor> {
        let op = match b[0] {
            1 => BlockOp::Read,
            2 => BlockOp::Write,
            _ => return None,
        };
        let le32 = |off: usize| {
            b.get(off..off + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
        };
        let le64 = |off: usize| {
            b.get(off..off + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
        };
        let count = le32(24)?;
        if count == 0 {
            return None;
        }
        Some(RingDescriptor {
            op,
            id: RequestId(le64(8)?),
            lba: Untrusted::new(Vlba(le64(16)?)),
            count: Untrusted::new(count),
            buffer: le64(32)?,
        })
    }

    /// The block request this descriptor describes, released through the
    /// overflow bounds proofs.
    ///
    /// The capacity bound here is only "does not wrap the 64-bit virtual
    /// space" — whether the range is inside the *function's* mapping is
    /// the translation walk's job, which fails closed with a miss
    /// interrupt, exactly like the paper's hardware.
    ///
    /// # Errors
    ///
    /// [`GuestFault::ZeroLength`] / [`GuestFault::SlbaOutOfRange`] on a
    /// zero count or an `lba + count` that overflows.
    pub fn to_request(&self) -> Result<BlockRequest, GuestFault> {
        let count = validate_count(self.count)?;
        let lba = validate_slba(self.lba, count, u64::MAX)?;
        Ok(BlockRequest::new(self.id, self.op, lba, count))
    }
}

/// Device-side ring state for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RingState {
    /// Host base address of the descriptor array.
    pub base: HostAddr,
    /// Number of descriptor slots (power of two).
    pub entries: u32,
    /// Device consumer index.
    pub head: u32,
}

impl RingState {
    /// Whether the ring registers describe a usable ring.
    pub fn is_configured(&self) -> bool {
        self.base != 0 && self.entries >= 2 && self.entries.is_power_of_two()
    }

    /// Consumes descriptors from `head` up to `tail`, decoding each from
    /// host memory. Malformed descriptors are skipped (a real device sets
    /// an error bit; the model counts on the driver being sane and simply
    /// drops them).
    pub fn consume(&mut self, mem: &HostMemory, tail: u32) -> Vec<RingDescriptor> {
        let mut out = Vec::new();
        if !self.is_configured() {
            return out;
        }
        let tail = tail % self.entries;
        while self.head != tail {
            let slot = self.head % self.entries;
            let mut buf = [0u8; DESCRIPTOR_BYTES as usize];
            mem.read(self.base + slot as u64 * DESCRIPTOR_BYTES, &mut buf);
            if let Some(d) = RingDescriptor::decode(&buf) {
                out.push(d);
            }
            self.head = (self.head + 1) % self.entries;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn descriptor_roundtrip() {
        let d = RingDescriptor::new(BlockOp::Write, RequestId(0xDEAD), Vlba(42), 8, 0x1234_5678);
        assert_eq!(RingDescriptor::decode(&d.encode()), Some(d));
        assert_eq!(d.to_request().unwrap().block_count, 8);
    }

    #[test]
    fn malformed_descriptors_rejected() {
        let mut b = [0u8; DESCRIPTOR_BYTES as usize];
        assert_eq!(RingDescriptor::decode(&b), None, "opcode 0");
        b[0] = 1; // read, but count 0
        assert_eq!(RingDescriptor::decode(&b), None, "zero count");
        b[0] = 9;
        b[24] = 1;
        assert_eq!(RingDescriptor::decode(&b), None, "unknown opcode");
    }

    #[test]
    fn to_request_rejects_wrapping_ranges() {
        // A count that runs past u64::MAX can otherwise overflow the
        // walk's `vlba + blocks` arithmetic — a guest-triggerable debug
        // panic before the quarantine types landed.
        let d = RingDescriptor::new(BlockOp::Read, RequestId(1), Vlba(u64::MAX), 2, 0x8000);
        assert!(matches!(
            d.to_request(),
            Err(GuestFault::SlbaOutOfRange { .. })
        ));
    }

    #[test]
    fn ring_consume_wraps() {
        let mut mem = HostMemory::new();
        let base = mem.alloc(4 * DESCRIPTOR_BYTES, 64);
        let mut ring = RingState {
            base,
            entries: 4,
            head: 0,
        };
        assert!(ring.is_configured());
        let write_desc = |mem: &mut HostMemory, slot: u64, id: u64| {
            let d = RingDescriptor::new(BlockOp::Read, RequestId(id), Vlba(id), 1, 0x8000);
            mem.write(base + slot * DESCRIPTOR_BYTES, &d.encode());
        };
        // Fill slots 0..3, consume to tail=3.
        for s in 0..3 {
            write_desc(&mut mem, s, s + 1);
        }
        let got = ring.consume(&mem, 3);
        assert_eq!(
            got.iter().map(|d| d.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Wrap: slots 3, 0 → tail=1.
        write_desc(&mut mem, 3, 4);
        write_desc(&mut mem, 0, 5);
        let got = ring.consume(&mem, 1);
        assert_eq!(got.iter().map(|d| d.id.0).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(ring.head, 1);
    }

    #[test]
    fn unconfigured_ring_consumes_nothing() {
        let mem = HostMemory::new();
        let mut ring = RingState::default();
        assert!(!ring.is_configured());
        assert!(ring.consume(&mem, 3).is_empty());
        // Non-power-of-two entries are also rejected.
        let mut bad = RingState {
            base: 0x1000,
            entries: 3,
            head: 0,
        };
        assert!(bad.consume(&mem, 1).is_empty());
    }

    proptest! {
        #[test]
        fn prop_descriptor_roundtrip(
            id in any::<u64>(),
            lba in any::<u64>(),
            count in 1u32..u32::MAX,
            buffer in any::<u64>(),
            is_write in any::<bool>(),
        ) {
            let d = RingDescriptor::new(
                if is_write { BlockOp::Write } else { BlockOp::Read },
                RequestId(id),
                Vlba(lba),
                count,
                buffer,
            );
            prop_assert_eq!(RingDescriptor::decode(&d.encode()), Some(d));
        }
    }
}
