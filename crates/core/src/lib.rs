#![warn(missing_docs)]

//! # NeSC — the self-virtualizing nested storage controller
//!
//! This crate is the reproduction's model of the paper's contribution
//! (Gottesman & Etsion, *NeSC: Self-Virtualizing Nested Storage
//! Controller*, MICRO 2016): a PCIe storage controller that exposes itself
//! as one **physical function** (PF, the hypervisor's full-featured
//! controller) plus up to 64 **virtual functions** (VFs), each a plain
//! block device directly assigned to a guest VM and confined — *by
//! hardware* — to the file the hypervisor bound it to.
//!
//! The model follows the paper's microarchitecture (Figs. 6–8):
//!
//! * per-client **request queues**, drained **round-robin** by the virtual
//!   function multiplexer to prevent starvation;
//! * requests split into 1 KiB blocks, pushed through a shared **vLBA
//!   queue** into the **translation unit**;
//! * the translation unit consults an 8-entry **block translation
//!   lookaside buffer** ([`Btlb`]) and, on miss, the **block-walk unit**
//!   traverses the VF's extent tree in *host memory* with one DMA read per
//!   level, overlapping two walks to hide DMA latency;
//! * translated pLBAs queue for the **data-transfer unit**, which moves
//!   real bytes between the on-device [`BlockStore`][nesc_storage::BlockStore]
//!   and host memory through the prototype's DMA engine (≈800 MB/s reads,
//!   ≈1 GB/s writes) and the PCIe gen2 x8 link;
//! * reads of file *holes* zero-fill the destination buffer; writes to
//!   unallocated or pruned ranges set the VF's `MissAddress`/`MissSize`
//!   registers, **interrupt the hypervisor**, and stall that VF until the
//!   host allocates blocks and pokes `RewalkTree`;
//! * the PF bypasses translation entirely through the **out-of-band
//!   channel**, so stalled VF writes can never block hypervisor I/O.
//!
//! Both the *function* (real bytes, real trees, real isolation) and the
//! *timing* (queueing on shared units, DMA and media bandwidths) are
//! modeled; the benchmark crate regenerates the paper's figures from the
//! timing side while the test suites verify the security properties on the
//! functional side.
//!
//! ## Quick tour
//!
//! ```
//! use nesc_core::{NescConfig, NescDevice, FuncId};
//! use nesc_extent::{ExtentTree, ExtentMapping, Vlba, Plba};
//! use nesc_pcie::HostMemory;
//! use nesc_storage::{BlockRequest, BlockOp, RequestId};
//! use nesc_sim::SimTime;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! // Host memory shared between hypervisor and device.
//! let mem = Rc::new(RefCell::new(HostMemory::new()));
//! let mut dev = NescDevice::new(NescConfig::prototype(), Rc::clone(&mem));
//!
//! // The hypervisor maps a "file" (blocks 100..116 on the device) to a VF.
//! let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 16)].into_iter().collect();
//! let root = tree.serialize(&mut mem.borrow_mut());
//! let vf = dev.create_vf(root, 16).unwrap();
//!
//! // A guest writes block 0 of its virtual disk.
//! let buf = mem.borrow_mut().alloc(1024, 8);
//! mem.borrow_mut().write(buf, &[7u8; 1024]);
//! let t = dev.ring_doorbell(SimTime::ZERO);
//! dev.submit(t, vf, BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(0), 1), buf);
//!
//! let outs = dev.advance(SimTime::from_nanos(1_000_000));
//! assert!(outs.iter().any(|o| o.is_completion()));
//! // The bytes landed on *physical* block 100 — the VF never named it.
//! assert_eq!(dev.store().read_block(Plba(100)).unwrap(), vec![7u8; 1024]);
//! ```

pub mod btlb;
pub mod config;
pub mod device;
pub mod function;
pub mod regs;
pub mod ring;
pub mod stats;
pub mod trace;

pub use btlb::Btlb;
pub use config::NescConfig;
pub use device::{CompletionStatus, FuncId, IrqReason, NescDevice, NescOutput, VfError};
pub use function::{FunctionContext, FunctionKind};
pub use regs::FunctionRegisters;
pub use ring::{RingDescriptor, RingState};
pub use stats::{DeviceStats, FuncStats};
pub use trace::RequestTrace;
