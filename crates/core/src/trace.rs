//! Per-request pipeline traces.
//!
//! When tracing is enabled ([`NescDevice::set_tracing`]), the device
//! records one [`RequestTrace`] per completed request: when it arrived,
//! when the multiplexer dispatched it, when it completed, and how its
//! translation went (BTLB hits vs walks, whether it stalled on a miss).
//! This is the observability a driver developer gets from a real
//! controller's debug counters, and what the tree-depth and BTLB
//! harnesses use to attribute time.
//!
//! [`NescDevice::set_tracing`]: crate::NescDevice::set_tracing

use nesc_extent::Vlba;
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, RequestId};

use crate::device::{CompletionStatus, FuncId};

/// The recorded life of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// Request identity.
    pub id: RequestId,
    /// The function it was submitted to.
    pub func: FuncId,
    /// Read or write.
    pub op: BlockOp,
    /// First logical block, in the submitting function's virtual space.
    pub lba: Vlba,
    /// Blocks covered.
    pub blocks: u64,
    /// When the doorbell delivered it to the device.
    pub arrived: SimTime,
    /// When processing began (multiplexer dispatch / OOB accept).
    pub dispatched: SimTime,
    /// When the completion was signalled.
    pub completed: SimTime,
    /// Block walks this request triggered.
    pub walks: u32,
    /// BTLB hits this request enjoyed.
    pub btlb_hits: u32,
    /// Whether the request stalled on a translation miss at least once.
    pub stalled: bool,
    /// Final status.
    pub status: CompletionStatus,
}

impl RequestTrace {
    /// Debug-asserts the timestamp invariant every recorded trace must
    /// satisfy: `arrived <= dispatched <= completed`. The accessors below
    /// would silently saturate an out-of-order trace to zero, masking the
    /// recording bug; asserting here turns it into a loud failure on
    /// debug builds.
    fn assert_monotonic(&self) {
        debug_assert!(
            self.arrived <= self.dispatched && self.dispatched <= self.completed,
            "trace {:?} timestamps not monotonic: arrived {} dispatched {} completed {}",
            self.id,
            self.arrived,
            self.dispatched,
            self.completed
        );
    }

    /// Total device-observed latency.
    pub fn latency(&self) -> SimDuration {
        self.assert_monotonic();
        self.completed.saturating_since(self.arrived)
    }

    /// Time spent queued before dispatch.
    pub fn queueing(&self) -> SimDuration {
        self.assert_monotonic();
        self.dispatched.saturating_since(self.arrived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_durations() {
        let t = RequestTrace {
            id: RequestId(1),
            func: FuncId(1),
            op: BlockOp::Read,
            lba: Vlba(0),
            blocks: 4,
            arrived: SimTime::from_nanos(100),
            dispatched: SimTime::from_nanos(250),
            completed: SimTime::from_nanos(1_100),
            walks: 1,
            btlb_hits: 3,
            stalled: false,
            status: CompletionStatus::Ok,
        };
        assert_eq!(t.latency().as_nanos(), 1_000);
        assert_eq!(t.queueing().as_nanos(), 150);
    }
}
