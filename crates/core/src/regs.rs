//! Per-function control registers.
//!
//! Each function (PF and VFs alike) exposes a 2048-byte register window in
//! its BAR, backed by one shared SRAM array in the device (paper §V: "the
//! prototype uses a single 130KB SRAM array (2048B per function)"). The
//! NeSC-specific registers and their offsets:
//!
//! | offset | size | register        |
//! |--------|------|-----------------|
//! | 0x00   | 8    | `ExtentTreeRoot` — host address of the VF's tree root |
//! | 0x08   | 8    | `MissAddress`    — vLBA (bytes) of a stalled write miss |
//! | 0x10   | 4    | `MissSize`       — bytes the host must allocate |
//! | 0x14   | 4    | `RewalkTree`     — host writes 1 to un-stall the VF |
//! | 0x18   | 8    | `DeviceSize`     — virtual device size in blocks |
//! | 0x20   | 8    | `RingBase`       — host address of the command ring |
//! | 0x28   | 4    | `RingEntries`    — ring slots (power of two) |
//! | 0x2C   | 4    | `RingTail`       — doorbell: producer index |
//!
//! MMIO access is offset-based so the hypervisor/guest drivers in the
//! `nesc-hypervisor` crate interact with the device exactly like a real
//! driver pokes a BAR.

use nesc_extent::Untrusted;

/// Byte size of one function's register window.
pub const REG_WINDOW_BYTES: u64 = 2048;

/// Quarantines a `RingTail` doorbell write.
///
/// The doorbell is the one register a *guest* driver writes on the data
/// path, so the producer index it carries is attacker-controlled; the
/// device must prove it against `RingEntries` (via
/// `nesc_extent::validate_ring_tail`) before any ring arithmetic. The
/// remaining registers (`RingBase`, `RingEntries`, `ExtentTreeRoot`, …)
/// are hypervisor-owned control state and stay raw.
// nesc-lint: guest-input
pub fn doorbell(value: u64) -> Untrusted<u32> {
    Untrusted::new(value as u32)
}

/// Register offsets within a function's window.
pub mod offsets {
    /// `ExtentTreeRoot` (8 bytes).
    pub const EXTENT_TREE_ROOT: u64 = 0x00;
    /// `MissAddress` (8 bytes).
    pub const MISS_ADDRESS: u64 = 0x08;
    /// `MissSize` (4 bytes).
    pub const MISS_SIZE: u64 = 0x10;
    /// `RewalkTree` (4 bytes).
    pub const REWALK_TREE: u64 = 0x14;
    /// `DeviceSize` in blocks (8 bytes).
    pub const DEVICE_SIZE: u64 = 0x18;
    /// `RingBase` (8 bytes): host address of the command ring.
    pub const RING_BASE: u64 = 0x20;
    /// `RingEntries` (4 bytes): descriptor slots, power of two.
    pub const RING_ENTRIES: u64 = 0x28;
    /// `RingTail` (4 bytes): doorbell — the driver's producer index.
    pub const RING_TAIL: u64 = 0x2C;
}

/// The register file of one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FunctionRegisters {
    /// Host address of the extent tree root (set by the hypervisor at VF
    /// creation, updated on tree rebuilds).
    pub extent_tree_root: u64,
    /// vLBA byte address of the access that missed (device-set).
    pub miss_address: u64,
    /// Bytes of unmapped space starting at `miss_address` (device-set).
    pub miss_size: u32,
    /// Host writes 1 to re-issue stalled requests to the walk unit.
    pub rewalk_tree: u32,
    /// Virtual device size in 1 KiB blocks.
    pub device_size_blocks: u64,
    /// Host address of the command ring (0 = ring not configured).
    pub ring_base: u64,
    /// Command-ring slots (power of two).
    pub ring_entries: u32,
}

impl FunctionRegisters {
    /// Fresh register file for a new function.
    pub fn new(extent_tree_root: u64, device_size_blocks: u64) -> Self {
        FunctionRegisters {
            extent_tree_root,
            device_size_blocks,
            ..Default::default()
        }
    }

    /// MMIO read at a window offset. Unknown offsets read as zero (like
    /// reserved PCIe register space).
    pub fn mmio_read(&self, offset: u64) -> u64 {
        match offset {
            offsets::EXTENT_TREE_ROOT => self.extent_tree_root,
            offsets::MISS_ADDRESS => self.miss_address,
            offsets::MISS_SIZE => self.miss_size as u64,
            offsets::REWALK_TREE => self.rewalk_tree as u64,
            offsets::DEVICE_SIZE => self.device_size_blocks,
            offsets::RING_BASE => self.ring_base,
            offsets::RING_ENTRIES => self.ring_entries as u64,
            _ => 0,
        }
    }

    /// MMIO write at a window offset; returns `true` if the write hit the
    /// `RewalkTree` trigger (the device acts on it). Device-owned registers
    /// (`MissAddress`, `MissSize`) ignore host writes.
    pub fn mmio_write(&mut self, offset: u64, value: u64) -> bool {
        match offset {
            offsets::EXTENT_TREE_ROOT => {
                self.extent_tree_root = value;
                false
            }
            offsets::REWALK_TREE => {
                self.rewalk_tree = value as u32;
                value == 1
            }
            offsets::DEVICE_SIZE => {
                self.device_size_blocks = value;
                false
            }
            offsets::RING_BASE => {
                self.ring_base = value;
                false
            }
            offsets::RING_ENTRIES => {
                self.ring_entries = value as u32;
                false
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_host_writable_registers() {
        let mut r = FunctionRegisters::new(0x1000, 64);
        assert_eq!(r.mmio_read(offsets::EXTENT_TREE_ROOT), 0x1000);
        assert_eq!(r.mmio_read(offsets::DEVICE_SIZE), 64);
        r.mmio_write(offsets::EXTENT_TREE_ROOT, 0x2000);
        assert_eq!(r.extent_tree_root, 0x2000);
        r.mmio_write(offsets::DEVICE_SIZE, 128);
        assert_eq!(r.device_size_blocks, 128);
    }

    #[test]
    fn rewalk_trigger_detected() {
        let mut r = FunctionRegisters::default();
        assert!(!r.mmio_write(offsets::REWALK_TREE, 0));
        assert!(r.mmio_write(offsets::REWALK_TREE, 1));
        assert_eq!(r.rewalk_tree, 1);
    }

    #[test]
    fn device_owned_registers_ignore_writes() {
        let mut r = FunctionRegisters {
            miss_address: 0xAAAA,
            miss_size: 4096,
            ..Default::default()
        };
        assert!(!r.mmio_write(offsets::MISS_ADDRESS, 0));
        assert!(!r.mmio_write(offsets::MISS_SIZE, 0));
        assert_eq!(r.miss_address, 0xAAAA);
        assert_eq!(r.miss_size, 4096);
    }

    #[test]
    fn ring_registers_roundtrip() {
        let mut r = FunctionRegisters::default();
        r.mmio_write(offsets::RING_BASE, 0xB000);
        r.mmio_write(offsets::RING_ENTRIES, 256);
        assert_eq!(r.mmio_read(offsets::RING_BASE), 0xB000);
        assert_eq!(r.mmio_read(offsets::RING_ENTRIES), 256);
    }

    #[test]
    fn reserved_space_reads_zero() {
        let r = FunctionRegisters::default();
        assert_eq!(r.mmio_read(0x100), 0);
        assert_eq!(r.mmio_read(REG_WINDOW_BYTES - 8), 0);
    }
}
