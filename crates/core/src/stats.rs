//! Device statistics.
//!
//! Counters the benchmark harnesses and ablation studies read out:
//! translation behaviour (walks, levels, BTLB hits), data movement, and
//! miss-interrupt traffic.

/// Cumulative counters of one [`NescDevice`][crate::NescDevice].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Requests completed successfully.
    pub requests_completed: u64,
    /// Requests completed with an error status.
    pub requests_failed: u64,
    /// 1 KiB blocks read from the medium.
    pub blocks_read: u64,
    /// 1 KiB blocks written to the medium.
    pub blocks_written: u64,
    /// Hole reads served by zero-fill DMA (no media access).
    pub zero_fill_blocks: u64,
    /// Per-block BTLB lookups (every translated block consults the BTLB).
    pub btlb_lookups: u64,
    /// Per-block BTLB lookups satisfied from a cached extent.
    pub btlb_hits: u64,
    /// Block walks executed (BTLB misses that reached the walk unit).
    pub walks: u64,
    /// Total tree levels traversed across all walks (each level is one
    /// host-memory DMA).
    pub walk_levels: u64,
    /// Write-miss / pruned-mapping interrupts raised to the hypervisor.
    pub miss_interrupts: u64,
    /// Requests the PF pushed through the out-of-band channel.
    pub oob_requests: u64,
}

impl DeviceStats {
    /// Mean levels per walk (0 if no walk happened) — the depth the
    /// translation actually paid, used by the tree-depth ablation.
    pub fn mean_walk_depth(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walk_levels as f64 / self.walks as f64
        }
    }

    /// Fraction of per-block BTLB lookups that hit (0 if none happened) —
    /// the windowed deltas of the underlying counters feed the perfmon
    /// BTLB probe.
    pub fn btlb_hit_ratio(&self) -> f64 {
        if self.btlb_lookups == 0 {
            0.0
        } else {
            self.btlb_hits as f64 / self.btlb_lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_walk_depth_handles_empty() {
        assert_eq!(DeviceStats::default().mean_walk_depth(), 0.0);
        let s = DeviceStats {
            walks: 4,
            walk_levels: 10,
            ..Default::default()
        };
        assert!((s.mean_walk_depth() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn btlb_hit_ratio_handles_empty() {
        assert_eq!(DeviceStats::default().btlb_hit_ratio(), 0.0);
        let s = DeviceStats {
            btlb_lookups: 8,
            btlb_hits: 6,
            ..Default::default()
        };
        assert!((s.btlb_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
