//! Device statistics.
//!
//! Counters the benchmark harnesses and ablation studies read out:
//! translation behaviour (walks, levels, BTLB hits), data movement, and
//! miss-interrupt traffic. Device-wide aggregates live in the flat
//! [`DeviceStats`]; per-function service counters live in [`FuncStats`],
//! a struct-of-arrays indexed by dense function id so the request
//! completion path touches two adjacent `u64` slots instead of a wide
//! per-function context struct.

/// Cumulative counters of one [`NescDevice`][crate::NescDevice].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Requests completed successfully.
    pub requests_completed: u64,
    /// Requests completed with an error status.
    pub requests_failed: u64,
    /// 1 KiB blocks read from the medium.
    pub blocks_read: u64,
    /// 1 KiB blocks written to the medium.
    pub blocks_written: u64,
    /// Hole reads served by zero-fill DMA (no media access).
    pub zero_fill_blocks: u64,
    /// Per-block BTLB lookups (every translated block consults the BTLB).
    pub btlb_lookups: u64,
    /// Per-block BTLB lookups satisfied from a cached extent.
    pub btlb_hits: u64,
    /// Block walks executed (BTLB misses that reached the walk unit).
    pub walks: u64,
    /// Total tree levels traversed across all walks (each level is one
    /// host-memory DMA).
    pub walk_levels: u64,
    /// Write-miss / pruned-mapping interrupts raised to the hypervisor.
    pub miss_interrupts: u64,
    /// Requests the PF pushed through the out-of-band channel.
    pub oob_requests: u64,
}

impl DeviceStats {
    /// Mean levels per walk (0 if no walk happened) — the depth the
    /// translation actually paid, used by the tree-depth ablation.
    pub fn mean_walk_depth(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.walk_levels as f64 / self.walks as f64
        }
    }

    /// Fraction of per-block BTLB lookups that hit (0 if none happened) —
    /// the windowed deltas of the underlying counters feed the perfmon
    /// BTLB probe.
    pub fn btlb_hit_ratio(&self) -> f64 {
        if self.btlb_lookups == 0 {
            0.0
        } else {
            self.btlb_hits as f64 / self.btlb_lookups as f64
        }
    }
}

/// Per-function service counters in struct-of-arrays layout, indexed by
/// dense function id (the device's function table index). The hot
/// completion path increments one slot in each array; the fairness and
/// QoS harnesses read them back per function.
#[derive(Debug, Clone, Default)]
pub struct FuncStats {
    requests: Vec<u64>,
    blocks: Vec<u64>,
}

impl FuncStats {
    /// Counters for `functions` dense function slots, all zero.
    pub fn with_len(functions: usize) -> Self {
        FuncStats {
            requests: vec![0; functions],
            blocks: vec![0; functions],
        }
    }

    /// Ensures at least `functions` slots exist (new slots start at zero).
    pub fn grow_to(&mut self, functions: usize) {
        if self.requests.len() < functions {
            self.requests.resize(functions, 0);
            self.blocks.resize(functions, 0);
        }
    }

    /// Zeroes one function's counters (VF slot reuse).
    pub fn reset(&mut self, func: usize) {
        if let Some(r) = self.requests.get_mut(func) {
            *r = 0;
        }
        if let Some(b) = self.blocks.get_mut(func) {
            *b = 0;
        }
    }

    /// Credits one served request moving `blocks` blocks to `func`.
    pub fn credit(&mut self, func: usize, requests: u64, blocks: u64) {
        self.requests[func] += requests;
        self.blocks[func] += blocks;
    }

    /// `(requests, blocks)` served for `func`; zeros for unknown slots.
    pub fn get(&self, func: usize) -> (u64, u64) {
        (
            self.requests.get(func).copied().unwrap_or(0),
            self.blocks.get(func).copied().unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_stats_grow_reset_credit() {
        let mut f = FuncStats::with_len(2);
        f.credit(1, 1, 64);
        f.credit(1, 1, 4);
        assert_eq!(f.get(1), (2, 68));
        assert_eq!(f.get(0), (0, 0));
        assert_eq!(f.get(9), (0, 0), "unknown slots read as zero");
        f.grow_to(4);
        f.credit(3, 1, 8);
        assert_eq!(f.get(3), (1, 8));
        f.grow_to(2); // never shrinks
        assert_eq!(f.get(3), (1, 8));
        f.reset(1);
        assert_eq!(f.get(1), (0, 0));
        f.reset(17); // out of range is a no-op
    }

    #[test]
    fn mean_walk_depth_handles_empty() {
        assert_eq!(DeviceStats::default().mean_walk_depth(), 0.0);
        let s = DeviceStats {
            walks: 4,
            walk_levels: 10,
            ..Default::default()
        };
        assert!((s.mean_walk_depth() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn btlb_hit_ratio_handles_empty() {
        assert_eq!(DeviceStats::default().btlb_hit_ratio(), 0.0);
        let s = DeviceStats {
            btlb_lookups: 8,
            btlb_hits: 6,
            ..Default::default()
        };
        assert!((s.btlb_hit_ratio() - 0.75).abs() < 1e-12);
    }
}
