//! Per-function state.
//!
//! The device "must maintain a separate context for each PCIe device (PF
//! and VFs)" (paper §V): its register window, its client request queue, and
//! — for VFs whose write translation missed — the stalled request awaiting
//! the hypervisor's `RewalkTree` signal.

use std::collections::VecDeque;

use nesc_pcie::HostAddr;
use nesc_sim::SimTime;
use nesc_storage::BlockRequest;

use crate::regs::FunctionRegisters;

/// Whether a function is the hypervisor-facing PF or a client VF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FunctionKind {
    /// The physical function: full device, pLBA-addressed, bypasses
    /// translation through the out-of-band channel.
    Physical,
    /// A virtual function: vLBA-addressed, confined to its extent tree.
    Virtual,
}

/// A request waiting in a function's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRequest {
    /// The block request.
    pub req: BlockRequest,
    /// Host buffer the data moves to/from (contiguous, one scatter entry).
    pub buf: HostAddr,
    /// When it reached the device.
    pub arrived: SimTime,
}

/// A request parked mid-flight on a translation miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalledRequest {
    /// The original pending request.
    pub pending: PendingRequest,
    /// Index of the first block that has not completed (the miss point).
    pub resume_block: u64,
    /// When the device parked it.
    pub stalled_at: SimTime,
}

/// Default QoS priority assigned to new functions.
pub const DEFAULT_PRIORITY: u8 = 1;
/// Number of priority classes supported (0..NUM_PRIORITIES).
pub const NUM_PRIORITIES: u8 = 4;

/// Everything the device keeps per function.
#[derive(Debug, Clone)]
pub struct FunctionContext {
    /// PF or VF.
    pub kind: FunctionKind,
    /// The function's register window.
    pub regs: FunctionRegisters,
    /// Client request queue, drained round-robin by the multiplexer.
    pub queue: VecDeque<PendingRequest>,
    /// A write (or pruned read) stalled on a translation miss.
    pub stalled: Option<StalledRequest>,
    /// Cleared when the hypervisor deletes the VF; dead slots reject I/O
    /// and can be reused for new VFs.
    pub alive: bool,
    /// QoS priority of the function (0 = highest). The multiplexer serves
    /// the lowest-numbered priority class with pending work, round-robin
    /// within it — the per-VF priority extension of paper §IV-D.
    pub priority: u8,
    /// Device-side consumer index of the function's command ring.
    pub ring_head: u32,
    /// For a *nested* VF (paper §IV-A's aside on nested virtualization):
    /// the parent VF whose address space this function's tree maps into.
    /// Translation composes: child tree first, then every ancestor's.
    pub parent: Option<crate::device::FuncId>,
}

impl FunctionContext {
    /// Creates a live function context.
    pub fn new(kind: FunctionKind, regs: FunctionRegisters) -> Self {
        FunctionContext {
            kind,
            regs,
            queue: VecDeque::new(),
            stalled: None,
            alive: true,
            priority: DEFAULT_PRIORITY,
            ring_head: 0,
            parent: None,
        }
    }

    /// Whether the multiplexer may dequeue from this function at `now`
    /// (a queued request only becomes visible once its doorbell write has
    /// arrived).
    pub fn dispatchable_at(&self, now: SimTime) -> bool {
        self.alive && self.stalled.is_none() && self.queue.front().is_some_and(|p| p.arrived <= now)
    }

    /// Arrival time of the oldest queued request, if any (used by the
    /// multiplexer to sleep until the next doorbell).
    pub fn next_arrival(&self) -> Option<SimTime> {
        if !self.alive || self.stalled.is_some() {
            return None;
        }
        self.queue.front().map(|p| p.arrived)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_extent::Vlba;
    use nesc_storage::{BlockOp, RequestId};

    #[test]
    fn dispatchability_rules() {
        let mut f = FunctionContext::new(FunctionKind::Virtual, FunctionRegisters::default());
        let now = SimTime::from_nanos(100);
        assert!(!f.dispatchable_at(now), "empty queue");
        assert_eq!(f.next_arrival(), None);
        let pending = PendingRequest {
            req: BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf: 0x1000,
            arrived: SimTime::from_nanos(50),
        };
        f.queue.push_back(pending);
        assert!(f.dispatchable_at(now));
        assert!(
            !f.dispatchable_at(SimTime::from_nanos(10)),
            "requests are invisible before their doorbell arrives"
        );
        assert_eq!(f.next_arrival(), Some(SimTime::from_nanos(50)));
        f.stalled = Some(StalledRequest {
            pending,
            resume_block: 0,
            stalled_at: SimTime::ZERO,
        });
        assert!(
            !f.dispatchable_at(now),
            "stalled function must not dispatch"
        );
        assert_eq!(f.next_arrival(), None);
        f.stalled = None;
        f.alive = false;
        assert!(!f.dispatchable_at(now), "dead function must not dispatch");
    }
}
