//! The NeSC device model.
//!
//! [`NescDevice`] wires the paper's microarchitecture together (Fig. 6–8):
//! per-function request queues drained round-robin by the multiplexer, the
//! translation unit (BTLB + overlapped block-walk unit doing real DMA walks
//! of host-resident extent trees), the data-transfer unit moving real bytes
//! through the DMA engine and PCIe link, the PF's out-of-band channel, and
//! the miss-interrupt / `RewalkTree` protocol.
//!
//! ## Driving the model
//!
//! The device is event-driven: hosts call [`NescDevice::submit`] (after
//! modeling the doorbell with [`NescDevice::ring_doorbell`]) and then
//! [`NescDevice::advance`] to a horizon; completions and host interrupts
//! come back as [`NescOutput`]s stamped with their simulated times. Calls
//! must be made in non-decreasing time order — the glue loop in
//! `nesc-hypervisor` guarantees this.
//!
//! ## Fidelity notes
//!
//! * Blocks of one dispatched request occupy the shared units as a batch;
//!   requests from different functions interleave at request granularity
//!   (the round-robin the paper specifies) rather than block granularity.
//! * A stalled VF write blocks the translation unit for *all* VFs until the
//!   hypervisor resolves it — exactly why the paper adds the out-of-band
//!   channel so PF traffic keeps flowing. (§V-A)

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use nesc_extent::{validate_ring_tail, walk_run, Plba, Untrusted, Vlba, WalkOutcome};
use nesc_pcie::{HostAddr, HostMemory, PcieLink};
use nesc_sim::{
    EventQueue, FlightEventKind, FlightHandle, Pipe, ReadyTable, ServiceUnit, SimDuration, SimTime,
    SpanId, Tracer,
};
use nesc_storage::{BlockOp, BlockRequest, BlockStore, Media, RequestId, StoreError, BLOCK_SIZE};

use crate::btlb::Btlb;
use crate::config::NescConfig;
use crate::function::{FunctionContext, FunctionKind, PendingRequest, StalledRequest};
use crate::regs::{self, offsets, FunctionRegisters};
use crate::ring::RingState;
use crate::stats::{DeviceStats, FuncStats};
use crate::trace::RequestTrace;

/// Index of a function on the device; `FuncId(0)` is always the PF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u16);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "PF")
        } else {
            write!(f, "VF{}", self.0 - 1)
        }
    }
}

/// Why the device interrupted the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqReason {
    /// A write hit an unallocated range: the host must allocate
    /// `miss_blocks` blocks starting at `miss_vlba` and signal `RewalkTree`
    /// (paper Fig. 5b).
    WriteMiss {
        /// First unmapped virtual block.
        miss_vlba: Vlba,
        /// Length of the unmapped run within the stalled request.
        miss_blocks: u64,
    },
    /// The walk found a NULL (pruned) node pointer: the host must
    /// regenerate the mappings and signal `RewalkTree`.
    MappingPruned {
        /// The virtual block whose subtree was pruned.
        vlba: Vlba,
    },
}

/// Final status of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// Data transferred successfully.
    Ok,
    /// The hypervisor could not allocate space for a stalled write
    /// (quota/ENOSPC); the paper's write-failure interrupt.
    WriteFailed,
    /// The request addressed blocks beyond the virtual device size.
    OutOfRange,
    /// The extent tree was corrupt or pointed outside the physical device.
    DeviceError,
}

/// An externally visible device event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NescOutput {
    /// A request finished; the device raises a completion MSI toward the
    /// function's owner.
    Completion {
        /// When the completion is signalled.
        at: SimTime,
        /// The function the request was submitted to.
        func: FuncId,
        /// The request's identity.
        id: RequestId,
        /// How it ended.
        status: CompletionStatus,
    },
    /// The device interrupted the hypervisor (always delivered to the PF
    /// owner, regardless of which VF stalled).
    HostInterrupt {
        /// When the interrupt is signalled.
        at: SimTime,
        /// The VF whose translation missed.
        func: FuncId,
        /// What the host must do.
        reason: IrqReason,
    },
}

impl NescOutput {
    /// The simulated time of the event.
    pub fn at(&self) -> SimTime {
        match self {
            NescOutput::Completion { at, .. } | NescOutput::HostInterrupt { at, .. } => *at,
        }
    }

    /// Whether this is a completion.
    pub fn is_completion(&self) -> bool {
        matches!(self, NescOutput::Completion { .. })
    }
}

/// Error managing virtual functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfError {
    /// All VF slots are in use.
    Exhausted {
        /// The device's VF capacity.
        max_vfs: u16,
    },
    /// The function id does not name a live VF.
    NoSuchVf {
        /// The offending id.
        func: FuncId,
    },
    /// The operation is not permitted on the physical function.
    NotAVf,
}

impl fmt::Display for VfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfError::Exhausted { max_vfs } => write!(f, "all {max_vfs} VF slots in use"),
            VfError::NoSuchVf { func } => write!(f, "{func} is not a live virtual function"),
            VfError::NotAVf => write!(f, "operation not permitted on the PF"),
        }
    }
}

impl std::error::Error for VfError {}

#[derive(Debug)]
enum Event {
    MuxTick,
}

/// Result of translating the first block of an extent *run* — a maximal
/// span of consecutive vLBAs that resolves through the same BTLB entries
/// (or the same walked extents, or the same hole) at every nesting level,
/// so the whole span can be served from this one translation. Only the
/// first block's translation is simulated unit-by-unit; the remaining
/// `run - 1` blocks' pipeline occupancy is charged arithmetically by the
/// caller, which is timing-equivalent because an all-hit chain occupies
/// the translation unit back-to-back.
#[derive(Debug, Clone, Copy)]
struct RunTranslation {
    outcome: Translated,
    /// When the first block's translation resolved (gates its transfer).
    at: SimTime,
    /// When the translation pipeline can accept the next block.
    pipeline_free: SimTime,
    /// Blocks (>= 1, counting the first) this translation covers.
    run: u64,
    /// Nesting levels probed per block — the arithmetic charge unit.
    chain_levels: u64,
    /// For `Hole` outcomes: tree levels each re-walk of the hole costs.
    hole_levels: u32,
}

#[derive(Debug, Clone, Copy)]
enum Translated {
    Mapped(Plba),
    Hole { level: FuncId, lba: Vlba },
    Pruned { level: FuncId, lba: Vlba },
    Corrupt,
    BeyondParent,
}

/// The self-virtualizing nested storage controller.
///
/// See the [crate-level documentation](crate) for a usage example.
pub struct NescDevice {
    cfg: NescConfig,
    mem: Rc<RefCell<HostMemory>>,
    store: BlockStore,
    media: Media,
    functions: Vec<FunctionContext>,
    /// Incremental dispatch state for the VF multiplexer: per-priority
    /// ready bitmaps plus a min-heap of future arrivals, maintained by
    /// [`Self::refresh_ready`] at every queue/stall/liveness/priority
    /// mutation so a tick never scans all functions (O(changed state) at
    /// 1000+ VFs).
    mux_ready: ReadyTable,
    mux: ServiceUnit,
    oob: ServiceUnit,
    translate_unit: ServiceUnit,
    walk_slots: Vec<ServiceUnit>,
    engine_read: Pipe,
    engine_write: Pipe,
    link: PcieLink,
    btlb: Btlb,
    events: EventQueue<Event>,
    outputs: Vec<NescOutput>,
    /// Reusable partition buffer for [`Self::advance_into`]: outputs
    /// beyond the horizon are parked here, then swapped back into
    /// `outputs` — no per-call allocation.
    outputs_later: Vec<NescOutput>,
    mux_scheduled: bool,
    /// While a VF is stalled on a miss, the (shared) translation pipeline
    /// is blocked; only the PF's OOB channel makes progress.
    stalled_func: Option<FuncId>,
    /// The function whose *tree* the stall is waiting on (differs from
    /// `stalled_func` for nested VFs, where a parent level can miss).
    stall_level: Option<FuncId>,
    stats: DeviceStats,
    /// Per-function service counters, struct-of-arrays by dense func id.
    func_stats: FuncStats,
    tracing: bool,
    /// `tracing || tracer.is_enabled()`, cached so the request hot path
    /// pays a single flag test when both are off.
    instrumented: bool,
    traces: Vec<RequestTrace>,
    /// Span tracer shared with the hypervisor (no-op unless enabled).
    tracer: Tracer,
    /// Device span of the request currently in the pipeline; translation,
    /// walk, media and link spans attach under it.
    cur_span: SpanId,
    /// Flight recorder shared with the hypervisor (no-op unless enabled).
    flight: FlightHandle,
    /// Function of the request currently in the pipeline — the `func` the
    /// media/link flight events are attributed to.
    cur_func: u32,
    /// Reusable record of the nesting levels visited by one translation:
    /// `(func, vlba at that level, plba it translated to)`.
    chain_scratch: Vec<(u16, Vlba, Plba)>,
    /// Reusable per-run timestamp buffer: filled with each block's
    /// translation-done time, transformed in place into completion times by
    /// the batched media/engine/link passes.
    time_scratch: Vec<SimTime>,
}

impl fmt::Debug for NescDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NescDevice")
            .field("functions", &self.functions.len())
            .field("stalled", &self.stalled_func)
            .field("stats", &self.stats)
            .finish()
    }
}

impl NescDevice {
    /// Creates a device with the PF pre-provisioned as function 0.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`NescConfig::validate`].
    pub fn new(cfg: NescConfig, mem: Rc<RefCell<HostMemory>>) -> Self {
        cfg.validate();
        let store = BlockStore::new(cfg.capacity_blocks);
        let pf_regs = FunctionRegisters::new(0, cfg.capacity_blocks);
        let media = cfg.media.clone();
        let walk_slots = vec![ServiceUnit::new(); cfg.walk_overlap];
        let btlb = Btlb::new(cfg.btlb_entries);
        let link = PcieLink::new(cfg.link.clone());
        let engine_read = Pipe::new(cfg.dma_read_bytes_per_sec, SimDuration::ZERO);
        let engine_write = Pipe::new(cfg.dma_write_bytes_per_sec, SimDuration::ZERO);
        NescDevice {
            cfg,
            mem,
            store,
            media,
            functions: vec![FunctionContext::new(FunctionKind::Physical, pf_regs)],
            mux_ready: {
                let mut rt = ReadyTable::new(crate::function::NUM_PRIORITIES as usize);
                rt.grow_to(1);
                rt
            },
            mux: ServiceUnit::new(),
            oob: ServiceUnit::new(),
            translate_unit: ServiceUnit::new(),
            walk_slots,
            engine_read,
            engine_write,
            link,
            btlb,
            events: EventQueue::new(),
            outputs: Vec::new(),
            outputs_later: Vec::new(),
            mux_scheduled: false,
            stalled_func: None,
            stall_level: None,
            stats: DeviceStats::default(),
            func_stats: FuncStats::with_len(1),
            tracing: false,
            instrumented: false,
            traces: Vec::new(),
            tracer: Tracer::disabled(),
            cur_span: SpanId::NONE,
            flight: FlightHandle::disabled(),
            cur_func: 0,
            chain_scratch: Vec::new(),
            time_scratch: Vec::new(),
        }
    }

    /// The physical function's id.
    pub fn pf(&self) -> FuncId {
        FuncId(0)
    }

    /// Device configuration.
    pub fn config(&self) -> &NescConfig {
        &self.cfg
    }

    /// The persistent contents (tests and the hypervisor's format path use
    /// this to inspect physical blocks).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the contents (hypervisor-side tooling).
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// Cumulative statistics. The BTLB lookup/hit counters are synced from
    /// the BTLB's authoritative per-block counters here, so the per-block
    /// translation path never touches a second counter pair.
    pub fn stats(&self) -> DeviceStats {
        let mut s = self.stats;
        s.btlb_hits = self.btlb.hits();
        s.btlb_lookups = self.btlb.hits() + self.btlb.misses();
        s
    }

    /// BTLB statistics (hits/misses/occupancy).
    pub fn btlb(&self) -> &Btlb {
        &self.btlb
    }

    /// Enables or disables per-request tracing (off by default; traces
    /// accumulate until [`take_traces`](Self::take_traces)).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        self.instrumented = self.tracing || self.tracer.is_enabled();
    }

    /// Drains the recorded request traces, oldest first.
    pub fn take_traces(&mut self) -> Vec<RequestTrace> {
        std::mem::take(&mut self.traces)
    }

    /// Attaches a span tracer (cloned into the PCIe link): every request
    /// the device processes emits a `core`-layer device span — with
    /// translation, extent-walk, media and DMA child spans — parented on
    /// whatever span the submitter bound to the request id.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.link.set_tracer(tracer.clone());
        self.tracer = tracer;
        self.instrumented = self.tracing || self.tracer.is_enabled();
    }

    /// Attaches a flight recorder: queue, scheduler, BTLB, media and link
    /// events are appended into its ring as the pipeline processes
    /// requests. Independent of span tracing — the ring records even when
    /// no tracer is attached.
    pub fn set_flight(&mut self, flight: FlightHandle) {
        self.flight = flight;
    }

    /// Throttles the storage medium (Fig. 2's emulated device speeds).
    pub fn set_media_throttle(&mut self, bytes_per_sec: Option<u64>) {
        self.media.set_throttle(bytes_per_sec);
    }

    /// Live VF count.
    pub fn live_vfs(&self) -> u16 {
        self.functions[1..].iter().filter(|f| f.alive).count() as u16
    }

    // ------------------------------------------------------------------
    // Telemetry probes (cumulative busy times and instantaneous depths;
    // the perfmon sampler turns deltas of these into per-window series)
    // ------------------------------------------------------------------

    /// Cumulative busy time summed over the extent-walk slots.
    pub fn walk_busy_time(&self) -> SimDuration {
        self.walk_slots.iter().map(|s| s.busy_time()).sum()
    }

    /// Number of parallel walk slots (the denominator for walk-unit
    /// occupancy).
    pub fn walk_slot_count(&self) -> usize {
        self.walk_slots.len()
    }

    /// Cumulative busy time of the storage medium.
    pub fn media_busy_time(&self) -> SimDuration {
        self.media.busy_time()
    }

    /// Cumulative busy time of the PCIe link as `(upstream, downstream)`.
    pub fn link_busy_time(&self) -> (SimDuration, SimDuration) {
        (self.link.upstream_busy(), self.link.downstream_busy())
    }

    /// Depth of a function's client request queue right now (0 for dead or
    /// unknown functions).
    pub fn ring_depth(&self, func: FuncId) -> usize {
        self.functions
            .get(func.0 as usize)
            .filter(|f| f.alive)
            .map_or(0, |f| f.queue.len())
    }

    // ------------------------------------------------------------------
    // PF management plane
    // ------------------------------------------------------------------

    /// Creates a VF bound to the extent tree at `tree_root` exporting a
    /// virtual device of `size_blocks` blocks. Multiple VFs may share one
    /// tree (shared files, paper §IV-B).
    ///
    /// # Errors
    ///
    /// [`VfError::Exhausted`] when all VF slots are live.
    pub fn create_vf(&mut self, tree_root: HostAddr, size_blocks: u64) -> Result<FuncId, VfError> {
        let regs = FunctionRegisters::new(tree_root, size_blocks);
        // Reuse a dead slot if any.
        if let Some(i) = self.functions[1..].iter().position(|f| !f.alive) {
            let idx = i + 1;
            self.functions[idx] = FunctionContext::new(FunctionKind::Virtual, regs);
            self.func_stats.reset(idx);
            self.refresh_ready(idx);
            return Ok(FuncId(idx as u16));
        }
        if self.live_vfs() >= self.cfg.max_vfs {
            return Err(VfError::Exhausted {
                max_vfs: self.cfg.max_vfs,
            });
        }
        self.functions
            .push(FunctionContext::new(FunctionKind::Virtual, regs));
        self.mux_ready.grow_to(self.functions.len());
        self.func_stats.grow_to(self.functions.len());
        Ok(FuncId((self.functions.len() - 1) as u16))
    }

    /// Creates a *nested* VF inside an existing VF's address space — the
    /// mechanism the paper notes is possible "in principle ... to support
    /// nested virtualization" (§IV-A). The nested function's extent tree
    /// maps its vLBAs into the parent's vLBA space; the device composes
    /// the translations (child tree, then each ancestor's) on every block.
    ///
    /// # Errors
    ///
    /// [`VfError::NoSuchVf`] if the parent is not a live VF,
    /// [`VfError::NotAVf`] for a PF parent, [`VfError::Exhausted`] when
    /// the VF table is full.
    pub fn create_nested_vf(
        &mut self,
        parent: FuncId,
        tree_root: HostAddr,
        size_blocks: u64,
    ) -> Result<FuncId, VfError> {
        self.vf_mut(parent)?; // validates the parent
        let child = self.create_vf(tree_root, size_blocks)?;
        self.functions[child.0 as usize].parent = Some(parent);
        Ok(child)
    }

    /// Deletes a VF: outstanding queued requests are dropped, its BTLB
    /// entries flushed, its nested children (if any) deleted recursively,
    /// and the slot becomes reusable.
    ///
    /// # Errors
    ///
    /// [`VfError::NotAVf`] for the PF, [`VfError::NoSuchVf`] for dead or
    /// unknown ids.
    pub fn delete_vf(&mut self, func: FuncId) -> Result<(), VfError> {
        // Cascade to nested children first.
        let children: Vec<FuncId> = self
            .functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.alive && f.parent == Some(func))
            .map(|(i, _)| FuncId(i as u16))
            .collect();
        for c in children {
            self.delete_vf(c)?;
        }
        let ctx = self.vf_mut(func)?;
        ctx.alive = false;
        ctx.queue.clear();
        ctx.stalled = None;
        if self.stalled_func == Some(func) {
            self.stalled_func = None;
            self.stall_level = None;
        }
        self.refresh_ready(func.0 as usize);
        self.btlb.flush_func(func.0);
        Ok(())
    }

    /// Replaces a VF's extent tree root (after the hypervisor rebuilt the
    /// tree) and flushes the VF's cached translations.
    ///
    /// # Errors
    ///
    /// [`VfError::NotAVf`] / [`VfError::NoSuchVf`] as for
    /// [`delete_vf`](Self::delete_vf).
    pub fn set_tree_root(&mut self, func: FuncId, root: HostAddr) -> Result<(), VfError> {
        self.vf_mut(func)?.regs.extent_tree_root = root;
        self.btlb.flush_func(func.0);
        Ok(())
    }

    /// PF-initiated global BTLB flush ("to preserve meta-data consistency"
    /// across hypervisor optimizations such as deduplication).
    pub fn flush_btlb(&mut self) {
        self.btlb.flush_all();
    }

    /// Sets a VF's QoS priority (0 = highest; clamped to the supported
    /// class count).
    ///
    /// # Errors
    ///
    /// [`VfError::NotAVf`] / [`VfError::NoSuchVf`] as for
    /// [`delete_vf`](Self::delete_vf).
    pub fn set_priority(&mut self, func: FuncId, priority: u8) -> Result<(), VfError> {
        self.vf_mut(func)?.priority = priority.min(crate::function::NUM_PRIORITIES - 1);
        // Re-arm so a pending promotion re-reads the new class.
        self.refresh_ready(func.0 as usize);
        Ok(())
    }

    /// Per-function service counters `(requests, blocks)` — the fairness
    /// and QoS harnesses read these.
    pub fn function_counters(&self, func: FuncId) -> (u64, u64) {
        self.func_stats.get(func.0 as usize)
    }

    fn vf_mut(&mut self, func: FuncId) -> Result<&mut FunctionContext, VfError> {
        if func.0 == 0 {
            return Err(VfError::NotAVf);
        }
        match self.functions.get_mut(func.0 as usize) {
            Some(ctx) if ctx.alive => Ok(ctx),
            _ => Err(VfError::NoSuchVf { func }),
        }
    }

    // ------------------------------------------------------------------
    // MMIO plane
    // ------------------------------------------------------------------

    /// Models the host CPU's posted doorbell write; returns when the write
    /// reaches the device (submissions should use this time).
    pub fn ring_doorbell(&mut self, now: SimTime) -> SimTime {
        self.link.mmio_write(now)
    }

    /// Reads a register in `func`'s window.
    pub fn mmio_read(&self, func: FuncId, offset: u64) -> u64 {
        self.functions
            .get(func.0 as usize)
            .map(|f| f.regs.mmio_read(offset))
            .unwrap_or(0)
    }

    /// Writes a register in `func`'s window at simulated time `now`.
    /// Writing 1 to `RewalkTree` re-issues the function's stalled request;
    /// writing `RingTail` is the command-ring doorbell (the device DMAs
    /// the new descriptors and queues their requests).
    pub fn mmio_write(&mut self, func: FuncId, offset: u64, value: u64, now: SimTime) {
        let Some(ctx) = self.functions.get_mut(func.0 as usize) else {
            return;
        };
        let trigger = ctx.regs.mmio_write(offset, value);
        if offset == offsets::EXTENT_TREE_ROOT {
            self.btlb.flush_func(func.0);
        }
        if offset == offsets::RING_TAIL {
            self.consume_ring(func, regs::doorbell(value), now);
        }
        if trigger {
            self.resume_stalled(func, now);
        }
    }

    /// Doorbell handler: DMAs descriptors from the function's command
    /// ring and submits them (paper §V's DMA ring buffer interface).
    ///
    /// The tail is guest-controlled and arrives quarantined; an index
    /// outside the configured ring is ignored wholesale (a real device's
    /// bounds-checked doorbell register), and descriptors whose own
    /// fields fail validation complete with `DeviceError` instead of
    /// being silently dropped, so drivers never hang waiting on them.
    fn consume_ring(&mut self, func: FuncId, tail: Untrusted<u32>, now: SimTime) {
        let (descriptors, fetch_done) = {
            let ctx = &mut self.functions[func.0 as usize];
            if !ctx.alive {
                return;
            }
            let mut ring = RingState {
                base: ctx.regs.ring_base,
                entries: ctx.regs.ring_entries,
                head: ctx.ring_head,
            };
            if !ring.is_configured() {
                return;
            }
            let Ok(tail) = validate_ring_tail(tail, ctx.regs.ring_entries) else {
                return;
            };
            let descriptors = ring.consume(&self.mem.borrow(), tail);
            ctx.ring_head = ring.head;
            // One descriptor-fetch DMA covers the batch (devices coalesce).
            let bytes = descriptors.len() as u64 * crate::ring::DESCRIPTOR_BYTES;
            let fetch_done = if bytes > 0 {
                self.link.dma_read(now, bytes).complete
            } else {
                now
            };
            (descriptors, fetch_done)
        };
        for d in descriptors {
            match d.to_request() {
                Ok(req) => self.submit(fetch_done, func, req, d.buffer),
                Err(_) => self.outputs.push(NescOutput::Completion {
                    at: fetch_done,
                    func,
                    id: d.id,
                    status: CompletionStatus::DeviceError,
                }),
            }
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Submits a request to a function. `buf` is the host buffer the data
    /// is DMAed to/from. PF requests take the out-of-band channel and use
    /// physical LBAs; VF requests queue for the multiplexer and use vLBAs.
    ///
    /// Requests to dead functions are dropped (a real device's unmapped
    /// BAR would master-abort); a completion with an error is produced so
    /// callers never hang.
    pub fn submit(&mut self, now: SimTime, func: FuncId, req: BlockRequest, buf: HostAddr) {
        let Some(ctx) = self.functions.get(func.0 as usize) else {
            self.outputs.push(NescOutput::Completion {
                at: now,
                func,
                id: req.id,
                status: CompletionStatus::DeviceError,
            });
            return;
        };
        if !ctx.alive {
            self.outputs.push(NescOutput::Completion {
                at: now,
                func,
                id: req.id,
                status: CompletionStatus::DeviceError,
            });
            return;
        }
        let pending = PendingRequest {
            req,
            buf,
            arrived: now,
        };
        if ctx.kind == FunctionKind::Physical {
            // Out-of-band: bypass the mux and translation entirely.
            let svc = self.oob.serve(now, self.cfg.oob_per_request);
            self.stats.oob_requests += 1;
            self.process_pf_request(svc.end, pending);
        } else {
            let rid = pending.req.id;
            self.functions[func.0 as usize].queue.push_back(pending);
            if self.flight.is_enabled() {
                let depth = self.functions[func.0 as usize].queue.len() as u64;
                self.flight.append(
                    now,
                    FlightEventKind::QueueEnter,
                    u32::from(func.0),
                    rid.0,
                    depth,
                );
            }
            self.refresh_ready(func.0 as usize);
            self.schedule_mux(now);
        }
    }

    /// Submits a physically-addressed request to the PF. This is the one
    /// place a [`Plba`]-typed request re-enters the device: the hypervisor's
    /// passthrough and paravirtual engines (which translated already) and
    /// host-mediated accelerators address the raw device here. The PF's
    /// frame is the identity map, so the request is re-based into the PF's
    /// "virtual" space on entry and [`Vlba::identity_plba`] undoes the
    /// re-base at dispatch.
    pub fn submit_pf(&mut self, now: SimTime, req: BlockRequest<Plba>, buf: HostAddr) {
        let req = BlockRequest::new(req.id, req.op, req.lba.nested_vlba(), req.block_count);
        self.submit(now, self.pf(), req, buf);
    }

    /// The hypervisor signals that it could *not* allocate space for the
    /// function's stalled write (quota exhausted / device full): the
    /// request completes with [`CompletionStatus::WriteFailed`].
    pub fn fail_stalled(&mut self, func: FuncId, now: SimTime) {
        let Some(ctx) = self.functions.get_mut(func.0 as usize) else {
            return;
        };
        if let Some(st) = ctx.stalled.take() {
            self.outputs.push(NescOutput::Completion {
                at: now + self.cfg.interrupt_cost,
                func,
                id: st.pending.req.id,
                status: CompletionStatus::WriteFailed,
            });
            self.stats.requests_failed += 1;
            if self.stalled_func == Some(func) {
                self.stalled_func = None;
                self.stall_level = None;
            }
            self.refresh_ready(func.0 as usize);
            self.schedule_mux(now);
        }
    }

    /// Advances internal machinery to `until` and returns every output
    /// whose time is at or before `until`, in time order.
    pub fn advance(&mut self, until: SimTime) -> Vec<NescOutput> {
        let mut due = Vec::new();
        self.advance_into(until, &mut due);
        due
    }

    /// Allocation-free variant of [`Self::advance`]: due outputs are
    /// appended to `out` (which the caller clears and reuses across
    /// calls), in time order with FIFO ties, exactly as `advance` returns
    /// them. The steady-state device loop is heap-allocation-free through
    /// this entry point.
    // nesc-lint: hot
    pub fn advance_into(&mut self, until: SimTime, out: &mut Vec<NescOutput>) {
        while let Some((t, ev)) = self.events.pop_due(until) {
            match ev {
                Event::MuxTick => self.mux_tick(t),
            }
        }
        // Outputs computed eagerly may lie beyond the horizon; hold them
        // in the reusable partition buffer.
        let start = out.len();
        for o in self.outputs.drain(..) {
            if o.at() <= until {
                out.push(o);
            } else {
                self.outputs_later.push(o);
            }
        }
        std::mem::swap(&mut self.outputs, &mut self.outputs_later);
        // Stable insertion sort on `at`: outputs per horizon are few, the
        // buffer is usually already ordered, and — unlike `sort_by_key` —
        // it allocates nothing. Stability preserves emission order on
        // equal timestamps, matching the historical stable sort.
        let Some(due) = out.get_mut(start..) else {
            return;
        };
        for i in 1..due.len() {
            let mut j = i;
            while j > 0
                && due
                    .get(j - 1)
                    .zip(due.get(j))
                    .is_some_and(|(a, b)| a.at() > b.at())
            {
                due.swap(j - 1, j);
                j -= 1;
            }
        }
    }

    /// Earliest time at which the device has something to do or report,
    /// for glue loops that want to step exactly to the next event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let ev = self.events.peek_time();
        let out = self.outputs.iter().map(NescOutput::at).min();
        match (ev, out) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule_mux(&mut self, at: SimTime) {
        if !self.mux_scheduled {
            self.events.push(at, Event::MuxTick);
            self.mux_scheduled = true;
        }
    }

    /// Synchronizes one function's entry in the ready table with its
    /// visible dispatch state. Must run after every mutation of the
    /// function's queue front, stall flag, liveness, or priority — the
    /// table is what [`Self::mux_tick`] dispatches from, in place of a
    /// per-tick scan over all functions.
    fn refresh_ready(&mut self, idx: usize) {
        match self.functions[idx].next_arrival() {
            Some(at) => self.mux_ready.arm(idx, at),
            None => self.mux_ready.clear(idx),
        }
    }

    fn mux_tick(&mut self, now: SimTime) {
        self.mux_scheduled = false;
        if self.stalled_func.is_some() {
            // Translation pipeline blocked; the resume path re-kicks us.
            return;
        }
        // QoS: serve the most urgent (lowest-numbered) priority class with
        // pending work; round-robin within the class (paper §IV-D). The
        // ready table is maintained incrementally at every queue/stall
        // mutation; here we only promote arrivals that matured by `now`
        // (reading each function's current priority class) and pick.
        let funcs = &self.functions;
        self.mux_ready
            .promote_due(now, |i| funcs[i].priority as usize);
        let Some(pick) = self.mux_ready.pick() else {
            // Nothing has arrived yet; sleep until the next doorbell lands.
            if let Some(next) = self.mux_ready.next_arrival() {
                self.schedule_mux(next.max(now));
            }
            return;
        };
        debug_assert!(
            pick != 0 && self.functions[pick].dispatchable_at(now),
            "ready table out of sync with function {pick}"
        );
        let Some(pending) = self.functions[pick].queue.pop_front() else {
            // The ready table said dispatchable but the queue is empty —
            // drop the stale entry and wait for the next doorbell.
            debug_assert!(false, "dispatchable implies non-empty");
            self.refresh_ready(pick);
            return;
        };
        let cost = self.cfg.mux_per_request + self.cfg.split_per_block * pending.req.block_count;
        let svc = self.mux.serve(now, cost);
        if self.flight.is_enabled() {
            self.flight.append(
                now,
                FlightEventKind::QueueExit,
                pick as u32,
                pending.req.id.0,
                pending.arrived.as_nanos(),
            );
            self.flight.append(
                svc.start,
                FlightEventKind::SchedDispatch,
                pick as u32,
                pending.req.id.0,
                pending.req.block_count,
            );
        }
        self.process_vf_request(svc.end, FuncId(pick as u16), pending, 0, false);
        self.refresh_ready(pick);
        self.schedule_mux(svc.end);
    }

    fn resume_stalled(&mut self, func: FuncId, now: SimTime) {
        // The rewalk doorbell may land on the *level* whose tree missed
        // (a parent, for nested VFs); the parked request lives on the
        // requester.
        let requester = if self
            .functions
            .get(func.0 as usize)
            .is_some_and(|c| c.stalled.is_some())
        {
            func
        } else if self.stall_level == Some(func) {
            match self.stalled_func {
                Some(r) => r,
                None => return,
            }
        } else {
            return;
        };
        if let Some(ctx) = self.functions.get_mut(func.0 as usize) {
            ctx.regs.rewalk_tree = 0;
        }
        let Some(ctx) = self.functions.get_mut(requester.0 as usize) else {
            return;
        };
        let Some(st) = ctx.stalled.take() else {
            return;
        };
        if self.stalled_func == Some(requester) {
            self.stalled_func = None;
            self.stall_level = None;
        }
        let func = requester;
        // Re-issue the stalled request to the walk unit from the miss
        // point; the paper guarantees the retried lookup now succeeds
        // (unless the host pruned again, in which case we stall again).
        self.process_vf_request(now, func, st.pending, st.resume_block, true);
        self.refresh_ready(func.0 as usize);
        self.schedule_mux(now);
    }

    fn process_pf_request(&mut self, start: SimTime, pending: PendingRequest) {
        if !self.tracer.is_enabled() {
            return self.process_pf_request_inner(start, pending);
        }
        let id = pending.req.id;
        let span = self
            .tracer
            .start(self.tracer.bound(id.0), "core", "device", pending.arrived);
        self.tracer.attr(span, "blocks", pending.req.block_count);
        if start > pending.arrived {
            self.tracer
                .span(span, "core", "queue", pending.arrived, start);
        }
        self.cur_span = span;
        self.link.set_span_parent(span);
        let out0 = self.outputs.len();
        self.process_pf_request_inner(start, pending);
        if let Some(at) = self.outputs[out0..].iter().find_map(|o| match o {
            NescOutput::Completion { at, id: cid, .. } if *cid == id => Some(*at),
            _ => None,
        }) {
            self.tracer.end(span, at);
        }
        self.cur_span = SpanId::NONE;
        self.link.set_span_parent(SpanId::NONE);
    }

    fn process_pf_request_inner(&mut self, start: SimTime, pending: PendingRequest) {
        self.cur_func = 0;
        let req = pending.req;
        if req.end_lba() > Vlba(self.cfg.capacity_blocks) {
            self.complete(start, self.pf(), req.id, CompletionStatus::OutOfRange);
            return;
        }
        // PF requests are untranslated — the PF's frame is the identity
        // map, so this is where its vLBAs become pLBAs — and the whole
        // request is one run: move the bytes in a single store/host-memory
        // pass, then charge the per-block engine/link/media timing exactly
        // as the per-block loop did (each block ready at `start`; the units
        // serialize).
        let plba = req.lba.identity_plba();
        if req.block_count > 0
            && self
                .move_run_data(req.op, plba, pending.buf, 0, req.block_count)
                .is_err()
        {
            self.complete(start, self.pf(), req.id, CompletionStatus::DeviceError);
            return;
        }
        let mut times = std::mem::take(&mut self.time_scratch);
        times.clear();
        times.resize(req.block_count as usize, start);
        self.transfer_run_timing(req.op, plba, &mut times);
        let last_done = times.last().copied().unwrap_or(start);
        self.time_scratch = times;
        self.count_blocks(req.op, req.block_count);
        self.func_stats.credit(0, 1, req.block_count);
        self.complete(last_done, self.pf(), req.id, CompletionStatus::Ok);
    }

    fn process_vf_request(
        &mut self,
        start: SimTime,
        func: FuncId,
        pending: PendingRequest,
        from_block: u64,
        resumed: bool,
    ) {
        if !self.instrumented {
            return self.process_vf_request_inner(start, func, pending, from_block);
        }
        let spans = self.tracer.is_enabled();
        let dev_span = if spans {
            let parent = self.tracer.bound(pending.req.id.0);
            // A resumed request gets a fresh span starting at the resume
            // point; the original one closed at its miss interrupt.
            let (name, opened) = if resumed {
                ("device_resume", start)
            } else {
                ("device", pending.arrived)
            };
            let s = self.tracer.start(parent, "core", name, opened);
            self.tracer.attr(s, "func", func.0 as u64);
            self.tracer.attr(s, "blocks", pending.req.block_count);
            if !resumed && start > pending.arrived {
                self.tracer.span(s, "core", "queue", pending.arrived, start);
            }
            self.cur_span = s;
            self.link.set_span_parent(s);
            s
        } else {
            SpanId::NONE
        };
        let walks0 = self.stats.walks;
        let hits0 = self.btlb.hits();
        let out0 = self.outputs.len();
        self.process_vf_request_inner(start, func, pending, from_block);
        let completion = self.outputs[out0..].iter().find_map(|o| match o {
            NescOutput::Completion { at, id, status, .. } if *id == pending.req.id => {
                Some((*at, *status))
            }
            _ => None,
        });
        if spans {
            match completion {
                Some((at, _)) => self.tracer.end(dev_span, at),
                None => {
                    // Stalled on a translation miss: close this span at the
                    // miss interrupt; the resume opens its own span.
                    if let Some(at) = self.outputs[out0..].iter().find_map(|o| match o {
                        NescOutput::HostInterrupt { at, .. } => Some(*at),
                        _ => None,
                    }) {
                        self.tracer.attr(dev_span, "stalled", 1);
                        self.tracer.end(dev_span, at);
                    }
                }
            }
            self.cur_span = SpanId::NONE;
            self.link.set_span_parent(SpanId::NONE);
        }
        if !self.tracing {
            return;
        }
        if let Some((at, status)) = completion {
            debug_assert!(
                pending.arrived <= start && start <= at,
                "request {:?} timestamps must be monotonic: arrived {} dispatched {} completed {}",
                pending.req.id,
                pending.arrived,
                start,
                at
            );
            self.traces.push(RequestTrace {
                id: pending.req.id,
                func,
                op: pending.req.op,
                lba: pending.req.lba,
                blocks: pending.req.block_count,
                arrived: pending.arrived,
                // For a resumed request this is the resume point; the
                // original dispatch was before the stall.
                dispatched: start,
                completed: at,
                walks: (self.stats.walks - walks0) as u32,
                btlb_hits: (self.btlb.hits() - hits0) as u32,
                stalled: resumed,
                status,
            });
        }
    }

    fn process_vf_request_inner(
        &mut self,
        start: SimTime,
        func: FuncId,
        pending: PendingRequest,
        from_block: u64,
    ) {
        self.cur_func = u32::from(func.0);
        let req = pending.req;
        let regs_size = self.functions[func.0 as usize].regs.device_size_blocks;
        if req.end_lba() > Vlba(regs_size) {
            self.complete(start, func, req.id, CompletionStatus::OutOfRange);
            return;
        }
        let mut tr_ready = start;
        let mut last_done = start;
        let mut blocks_done = 0u64;
        let lookup_cost = self.cfg.btlb_lookup;
        // A zero-capacity BTLB rebounds every run to one block *after*
        // translation (`rebound_run`); clamping up front makes the batched
        // loop take exactly the per-block path instead of sizing walks for
        // runs it can never keep.
        let run_cap = if self.btlb.capacity() == 0 {
            1
        } else {
            self.cfg.max_run_blocks
        };
        let mut i = from_block;
        while i < req.block_count {
            let vlba = req.lba.offset(i);
            let max_run = (req.block_count - i).min(run_cap);
            // --- Translation unit: BTLB, then the block-walk unit —
            // composed across nesting levels for nested VFs, and sized to
            // the longest run every level's extent covers. ---
            let rt = self.translate_run(func, vlba, tr_ready, max_run);
            // The translation pipeline accepts the next block as soon as
            // this one has dispatched to (or bypassed) the walk unit; a
            // walk's latency is paid by *this* block's transfer, while
            // other walks proceed on the remaining slots — the overlap
            // the paper uses to hide tree-DMA latency (§V-B).
            tr_ready = rt.pipeline_free;
            match rt.outcome {
                Translated::Mapped(plba) => {
                    // Physical blocks past device capacity fail exactly
                    // where the per-block loop failed: after that block's
                    // translation, before any of its data moves.
                    let valid = self.store.blocks_until_end(plba).min(rt.run);
                    let trans_blocks = if valid < rt.run { valid + 1 } else { rt.run };
                    // Blocks after the first all hit the whole chain; one
                    // arithmetic charge occupies the translation unit for
                    // the same contiguous span the per-block lookups did,
                    // and block j's chain resolves j * chain_levels
                    // lookups after the batch starts.
                    let extra = trans_blocks - 1;
                    let batch_start = if extra > 0 {
                        let svc = self
                            .translate_unit
                            .serve(tr_ready, lookup_cost * (extra * rt.chain_levels));
                        tr_ready = svc.end;
                        self.btlb.credit_hits(extra * rt.chain_levels);
                        svc.start
                    } else {
                        tr_ready
                    };
                    if valid > 0
                        && self
                            .move_run_data(req.op, plba, pending.buf, i, valid)
                            .is_err()
                    {
                        // Unreachable by construction (`valid` is bounded
                        // by capacity), but fail like the old loop would.
                        self.complete(rt.at, func, req.id, CompletionStatus::DeviceError);
                        return;
                    }
                    // Block j's chain resolves j * chain_levels lookups
                    // after the batch starts; transform those ready times
                    // into completion times with one batched pass per unit.
                    let mut times = std::mem::take(&mut self.time_scratch);
                    times.clear();
                    times.reserve(valid as usize);
                    for j in 0..valid {
                        times.push(if j == 0 {
                            rt.at
                        } else {
                            batch_start + lookup_cost * (j * rt.chain_levels)
                        });
                    }
                    self.transfer_run_timing(req.op, plba, &mut times);
                    if let Some(&done) = times.last() {
                        last_done = last_done.max(done);
                    }
                    self.time_scratch = times;
                    if valid < trans_blocks {
                        // The capacity-crossing block fails right after its
                        // translation, exactly when the per-block loop
                        // reached it.
                        let t_err = if valid == 0 {
                            rt.at
                        } else {
                            batch_start + lookup_cost * (valid * rt.chain_levels)
                        };
                        self.complete(t_err, func, req.id, CompletionStatus::DeviceError);
                        return;
                    }
                    blocks_done += rt.run;
                    i += rt.run;
                }
                Translated::Hole { level, lba } => {
                    if req.op == BlockOp::Write {
                        // Write miss: size the unmapped run for MissSize,
                        // set the registers of the level whose tree missed,
                        // interrupt its owner, park the request.
                        let level_root = self.functions[level.0 as usize].regs.extent_tree_root;
                        let run = self.unmapped_run(level_root, lba, req.block_count - i);
                        self.stall(
                            func,
                            level,
                            pending,
                            i,
                            rt.at,
                            IrqReason::WriteMiss {
                                miss_vlba: lba,
                                miss_blocks: run,
                            },
                        );
                        return;
                    }
                    // POSIX hole read: zero-fill the destination, no media
                    // access. Holes are never cached, so every block of the
                    // run re-probes the chain (upper levels hit, the hole
                    // level misses) and re-walks the hole — the walk-slot
                    // occupancy below reproduces that per block, while the
                    // walk itself ran only once.
                    let extra = rt.run - 1;
                    let batch_start = if extra > 0 {
                        let svc = self
                            .translate_unit
                            .serve(tr_ready, lookup_cost * (extra * rt.chain_levels));
                        tr_ready = svc.end;
                        self.btlb.credit_hits(extra * (rt.chain_levels - 1));
                        self.btlb.credit_misses(extra);
                        self.stats.walks += extra;
                        self.stats.walk_levels += rt.hole_levels as u64 * extra;
                        svc.start
                    } else {
                        tr_ready
                    };
                    self.mem
                        .borrow_mut()
                        .fill_zero(pending.buf + i * BLOCK_SIZE, rt.run * BLOCK_SIZE);
                    self.stats.zero_fill_blocks += rt.run;
                    // Per-block walk-slot occupancy stays a loop (slots are
                    // chosen least-loaded per walk), but the engine and
                    // link passes over the resulting ready times batch.
                    let mut times = std::mem::take(&mut self.time_scratch);
                    times.clear();
                    times.reserve(rt.run as usize);
                    times.push(rt.at);
                    for j in 1..rt.run {
                        let lookup_end = batch_start + lookup_cost * (j * rt.chain_levels);
                        times.push(self.run_walk_dmas(lookup_end, rt.hole_levels));
                    }
                    self.engine_read.transfer_run(BLOCK_SIZE, &mut times);
                    self.link.dma_write_run(BLOCK_SIZE, &mut times);
                    if let Some(&done) = times.last() {
                        last_done = last_done.max(done);
                    }
                    self.time_scratch = times;
                    blocks_done += rt.run;
                    i += rt.run;
                }
                Translated::Pruned { level, lba } => {
                    self.stall(
                        func,
                        level,
                        pending,
                        i,
                        rt.at,
                        IrqReason::MappingPruned { vlba: lba },
                    );
                    return;
                }
                Translated::Corrupt => {
                    self.complete(rt.at, func, req.id, CompletionStatus::DeviceError);
                    return;
                }
                Translated::BeyondParent => {
                    self.complete(rt.at, func, req.id, CompletionStatus::OutOfRange);
                    return;
                }
            }
        }
        self.count_blocks(req.op, blocks_done);
        self.func_stats.credit(func.0 as usize, 1, blocks_done);
        self.complete(last_done, func, req.id, CompletionStatus::Ok);
    }

    /// Translates an extent run starting at `vlba` through the function's
    /// tree and, for nested VFs, through every ancestor's tree (the
    /// composed translation of the paper's nested-virtualization aside,
    /// §IV-A). The first block is translated with full unit-level timing;
    /// the returned `run` says how many consecutive blocks resolve through
    /// the same entries, bounded by every level's extent coverage, the
    /// parent's device size, and — via [`Self::rebound_run`] — by what the
    /// BTLB still holds once the chain's own inserts have settled.
    fn translate_run(
        &mut self,
        func: FuncId,
        vlba: Vlba,
        ready: SimTime,
        max_blocks: u64,
    ) -> RunTranslation {
        let mut chain = std::mem::take(&mut self.chain_scratch);
        chain.clear();
        let mut level = func;
        let mut lba = vlba;
        let mut t = ready;
        let mut pipeline_free = ready;
        let mut run = max_blocks.max(1);
        let mut chain_levels = 0u64;
        let result = loop {
            let lookup = self.translate_unit.serve(t, self.cfg.btlb_lookup);
            pipeline_free = pipeline_free.max(lookup.end);
            chain_levels += 1;
            let root = self.functions[level.0 as usize].regs.extent_tree_root;
            let (next, t_done) = match self.btlb.lookup_run(level.0, lba, run) {
                Some((plba, covered)) => {
                    run = run.min(covered);
                    chain.push((level.0, lba, plba));
                    (plba, lookup.end)
                }
                None => {
                    let wr = walk_run(&self.mem.borrow(), root, lba, run);
                    self.stats.walks += 1;
                    self.stats.walk_levels += wr.result.levels as u64;
                    let t_walk = self.run_walk_dmas(lookup.end, wr.result.levels);
                    if self.flight.is_enabled() {
                        self.flight.append(
                            t_walk,
                            FlightEventKind::BtlbMiss,
                            u32::from(level.0),
                            lba.byte_offset(),
                            wr.result.levels as u64,
                        );
                    }
                    match wr.result.outcome {
                        WalkOutcome::Mapped(e) => {
                            self.btlb.insert(level.0, e);
                            run = run.min(wr.run);
                            let plba = e.translate(lba);
                            debug_assert!(plba.is_some(), "walk hit covers lba");
                            let Some(plba) = plba else {
                                // The walk returned an extent that does not
                                // cover the probed lba — treat the mapping
                                // as absent and let the miss handler
                                // rebuild the tree.
                                break RunTranslation {
                                    outcome: Translated::Hole { level, lba },
                                    at: t_walk,
                                    pipeline_free,
                                    run: self.rebound_run(run.min(wr.run), &chain),
                                    chain_levels,
                                    hole_levels: wr.result.levels,
                                };
                            };
                            chain.push((level.0, lba, plba));
                            (plba, t_walk)
                        }
                        WalkOutcome::Hole => {
                            break RunTranslation {
                                outcome: Translated::Hole { level, lba },
                                at: t_walk,
                                pipeline_free,
                                run: self.rebound_run(run.min(wr.run), &chain),
                                chain_levels,
                                hole_levels: wr.result.levels,
                            };
                        }
                        WalkOutcome::Pruned { .. } => {
                            break RunTranslation {
                                outcome: Translated::Pruned { level, lba },
                                at: t_walk,
                                pipeline_free,
                                run: 1,
                                chain_levels,
                                hole_levels: 0,
                            };
                        }
                        WalkOutcome::Corrupt(_) => {
                            break RunTranslation {
                                outcome: Translated::Corrupt,
                                at: t_walk,
                                pipeline_free,
                                run: 1,
                                chain_levels,
                                hole_levels: 0,
                            };
                        }
                    }
                }
            };
            match self.functions[level.0 as usize].parent {
                Some(parent) => {
                    // The child's "physical" block is the parent's virtual
                    // block; bounds-check against the parent's device size
                    // and recurse up the chain.
                    let psize = self.functions[parent.0 as usize].regs.device_size_blocks;
                    let parent_vlba = next.nested_vlba();
                    if parent_vlba >= Vlba(psize) {
                        break RunTranslation {
                            outcome: Translated::BeyondParent,
                            at: t_done,
                            pipeline_free,
                            run: 1,
                            chain_levels,
                            hole_levels: 0,
                        };
                    }
                    run = run.min(Vlba(psize).distance_from(parent_vlba));
                    level = parent;
                    lba = parent_vlba;
                    t = t_done;
                }
                None => {
                    break RunTranslation {
                        outcome: Translated::Mapped(next),
                        at: t_done,
                        pipeline_free,
                        run: self.rebound_run(run, &chain),
                        chain_levels,
                        hole_levels: 0,
                    };
                }
            }
        };
        self.chain_scratch = chain;
        if self.cur_span.is_some() {
            self.trace_translate(ready, result.at, result.run, result.chain_levels);
        }
        result
    }

    /// Span emission for one translation run. Outlined and `#[cold]` so the
    /// tracing-disabled hot path pays only the `cur_span` test above.
    #[cold]
    fn trace_translate(&self, ready: SimTime, at: SimTime, run: u64, levels: u64) {
        let s = self
            .tracer
            .span(self.cur_span, "core", "translate", ready, at);
        self.tracer.attr(s, "run", run);
        self.tracer.attr(s, "levels", levels);
    }

    /// Re-bounds a run after the whole chain has resolved: blocks past the
    /// first only hit the BTLB if every visited level *still* caches an
    /// entry consistent with the first block's translation — a small cache
    /// can evict an early level's entry while a later level walks (the
    /// historical per-block loop then re-walked every block, and a run
    /// must not paper over that), and a zero-capacity BTLB caches nothing
    /// at all. Returns 1 when batching would diverge from per-block
    /// behavior.
    fn rebound_run(&self, mut run: u64, chain: &[(u16, Vlba, Plba)]) -> u64 {
        if run <= 1 {
            return run.max(1);
        }
        if !chain.is_empty() && self.btlb.capacity() == 0 {
            // BTLB-ablation fast path: a zero-capacity cache holds
            // nothing, so every probe below would miss — identical
            // outcome, none of the probe cost.
            return 1;
        }
        for &(f, lba, plba) in chain {
            match self.btlb.covered_at(f, lba.offset(1)) {
                Some((p, covered)) if p == plba.offset(1) => run = run.min(1 + covered),
                _ => return 1,
            }
        }
        run
    }

    /// Runs the chained tree-node DMAs of one walk on the least-loaded walk
    /// slot; returns when the walk resolves.
    ///
    /// Each level costs one host-memory read round trip plus the node's
    /// wire time. The slot is occupied for the whole chain, so the number
    /// of slots (`walk_overlap`) bounds concurrent walks — the latency-
    /// hiding mechanism of §V-B. Tree-node traffic is a few percent of
    /// data traffic (512 B per level vs 1 KiB per block), so its link
    /// *occupancy* is folded into the per-level latency rather than
    /// contending on the link timeline.
    fn run_walk_dmas(&mut self, ready: SimTime, levels: u32) -> SimTime {
        let per_level = self.cfg.link.read_round_trip
            + self.cfg.link.wire_time(self.cfg.tree_node_bytes)
            + self.cfg.walk_level_processing;
        let slot = self.walk_slots.iter_mut().min_by_key(|s| s.free_at());
        debug_assert!(slot.is_some(), "walk_overlap >= 1");
        let Some(slot) = slot else {
            // Degenerate config with zero walk slots: charge nothing.
            return ready;
        };
        let end = slot.serve(ready, per_level * levels as u64).end;
        if self.cur_span.is_some() {
            self.trace_walk(ready, end, levels);
        }
        end
    }

    #[cold]
    fn trace_walk(&self, ready: SimTime, end: SimTime, levels: u32) {
        let s = self
            .tracer
            .span(self.cur_span, "extent", "walk", ready, end);
        self.tracer.attr(s, "levels", levels as u64);
    }

    /// Moves `blocks` consecutive blocks between the store and host memory
    /// — the wall-clock half of a run transfer. Bytes move in a single
    /// copy: reads render store blocks straight into the backing host
    /// pages, writes DMA host bytes straight into the store's block
    /// buffers; no staging buffer in between. `Err` carries the store's
    /// typed error for an invalid physical range (corrupt tree / bad PF
    /// request); the range is validated atomically up front and nothing
    /// simulated happens here.
    fn move_run_data(
        &mut self,
        op: BlockOp,
        plba: Plba,
        buf: HostAddr,
        block_index: u64,
        blocks: u64,
    ) -> Result<(), StoreError> {
        let host_addr = buf + block_index * BLOCK_SIZE;
        self.store.check_range(plba, blocks)?;
        match op {
            BlockOp::Read => {
                let store = &self.store;
                let mut mem = self.mem.borrow_mut();
                if !store.maybe_written_in(plba, blocks) {
                    // The whole run is provably unwritten: one sparse
                    // zero-fill (per destination page, not per block)
                    // replaces the per-block store probes below.
                    mem.fill_zero(host_addr, blocks * BLOCK_SIZE);
                } else {
                    for k in 0..blocks {
                        let a = host_addr + k * BLOCK_SIZE;
                        match store.block(plba.offset(k)) {
                            // Written blocks move their actual bytes;
                            // reading a never-written (all-zero) block
                            // zero-fills sparsely, so untouched destination
                            // pages stay unmaterialized.
                            Some(b) => mem.write(a, b),
                            None => mem.fill_zero(a, BLOCK_SIZE),
                        }
                    }
                }
            }
            BlockOp::Write => {
                let mem = self.mem.borrow();
                for k in 0..blocks {
                    match self.store.block_mut(plba.offset(k)) {
                        Ok(dst) => mem.read(host_addr + k * BLOCK_SIZE, dst),
                        Err(e) => {
                            // check_range validated the whole run; a block
                            // failing mid-run means the store changed under
                            // us. Surface the device error.
                            debug_assert!(false, "range checked above: {e}");
                            return Err(e);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The simulated-timing half of a run's transfer: media, DMA engine,
    /// and link occupancy for every block, in the same unit order as
    /// always. `times[j]` holds block `j`'s ready (translation-done) time
    /// on entry and its end-to-end completion time on return.
    ///
    /// Each unit is an independent FIFO timeline and the data only flows
    /// forward (media → engine → link for reads, link → engine → media for
    /// writes), so running one unit over the whole run before the next
    /// unit produces intervals identical to the historical per-block
    /// interleaving — while paying each unit's fixed costs once per run
    /// instead of once per block.
    fn transfer_run_timing(&mut self, op: BlockOp, plba: Plba, times: &mut [SimTime]) {
        // One flag for both observers: the span emission stays gated on
        // `cur_span` exactly as before, the flight events on the recorder,
        // and with both off the hot path pays only these tests.
        let record = self.cur_span.is_some() || self.flight.is_enabled();
        match op {
            BlockOp::Read => {
                let t0 = if record { times.first().copied() } else { None };
                self.media.access_run(
                    BlockOp::Read,
                    plba.byte_offset(),
                    BLOCK_SIZE,
                    BLOCK_SIZE,
                    times,
                );
                if t0.is_some() {
                    if self.cur_span.is_some() {
                        self.media_span(t0, times);
                    }
                    self.flight_service(FlightEventKind::MediaService, t0, times);
                }
                self.engine_read.transfer_run(BLOCK_SIZE, times);
                let l0 = if self.flight.is_enabled() {
                    times.first().copied()
                } else {
                    None
                };
                self.link.dma_write_run(BLOCK_SIZE, times);
                if l0.is_some() {
                    self.flight_service(FlightEventKind::LinkService, l0, times);
                }
            }
            BlockOp::Write => {
                let l0 = if self.flight.is_enabled() {
                    times.first().copied()
                } else {
                    None
                };
                self.link.dma_read_run(BLOCK_SIZE, times);
                if l0.is_some() {
                    self.flight_service(FlightEventKind::LinkService, l0, times);
                }
                self.engine_write.transfer_run(BLOCK_SIZE, times);
                let t0 = if record { times.first().copied() } else { None };
                self.media.access_run(
                    BlockOp::Write,
                    plba.byte_offset(),
                    BLOCK_SIZE,
                    BLOCK_SIZE,
                    times,
                );
                if t0.is_some() {
                    if self.cur_span.is_some() {
                        self.media_span(t0, times);
                    }
                    self.flight_service(FlightEventKind::MediaService, t0, times);
                }
            }
        }
    }

    /// Appends one flight event for a batched media/link pass: `t0` is the
    /// first block's entry into the unit, `times` holds the per-block
    /// completion times (the event lands at the last one). Call sites gate
    /// on `t0.is_some()`, so the recorder-disabled hot path never reaches
    /// this (and unlike [`media_span`](Self::media_span) it is *not*
    /// `#[cold]`: when the recorder is on it runs twice per transfer run).
    fn flight_service(&self, kind: FlightEventKind, t0: Option<SimTime>, times: &[SimTime]) {
        if !self.flight.is_enabled() {
            return;
        }
        if let (Some(start), Some(&end)) = (t0, times.last()) {
            self.flight.append(
                end,
                kind,
                self.cur_func,
                start.as_nanos(),
                times.len() as u64,
            );
        }
    }

    /// Records a `storage`-layer span for one batched media pass:
    /// `t0` is the first block's arrival at the medium (None when tracing
    /// is off), `times` holds the per-block media completion times.
    #[cold]
    fn media_span(&mut self, t0: Option<SimTime>, times: &[SimTime]) {
        if let (Some(start), Some(&end)) = (t0, times.last()) {
            let s = self
                .tracer
                .span(self.cur_span, "storage", "media", start, end);
            self.tracer.attr(s, "blocks", times.len() as u64);
        }
    }

    /// Length of the unmapped vLBA run starting at `vlba`, capped at
    /// `max_blocks` — what the device reports in `MissSize`. Hole spans
    /// come back from a single walk each instead of one walk per block.
    fn unmapped_run(&self, root: HostAddr, vlba: Vlba, max_blocks: u64) -> u64 {
        let mem = self.mem.borrow();
        let mut run = 0;
        while run < max_blocks {
            let wr = walk_run(&mem, root, vlba.offset(run), max_blocks - run);
            match wr.result.outcome {
                WalkOutcome::Hole => run += wr.run,
                WalkOutcome::Pruned { .. } => run += 1,
                _ => break,
            }
        }
        run.min(max_blocks).max(1)
    }

    fn stall(
        &mut self,
        func: FuncId,
        level: FuncId,
        pending: PendingRequest,
        resume_block: u64,
        at: SimTime,
        reason: IrqReason,
    ) {
        let vlba_bytes = match reason {
            IrqReason::WriteMiss { miss_vlba, .. } => miss_vlba.byte_offset(),
            IrqReason::MappingPruned { vlba } => vlba.byte_offset(),
        };
        let miss_bytes = match reason {
            IrqReason::WriteMiss { miss_blocks, .. } => miss_blocks * BLOCK_SIZE,
            IrqReason::MappingPruned { .. } => BLOCK_SIZE,
        };
        // The miss registers live on the *level* whose tree missed (for a
        // plain VF that is the requester itself).
        let lvl = &mut self.functions[level.0 as usize];
        lvl.regs.miss_address = vlba_bytes;
        lvl.regs.miss_size = miss_bytes.min(u32::MAX as u64) as u32;
        self.functions[func.0 as usize].stalled = Some(StalledRequest {
            pending,
            resume_block,
            stalled_at: at,
        });
        self.stalled_func = Some(func);
        self.stall_level = Some(level);
        self.stats.miss_interrupts += 1;
        self.outputs.push(NescOutput::HostInterrupt {
            at: at + self.cfg.interrupt_cost,
            func: level,
            reason,
        });
    }

    fn complete(&mut self, at: SimTime, func: FuncId, id: RequestId, status: CompletionStatus) {
        match status {
            CompletionStatus::Ok => self.stats.requests_completed += 1,
            _ => self.stats.requests_failed += 1,
        }
        self.outputs.push(NescOutput::Completion {
            at: at + self.cfg.interrupt_cost,
            func,
            id,
            status,
        });
    }

    fn count_blocks(&mut self, op: BlockOp, n: u64) {
        match op {
            BlockOp::Read => self.stats.blocks_read += n,
            BlockOp::Write => self.stats.blocks_written += n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_extent::{ExtentMapping, ExtentTree};

    const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 2);

    fn setup() -> (Rc<RefCell<HostMemory>>, NescDevice) {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 4096; // keep tests light
        let dev = NescDevice::new(cfg, Rc::clone(&mem));
        (mem, dev)
    }

    fn make_vf(
        mem: &Rc<RefCell<HostMemory>>,
        dev: &mut NescDevice,
        extents: &[ExtentMapping],
        size_blocks: u64,
    ) -> FuncId {
        let tree: ExtentTree = extents.iter().copied().collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        dev.create_vf(root, size_blocks).unwrap()
    }

    fn alloc_buf(mem: &Rc<RefCell<HostMemory>>, blocks: u64) -> HostAddr {
        mem.borrow_mut().alloc(blocks * BLOCK_SIZE, 8)
    }

    #[test]
    fn vf_write_lands_on_mapped_physical_blocks() {
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 8)],
            8,
        );
        let buf = alloc_buf(&mem, 2);
        mem.borrow_mut().write(buf, &[0xCD; 2048]);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(2), 2),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        // vLBA 2,3 -> pLBA 102,103.
        assert_eq!(dev.store().read_block(Plba(102)).unwrap(), vec![0xCD; 1024]);
        assert_eq!(dev.store().read_block(Plba(103)).unwrap(), vec![0xCD; 1024]);
        assert!(!dev.store().is_written(Plba(100)));
    }

    #[test]
    fn vf_read_returns_mapped_data_and_zeros_for_holes() {
        let (mem, mut dev) = setup();
        // Map only vLBA 0; vLBA 1 is a hole.
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(50), 1)],
            8,
        );
        dev.store_mut()
            .write_block(Plba(50), &vec![0xEE; 1024])
            .unwrap();
        let buf = alloc_buf(&mem, 2);
        // Pre-poison the buffer to prove zero-fill really writes zeros.
        mem.borrow_mut().write(buf, &[0xFF; 2048]);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(0), 2),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert_eq!(outs.len(), 1);
        let got = mem.borrow().read_vec(buf, 2048);
        assert!(got[..1024].iter().all(|&b| b == 0xEE));
        assert!(got[1024..].iter().all(|&b| b == 0x00));
        assert_eq!(dev.stats().zero_fill_blocks, 1);
    }

    #[test]
    fn write_miss_interrupts_and_rewalk_resumes() {
        let (mem, mut dev) = setup();
        // Empty tree: every write misses.
        let vf = make_vf(&mem, &mut dev, &[], 8);
        let buf = alloc_buf(&mem, 1);
        mem.borrow_mut().write(buf, &[0x11; 1024]);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(3), BlockOp::Write, Vlba(4), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let irq = outs
            .iter()
            .find_map(|o| match o {
                NescOutput::HostInterrupt { at, reason, .. } => Some((*at, *reason)),
                _ => None,
            })
            .expect("write to empty tree must interrupt the host");
        match irq.1 {
            IrqReason::WriteMiss {
                miss_vlba,
                miss_blocks,
            } => {
                assert_eq!(miss_vlba, Vlba(4));
                assert_eq!(miss_blocks, 1);
            }
            other => panic!("wrong irq {other:?}"),
        }
        // Registers reflect the miss.
        assert_eq!(dev.mmio_read(vf, offsets::MISS_ADDRESS), 4 * 1024);
        assert_eq!(dev.mmio_read(vf, offsets::MISS_SIZE), 1024);

        // Hypervisor allocates pLBA 200 for vLBA 4 and rebuilds the tree.
        let tree: ExtentTree = [ExtentMapping::new(Vlba(4), Plba(200), 1)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let resume_at = irq.0 + SimDuration::from_micros(20);
        dev.mmio_write(vf, offsets::EXTENT_TREE_ROOT, root, resume_at);
        dev.mmio_write(vf, offsets::REWALK_TREE, 1, resume_at);

        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        assert_eq!(dev.store().read_block(Plba(200)).unwrap(), vec![0x11; 1024]);
        assert_eq!(dev.stats().miss_interrupts, 1);
    }

    #[test]
    fn failed_allocation_completes_with_write_failure() {
        let (mem, mut dev) = setup();
        let vf = make_vf(&mem, &mut dev, &[], 8);
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(4), BlockOp::Write, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let irq_at = outs
            .iter()
            .find(|o| !o.is_completion())
            .expect("interrupt")
            .at();
        dev.fail_stalled(vf, irq_at + SimDuration::from_micros(5));
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::WriteFailed,
                ..
            })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 4)],
            4,
        );
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(5), BlockOp::Read, Vlba(4), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs[0],
            NescOutput::Completion {
                status: CompletionStatus::OutOfRange,
                ..
            }
        ));
    }

    #[test]
    fn pf_bypasses_translation() {
        let (mem, mut dev) = setup();
        let buf = alloc_buf(&mem, 1);
        mem.borrow_mut().write(buf, &[0x77; 1024]);
        dev.submit_pf(
            SimTime::ZERO,
            BlockRequest::new(RequestId(6), BlockOp::Write, Plba(9), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(outs[0].is_completion());
        assert_eq!(dev.store().read_block(Plba(9)).unwrap(), vec![0x77; 1024]);
        assert_eq!(dev.stats().oob_requests, 1);
        assert_eq!(dev.stats().walks, 0, "PF never walks a tree");
    }

    #[test]
    fn pf_progresses_while_vf_stalled() {
        let (mem, mut dev) = setup();
        let vf = make_vf(&mem, &mut dev, &[], 8);
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(7), BlockOp::Write, Vlba(0), 1),
            buf,
        );
        let _ = dev.advance(HORIZON); // VF now stalled
                                      // The PF's OOB channel still works.
        let pf_buf = alloc_buf(&mem, 1);
        dev.submit_pf(
            SimTime::from_nanos(1_000_000),
            BlockRequest::new(RequestId(8), BlockOp::Read, Plba(0), 1),
            pf_buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(outs.iter().any(|o| matches!(
            o,
            NescOutput::Completion {
                id: RequestId(8),
                status: CompletionStatus::Ok,
                ..
            }
        )));
        // ...but another VF's traffic is blocked behind the stall.
        let vf2 = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(300), 1)],
            1,
        );
        dev.submit(
            SimTime::from_nanos(2_000_000),
            vf2,
            BlockRequest::new(RequestId(9), BlockOp::Read, Vlba(0), 1),
            pf_buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(
            !outs.iter().any(|o| matches!(
                o,
                NescOutput::Completion {
                    id: RequestId(9),
                    ..
                }
            )),
            "VF traffic must wait for the stall to resolve"
        );
    }

    #[test]
    fn isolation_vfs_cannot_touch_each_others_blocks() {
        let (mem, mut dev) = setup();
        let vf_a = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 4)],
            4,
        );
        let vf_b = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(200), 4)],
            4,
        );
        let buf = alloc_buf(&mem, 4);
        mem.borrow_mut().write(buf, &[0xAA; 4096]);
        dev.submit(
            SimTime::ZERO,
            vf_a,
            BlockRequest::new(RequestId(10), BlockOp::Write, Vlba(0), 4),
            buf,
        );
        let buf_b = alloc_buf(&mem, 4);
        mem.borrow_mut().write(buf_b, &[0xBB; 4096]);
        dev.submit(
            SimTime::ZERO,
            vf_b,
            BlockRequest::new(RequestId(11), BlockOp::Write, Vlba(0), 4),
            buf_b,
        );
        dev.advance(HORIZON);
        for b in 100..104 {
            assert_eq!(dev.store().read_block(Plba(b)).unwrap(), vec![0xAA; 1024]);
        }
        for b in 200..204 {
            assert_eq!(dev.store().read_block(Plba(b)).unwrap(), vec![0xBB; 1024]);
        }
    }

    #[test]
    fn round_robin_interleaves_functions() {
        let (mem, mut dev) = setup();
        let vf_a = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 64)],
            64,
        );
        let vf_b = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(400), 64)],
            64,
        );
        let buf = alloc_buf(&mem, 1);
        // Queue 4 single-block reads on each VF at t=0, then check the
        // completion order alternates A/B rather than draining A first.
        for i in 0..4u64 {
            dev.submit(
                SimTime::ZERO,
                vf_a,
                BlockRequest::new(RequestId(100 + i), BlockOp::Read, Vlba(i), 1),
                buf,
            );
            dev.submit(
                SimTime::ZERO,
                vf_b,
                BlockRequest::new(RequestId(200 + i), BlockOp::Read, Vlba(i), 1),
                buf,
            );
        }
        let outs = dev.advance(HORIZON);
        let order: Vec<u64> = outs
            .iter()
            .filter_map(|o| match o {
                NescOutput::Completion { id, .. } => Some(id.0 / 100),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2, 1, 2], "strict alternation");
    }

    #[test]
    fn btlb_caches_sequential_translations() {
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 128)],
            128,
        );
        let buf = alloc_buf(&mem, 128);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 128),
            buf,
        );
        dev.advance(HORIZON);
        // One walk for the first block, 127 BTLB hits after it.
        assert_eq!(dev.stats().walks, 1);
        assert_eq!(dev.btlb().hits(), 127);
    }

    #[test]
    fn vf_lifecycle_and_slot_reuse() {
        let (mem, mut dev) = setup();
        let a = make_vf(&mem, &mut dev, &[], 1);
        assert_eq!(dev.live_vfs(), 1);
        dev.delete_vf(a).unwrap();
        assert_eq!(dev.live_vfs(), 0);
        let b = make_vf(&mem, &mut dev, &[], 1);
        assert_eq!(a, b, "dead slot is reused");
        assert!(matches!(dev.delete_vf(dev.pf()), Err(VfError::NotAVf)));
        assert!(matches!(
            dev.delete_vf(FuncId(40)),
            Err(VfError::NoSuchVf { .. })
        ));
        // Submitting to a deleted VF produces an error completion.
        dev.delete_vf(b).unwrap();
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            b,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs[0],
            NescOutput::Completion {
                status: CompletionStatus::DeviceError,
                ..
            }
        ));
    }

    #[test]
    fn vf_exhaustion() {
        let (mem, mut dev) = setup();
        let root = ExtentTree::new().serialize(&mut mem.borrow_mut());
        for _ in 0..dev.config().max_vfs {
            dev.create_vf(root, 1).unwrap();
        }
        assert!(matches!(
            dev.create_vf(root, 1),
            Err(VfError::Exhausted { max_vfs: 64 })
        ));
    }

    #[test]
    fn shared_tree_between_vfs() {
        let (mem, mut dev) = setup();
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(500), 2)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let a = dev.create_vf(root, 2).unwrap();
        let b = dev.create_vf(root, 2).unwrap();
        let buf = alloc_buf(&mem, 1);
        mem.borrow_mut().write(buf, &[0x42; 1024]);
        dev.submit(
            SimTime::ZERO,
            a,
            BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(0), 1),
            buf,
        );
        dev.advance(HORIZON);
        let rbuf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::from_nanos(1_000_000),
            b,
            BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(0), 1),
            rbuf,
        );
        dev.advance(HORIZON);
        assert_eq!(mem.borrow().read_vec(rbuf, 1024), vec![0x42; 1024]);
    }

    #[test]
    fn read_latency_small_block_is_microseconds() {
        // Sanity-check the latency magnitude the Fig. 9 harness relies on:
        // a 1 KiB VF read should be on the order of a few microseconds.
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 4)],
            4,
        );
        let buf = alloc_buf(&mem, 1);
        let t0 = dev.ring_doorbell(SimTime::ZERO);
        dev.submit(
            t0,
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let lat = outs[0].at().saturating_since(SimTime::ZERO);
        assert!(
            lat > SimDuration::from_nanos(500) && lat < SimDuration::from_micros(20),
            "latency {lat}"
        );
    }

    #[test]
    fn sequential_read_bandwidth_near_engine_ceiling() {
        // Deep sequential reads should approach the 800 MB/s DMA-engine
        // ceiling of the prototype.
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 4000)],
            4000,
        );
        let buf = alloc_buf(&mem, 32);
        let total: u64 = 4000;
        let chunk = 32u64;
        let mut t = SimTime::ZERO;
        for c in 0..total / chunk {
            dev.submit(
                t,
                vf,
                BlockRequest::new(RequestId(c), BlockOp::Read, Vlba(c * chunk), chunk),
                buf,
            );
            t += SimDuration::from_nanos(1); // keep the queue deep
        }
        let outs = dev.advance(HORIZON);
        let end = outs.iter().map(NescOutput::at).max().unwrap();
        let bytes = total * BLOCK_SIZE;
        let mbps = bytes as f64 / 1e6 / end.as_secs_f64();
        assert!(
            mbps > 500.0 && mbps <= 810.0,
            "sequential read bandwidth {mbps:.0} MB/s"
        );
    }

    #[test]
    fn priority_classes_preempt_round_robin() {
        let (mem, mut dev) = setup();
        let hi = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 64)],
            64,
        );
        let lo = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(512), 64)],
            64,
        );
        dev.set_priority(hi, 0).unwrap();
        dev.set_priority(lo, 3).unwrap();
        let buf = alloc_buf(&mem, 1);
        // Queue the low-priority request *first*; the high-priority one
        // must still be dispatched ahead of it.
        dev.submit(
            SimTime::ZERO,
            lo,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        dev.submit(
            SimTime::ZERO,
            hi,
            BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let order: Vec<u64> = outs
            .iter()
            .filter_map(|o| match o {
                NescOutput::Completion { id, .. } => Some(id.0),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![2, 1], "high priority completes first");
    }

    #[test]
    fn equal_priority_falls_back_to_round_robin() {
        let (mem, mut dev) = setup();
        let a = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 8)],
            8,
        );
        let b = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(64), 8)],
            8,
        );
        let buf = alloc_buf(&mem, 1);
        for i in 0..3u64 {
            dev.submit(
                SimTime::ZERO,
                a,
                BlockRequest::new(RequestId(10 + i), BlockOp::Read, Vlba(i), 1),
                buf,
            );
            dev.submit(
                SimTime::ZERO,
                b,
                BlockRequest::new(RequestId(20 + i), BlockOp::Read, Vlba(i), 1),
                buf,
            );
        }
        let outs = dev.advance(HORIZON);
        let order: Vec<u64> = outs
            .iter()
            .filter_map(|o| match o {
                NescOutput::Completion { id, .. } => Some(id.0 / 10),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn function_counters_track_service() {
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 16)],
            16,
        );
        let buf = alloc_buf(&mem, 4);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 4),
            buf,
        );
        dev.advance(HORIZON);
        assert_eq!(dev.function_counters(vf), (1, 4));
        assert_eq!(dev.function_counters(dev.pf()), (0, 0));
        // PF traffic is counted on the PF.
        dev.submit_pf(
            SimTime::from_nanos(1_000_000),
            BlockRequest::new(RequestId(2), BlockOp::Read, Plba(0), 2),
            buf,
        );
        dev.advance(HORIZON);
        assert_eq!(dev.function_counters(dev.pf()), (1, 2));
        // Unknown functions read as zero.
        assert_eq!(dev.function_counters(FuncId(99)), (0, 0));
    }

    #[test]
    fn set_priority_validates_target() {
        let (mem, mut dev) = setup();
        let vf = make_vf(&mem, &mut dev, &[], 1);
        assert!(dev.set_priority(vf, 2).is_ok());
        assert!(matches!(
            dev.set_priority(dev.pf(), 0),
            Err(VfError::NotAVf)
        ));
        assert!(matches!(
            dev.set_priority(FuncId(50), 0),
            Err(VfError::NoSuchVf { .. })
        ));
        // Priorities clamp to the supported class count.
        dev.set_priority(vf, 200).unwrap();
    }

    #[test]
    fn tracing_records_request_lifecycle() {
        let (mem, mut dev) = setup();
        dev.set_tracing(true);
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 64)],
            64,
        );
        let buf = alloc_buf(&mem, 4);
        let t0 = dev.ring_doorbell(SimTime::ZERO);
        dev.submit(
            t0,
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 4),
            buf,
        );
        dev.submit(
            t0,
            vf,
            BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(4), 4),
            buf,
        );
        dev.advance(HORIZON);
        let traces = dev.take_traces();
        assert_eq!(traces.len(), 2);
        let t = &traces[0];
        assert_eq!(t.id, RequestId(1));
        assert_eq!(t.blocks, 4);
        assert_eq!(t.walks, 1, "first block walks");
        assert_eq!(t.btlb_hits, 3, "rest hit the fresh extent");
        assert!(!t.stalled);
        assert!(t.completed > t.dispatched && t.dispatched >= t.arrived);
        assert!(t.latency() > t.queueing());
        // Second request is all hits.
        assert_eq!(traces[1].walks, 0);
        assert_eq!(traces[1].btlb_hits, 4);
        // Drained: nothing left.
        assert!(dev.take_traces().is_empty());
    }

    #[test]
    fn tracing_marks_resumed_requests_as_stalled() {
        let (mem, mut dev) = setup();
        dev.set_tracing(true);
        let vf = make_vf(&mem, &mut dev, &[], 8);
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(3), BlockOp::Write, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(dev.take_traces().is_empty(), "no trace while stalled");
        let irq_at = outs.iter().find(|o| !o.is_completion()).unwrap().at();
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(50), 1)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        dev.mmio_write(vf, offsets::EXTENT_TREE_ROOT, root, irq_at);
        dev.mmio_write(vf, offsets::REWALK_TREE, 1, irq_at);
        dev.advance(HORIZON);
        let traces = dev.take_traces();
        assert_eq!(traces.len(), 1);
        assert!(
            traces[0].stalled,
            "a request that missed is stalled even when it resumes from block 0"
        );
        assert!(matches!(traces[0].status, CompletionStatus::Ok));
    }

    #[test]
    fn tracing_off_records_nothing() {
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 4)],
            4,
        );
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        dev.advance(HORIZON);
        assert!(dev.take_traces().is_empty());
    }

    #[test]
    fn command_ring_end_to_end() {
        use crate::ring::{RingDescriptor, DESCRIPTOR_BYTES};
        let (mem, mut dev) = setup();
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 64)],
            64,
        );
        // Guest driver sets up an 8-slot ring.
        let ring_base = mem.borrow_mut().alloc(8 * DESCRIPTOR_BYTES, 4096);
        dev.mmio_write(vf, offsets::RING_BASE, ring_base, SimTime::ZERO);
        dev.mmio_write(vf, offsets::RING_ENTRIES, 8, SimTime::ZERO);
        // Two descriptors: a write then a read-back into another buffer.
        let wbuf = alloc_buf(&mem, 2);
        let rbuf = alloc_buf(&mem, 2);
        mem.borrow_mut().write(wbuf, &[0xC4; 2048]);
        let descs = [
            RingDescriptor::new(BlockOp::Write, RequestId(1), Vlba(4), 2, wbuf),
            RingDescriptor::new(BlockOp::Read, RequestId(2), Vlba(4), 2, rbuf),
        ];
        for (i, d) in descs.iter().enumerate() {
            mem.borrow_mut()
                .write(ring_base + i as u64 * DESCRIPTOR_BYTES, &d.encode());
        }
        // Doorbell: tail = 2.
        dev.mmio_write(vf, offsets::RING_TAIL, 2, SimTime::ZERO);
        let outs = dev.advance(HORIZON);
        let ok = outs
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    NescOutput::Completion {
                        status: CompletionStatus::Ok,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(ok, 2);
        assert_eq!(mem.borrow().read_vec(rbuf, 2048), vec![0xC4; 2048]);
        // The ring regs read back; head advanced internally.
        assert_eq!(dev.mmio_read(vf, offsets::RING_BASE), ring_base);
        assert_eq!(dev.mmio_read(vf, offsets::RING_ENTRIES), 8);
    }

    #[test]
    fn doorbell_without_configured_ring_is_harmless() {
        let (mem, mut dev) = setup();
        let vf = make_vf(&mem, &mut dev, &[], 8);
        dev.mmio_write(vf, offsets::RING_TAIL, 5, SimTime::ZERO);
        assert!(dev.advance(HORIZON).is_empty());
    }

    #[test]
    fn nested_vf_composes_translations() {
        let (mem, mut dev) = setup();
        // L1: parent VF maps its 32-block disk to pLBA 100..132.
        let parent = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 32)],
            32,
        );
        // L2: the nested guest's hypervisor exposes parent blocks 8..16 as
        // a nested disk.
        let l2: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(8), 8)]
            .into_iter()
            .collect();
        let l2_root = l2.serialize(&mut mem.borrow_mut());
        let nested = dev.create_nested_vf(parent, l2_root, 8).unwrap();

        let buf = alloc_buf(&mem, 1);
        mem.borrow_mut().write(buf, &[0x2F; 1024]);
        dev.submit(
            SimTime::ZERO,
            nested,
            BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(3), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        // nested vLBA 3 -> parent vLBA 11 -> pLBA 111.
        assert_eq!(dev.store().read_block(Plba(111)).unwrap(), vec![0x2F; 1024]);
        // The nested VF cannot reach parent blocks outside its L2 tree:
        // vLBA 8 is out of its device size.
        dev.submit(
            SimTime::from_nanos(1_000_000),
            nested,
            BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(8), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::OutOfRange,
                ..
            })
        ));
    }

    #[test]
    fn nested_vf_escape_beyond_parent_rejected() {
        let (mem, mut dev) = setup();
        let parent = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 8)],
            8,
        );
        // Malicious L2 tree points past the parent's 8-block device.
        let evil: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 4)]
            .into_iter()
            .collect();
        let root = evil.serialize(&mut mem.borrow_mut());
        let nested = dev.create_nested_vf(parent, root, 4).unwrap();
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::ZERO,
            nested,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::OutOfRange,
                ..
            })
        ));
        // pLBA 100 was never touched.
        assert!(!dev.store().is_written(Plba(100)));
    }

    #[test]
    fn nested_parent_level_miss_interrupts_parent_and_resumes() {
        let (mem, mut dev) = setup();
        // Parent has an *empty* tree (thin L1 disk); nested maps into it.
        let parent = make_vf(&mem, &mut dev, &[], 32);
        let l2: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(4), 4)]
            .into_iter()
            .collect();
        let l2_root = l2.serialize(&mut mem.borrow_mut());
        let nested = dev.create_nested_vf(parent, l2_root, 4).unwrap();
        let buf = alloc_buf(&mem, 1);
        mem.borrow_mut().write(buf, &[0x3D; 1024]);
        dev.submit(
            SimTime::ZERO,
            nested,
            BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(0), 1),
            buf,
        );
        let outs = dev.advance(HORIZON);
        // The interrupt is attributed to the *parent* level whose tree
        // missed (nested vLBA 0 -> parent vLBA 4, unmapped).
        let (irq_func, at) = outs
            .iter()
            .find_map(|o| match o {
                NescOutput::HostInterrupt { func, at, .. } => Some((*func, *at)),
                _ => None,
            })
            .expect("parent-level miss");
        assert_eq!(irq_func, parent);
        assert_eq!(dev.mmio_read(parent, offsets::MISS_ADDRESS), 4 * 1024);
        // The host allocates parent vLBA 4 -> pLBA 200 and rewalks the
        // parent.
        let l1: ExtentTree = [ExtentMapping::new(Vlba(4), Plba(200), 1)]
            .into_iter()
            .collect();
        let l1_root = l1.serialize(&mut mem.borrow_mut());
        dev.mmio_write(parent, offsets::EXTENT_TREE_ROOT, l1_root, at);
        dev.mmio_write(parent, offsets::REWALK_TREE, 1, at);
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        assert_eq!(dev.store().read_block(Plba(200)).unwrap(), vec![0x3D; 1024]);
    }

    #[test]
    fn deleting_parent_cascades_to_nested_children() {
        let (mem, mut dev) = setup();
        let parent = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 8)],
            8,
        );
        let l2 = ExtentTree::new().serialize(&mut mem.borrow_mut());
        let child = dev.create_nested_vf(parent, l2, 4).unwrap();
        assert_eq!(dev.live_vfs(), 2);
        dev.delete_vf(parent).unwrap();
        assert_eq!(dev.live_vfs(), 0);
        assert!(matches!(
            dev.delete_vf(child),
            Err(VfError::NoSuchVf { .. })
        ));
        // Nested creation under a dead parent fails.
        assert!(dev.create_nested_vf(parent, l2, 1).is_err());
    }

    #[test]
    fn next_event_time_reports_earliest() {
        let (mem, mut dev) = setup();
        assert_eq!(dev.next_event_time(), None);
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(0), 1)],
            1,
        );
        let buf = alloc_buf(&mem, 1);
        dev.submit(
            SimTime::from_nanos(100),
            vf,
            BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(0), 1),
            buf,
        );
        assert_eq!(dev.next_event_time(), Some(SimTime::from_nanos(100)));
    }

    // --- Run-batching edge cases -------------------------------------

    #[test]
    fn run_splits_exactly_on_extent_boundary() {
        let (mem, mut dev) = setup();
        // Two adjacent vLBA extents with discontinuous physical targets:
        // a run may never cross the boundary.
        let vf = make_vf(
            &mem,
            &mut dev,
            &[
                ExtentMapping::new(Vlba(0), Plba(100), 4),
                ExtentMapping::new(Vlba(4), Plba(500), 4),
            ],
            8,
        );
        let buf = alloc_buf(&mem, 8);
        let mut pat = [0u8; 8 * 1024];
        for (k, chunk) in pat.chunks_mut(1024).enumerate() {
            chunk.fill(0xA0 + k as u8);
        }
        mem.borrow_mut().write(buf, &pat);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(21), BlockOp::Write, Vlba(0), 8),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        // First run lands on pLBA 100..104, second on 500..504.
        for k in 0..4u64 {
            assert_eq!(
                dev.store().read_block(Plba(100 + k)).unwrap(),
                vec![0xA0 + k as u8; 1024]
            );
            assert_eq!(
                dev.store().read_block(Plba(500 + k)).unwrap(),
                vec![0xA4 + k as u8; 1024]
            );
        }
        // One walk per extent: batching must not re-walk inside a run.
        assert_eq!(dev.stats().walks, 2);

        // A request ending exactly on the extent boundary is one run.
        let walks_before = dev.stats().walks;
        dev.submit(
            SimTime::from_nanos(1_000_000_000),
            vf,
            BlockRequest::new(RequestId(22), BlockOp::Read, Vlba(4), 4),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        assert_eq!(
            mem.borrow().read_vec(buf, 1024),
            vec![0xA4; 1024],
            "read-back of vLBA 4 must come from pLBA 500"
        );
        // The earlier walk left the extent cached; no new walk needed.
        assert_eq!(dev.stats().walks, walks_before);
    }

    #[test]
    fn hole_mid_run_read_zero_fills_between_mapped_runs() {
        let (mem, mut dev) = setup();
        // mapped [0,2) - hole [2,4) - mapped [4,6): a single read decomposes
        // into a mapped run, a zero-fill run, and another mapped run.
        let vf = make_vf(
            &mem,
            &mut dev,
            &[
                ExtentMapping::new(Vlba(0), Plba(100), 2),
                ExtentMapping::new(Vlba(4), Plba(300), 2),
            ],
            6,
        );
        for p in [100u64, 101] {
            dev.store_mut()
                .write_block(Plba(p), &vec![0x11; 1024])
                .unwrap();
        }
        for p in [300u64, 301] {
            dev.store_mut()
                .write_block(Plba(p), &vec![0x22; 1024])
                .unwrap();
        }
        let buf = alloc_buf(&mem, 6);
        mem.borrow_mut().write(buf, &[0xFF; 6 * 1024]); // poison
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(23), BlockOp::Read, Vlba(0), 6),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert_eq!(outs.len(), 1, "no interrupts: hole reads never stall");
        assert!(matches!(
            outs[0],
            NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            }
        ));
        let got = mem.borrow().read_vec(buf, 6 * 1024);
        assert!(got[..2048].iter().all(|&b| b == 0x11));
        assert!(got[2048..4096].iter().all(|&b| b == 0x00));
        assert!(got[4096..].iter().all(|&b| b == 0x22));
        assert_eq!(dev.stats().zero_fill_blocks, 2);
    }

    #[test]
    fn write_miss_mid_run_flushes_and_resumes_from_miss_block() {
        let (mem, mut dev) = setup();
        // Only vLBA [0,2) is mapped; a 4-block write covers one mapped run
        // then misses at vLBA 2, stalling between the two runs.
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 2)],
            8,
        );
        let buf = alloc_buf(&mem, 4);
        let mut pat = [0u8; 4 * 1024];
        for (k, chunk) in pat.chunks_mut(1024).enumerate() {
            chunk.fill(0xB0 + k as u8);
        }
        mem.borrow_mut().write(buf, &pat);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(24), BlockOp::Write, Vlba(0), 4),
            buf,
        );
        let outs = dev.advance(HORIZON);
        let irq = outs
            .iter()
            .find_map(|o| match o {
                NescOutput::HostInterrupt { at, reason, .. } => Some((*at, *reason)),
                _ => None,
            })
            .expect("mid-request write miss must interrupt");
        match irq.1 {
            IrqReason::WriteMiss {
                miss_vlba,
                miss_blocks,
            } => {
                assert_eq!(miss_vlba, Vlba(2), "miss points at the hole block");
                assert_eq!(miss_blocks, 2);
            }
            other => panic!("wrong irq {other:?}"),
        }
        assert_eq!(dev.mmio_read(vf, offsets::MISS_ADDRESS), 2 * 1024);
        // The first run's data already landed before the stall.
        assert_eq!(dev.store().read_block(Plba(100)).unwrap(), vec![0xB0; 1024]);
        assert_eq!(dev.store().read_block(Plba(101)).unwrap(), vec![0xB1; 1024]);

        // The hypervisor rebuilds the tree, remapping BOTH spans. Writing
        // the new root flushes the function's BTLB entries between the two
        // runs of this request, so the resumed tail must re-walk — and it
        // resumes *from the miss block*: blocks 0-1 are not re-issued and
        // never land on their new pLBA 700.
        let walks_at_stall = dev.stats().walks;
        let tree: ExtentTree = [
            ExtentMapping::new(Vlba(0), Plba(700), 2),
            ExtentMapping::new(Vlba(2), Plba(200), 2),
        ]
        .into_iter()
        .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let resume_at = irq.0 + SimDuration::from_micros(20);
        dev.mmio_write(vf, offsets::EXTENT_TREE_ROOT, root, resume_at);
        dev.mmio_write(vf, offsets::REWALK_TREE, 1, resume_at);
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        assert_eq!(dev.store().read_block(Plba(200)).unwrap(), vec![0xB2; 1024]);
        assert_eq!(dev.store().read_block(Plba(201)).unwrap(), vec![0xB3; 1024]);
        assert!(
            !dev.store().is_written(Plba(700)),
            "resume must not replay the already-transferred run"
        );
        assert!(
            dev.stats().walks > walks_at_stall,
            "flushed BTLB forces the resumed run to walk the new tree"
        );
        assert_eq!(dev.stats().miss_interrupts, 1);
    }

    #[test]
    fn capacity_zero_btlb_degenerates_to_per_block_walks() {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 4096;
        cfg.btlb_entries = 0; // ablation: no BTLB at all
        let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
        let vf = make_vf(
            &mem,
            &mut dev,
            &[ExtentMapping::new(Vlba(0), Plba(100), 8)],
            8,
        );
        let buf = alloc_buf(&mem, 8);
        mem.borrow_mut().write(buf, &[0x5A; 8 * 1024]);
        dev.submit(
            SimTime::ZERO,
            vf,
            BlockRequest::new(RequestId(25), BlockOp::Write, Vlba(0), 8),
            buf,
        );
        let outs = dev.advance(HORIZON);
        assert!(matches!(
            outs.last(),
            Some(NescOutput::Completion {
                status: CompletionStatus::Ok,
                ..
            })
        ));
        // Without a BTLB nothing can cover a second block, so every block
        // is its own run and walks the tree itself.
        assert_eq!(dev.stats().walks, 8);
        assert_eq!(dev.btlb().hits(), 0);
        for k in 0..8u64 {
            assert_eq!(
                dev.store().read_block(Plba(100 + k)).unwrap(),
                vec![0x5A; 1024]
            );
        }
    }

    /// Device-level invariance: the same mixed stream must produce
    /// identical outputs, stats, and stored bytes whatever the run cap —
    /// run batching is a wall-clock optimization, not a model change.
    #[test]
    fn mixed_stream_invariant_across_run_caps() {
        fn run_stream(max_run_blocks: u64) -> (Vec<NescOutput>, DeviceStats, u64, Vec<Vec<u8>>) {
            let mem = Rc::new(RefCell::new(HostMemory::new()));
            let mut cfg = NescConfig::prototype();
            cfg.capacity_blocks = 4096;
            cfg.max_run_blocks = max_run_blocks;
            let mut dev = NescDevice::new(cfg, Rc::clone(&mem));
            let vf = make_vf(
                &mem,
                &mut dev,
                &[
                    ExtentMapping::new(Vlba(0), Plba(100), 5),
                    ExtentMapping::new(Vlba(5), Plba(400), 3),
                ],
                16, // vLBA [8,16) is a hole
            );
            let buf = alloc_buf(&mem, 10);
            let mut pat = [0u8; 10 * 1024];
            for (k, chunk) in pat.chunks_mut(1024).enumerate() {
                chunk.fill(0xC0 + k as u8);
            }
            mem.borrow_mut().write(buf, &pat);
            let us = SimDuration::from_micros(100);
            let reqs = [
                BlockRequest::new(RequestId(1), BlockOp::Write, Vlba(2), 6),
                BlockRequest::new(RequestId(2), BlockOp::Read, Vlba(0), 10),
                BlockRequest::new(RequestId(3), BlockOp::Write, Vlba(5), 3),
                BlockRequest::new(RequestId(4), BlockOp::Read, Vlba(4), 4),
            ];
            let mut outs = Vec::new();
            for (k, req) in reqs.into_iter().enumerate() {
                dev.submit(SimTime::ZERO + us * (k as u64), vf, req, buf);
                outs.extend(dev.advance(HORIZON));
            }
            let stored: Vec<Vec<u8>> = (0..5)
                .map(|k| 100 + k)
                .chain((0..3).map(|k| 400 + k))
                .map(|p| {
                    dev.store()
                        .read_block(Plba(p))
                        .unwrap_or_else(|_| vec![0u8; 1024])
                })
                .collect();
            (outs, dev.stats(), dev.btlb().hits(), stored)
        }

        let baseline = run_stream(1);
        for cap in [3, u64::MAX] {
            let got = run_stream(cap);
            assert_eq!(got.0, baseline.0, "outputs differ at run cap {cap}");
            assert_eq!(got.1, baseline.1, "stats differ at run cap {cap}");
            assert_eq!(got.2, baseline.2, "BTLB hits differ at run cap {cap}");
            assert_eq!(got.3, baseline.3, "stored bytes differ at cap {cap}");
        }
    }
}
