//! Controller configuration.
//!
//! All timing knobs of the device model live here, with two presets:
//! [`NescConfig::prototype`] calibrated to the paper's VC707 prototype
//! (PCIe gen2 x8, DMA engine ceilings of ~800 MB/s read / ~1 GB/s write,
//! 8-entry BTLB, two overlapped block walks) and [`NescConfig::gen3`]
//! representing the commercial-device projection the paper argues for.

use nesc_pcie::LinkParams;
use nesc_sim::SimDuration;
use nesc_storage::{Media, RamMedia};

/// Static configuration of a [`NescDevice`][crate::NescDevice].
#[derive(Debug, Clone)]
pub struct NescConfig {
    /// PCIe link parameters.
    pub link: LinkParams,
    /// Storage medium timing model.
    pub media: Media,
    /// Device capacity in 1 KiB blocks (the VC707 has 1 GB of DDR3).
    pub capacity_blocks: u64,
    /// Maximum number of virtual functions (the prototype supports 64).
    pub max_vfs: u16,

    /// DMA-engine ceiling for device→host data movement (the academic
    /// prototype's engine peaks around 800 MB/s on reads).
    pub dma_read_bytes_per_sec: u64,
    /// DMA-engine ceiling for host→device data movement (~1 GB/s writes).
    pub dma_write_bytes_per_sec: u64,

    /// Multiplexer cost to dequeue one request from a client queue.
    pub mux_per_request: SimDuration,
    /// Pipeline cost to split out and enqueue one 1 KiB block.
    pub split_per_block: SimDuration,
    /// BTLB lookup time (hit path).
    pub btlb_lookup: SimDuration,
    /// Number of BTLB entries (the prototype caches the last 8 extents).
    pub btlb_entries: usize,
    /// Concurrent block walks the walk unit sustains (the prototype
    /// overlaps two translations to hide DMA latency).
    pub walk_overlap: usize,
    /// Size of one extent-tree node DMA (bytes) — one per walk level.
    pub tree_node_bytes: u64,
    /// Fixed cost to process one walked level beyond the DMA itself.
    pub walk_level_processing: SimDuration,
    /// Largest extent *run* — span of consecutive blocks resolved by one
    /// BTLB probe or one tree walk — the data path batches into a single
    /// translation and storage transfer. Purely a host-side simulation
    /// batching knob: simulated times and statistics are identical at any
    /// value. `1` reproduces the historical block-at-a-time loop (useful as
    /// a benchmarking baseline); the default is effectively unbounded.
    pub max_run_blocks: u64,
    /// Cost for the PF's out-of-band channel to accept one request.
    pub oob_per_request: SimDuration,
    /// Firmware cost to raise an interrupt (miss or completion MSI).
    pub interrupt_cost: SimDuration,
}

impl NescConfig {
    /// The paper's VC707 prototype.
    pub fn prototype() -> Self {
        NescConfig {
            link: LinkParams::gen2_x8(),
            media: Media::Ram(RamMedia::vc707_ddr3()),
            capacity_blocks: 1 << 20, // 1 GB at 1 KiB blocks
            max_vfs: 64,
            dma_read_bytes_per_sec: 800_000_000,
            dma_write_bytes_per_sec: 1_000_000_000,
            mux_per_request: SimDuration::from_nanos(100),
            split_per_block: SimDuration::from_nanos(20),
            btlb_lookup: SimDuration::from_nanos(10),
            btlb_entries: 8,
            walk_overlap: 2,
            tree_node_bytes: 512,
            walk_level_processing: SimDuration::from_nanos(50),
            max_run_blocks: u64::MAX,
            oob_per_request: SimDuration::from_nanos(80),
            interrupt_cost: SimDuration::from_nanos(300),
        }
    }

    /// A commercial projection: PCIe gen3 x8 with a DMA engine that keeps
    /// up with the link — the configuration the paper's conclusion argues
    /// NeSC was designed for.
    pub fn gen3() -> Self {
        NescConfig {
            link: LinkParams::gen3_x8(),
            dma_read_bytes_per_sec: 6_000_000_000,
            dma_write_bytes_per_sec: 6_000_000_000,
            ..NescConfig::prototype()
        }
    }

    /// Validates internal consistency: debug builds reject degenerate
    /// parameters (zero bandwidth, no VFs, no walk slots) at construction
    /// time. Release builds let the lower layers clamp — every consumer of
    /// these parameters degrades a zero to its smallest legal value.
    pub fn validate(&self) {
        debug_assert!(self.capacity_blocks > 0, "device needs capacity");
        debug_assert!(self.max_vfs > 0, "device must support VFs");
        debug_assert!(self.dma_read_bytes_per_sec > 0, "DMA read bandwidth");
        debug_assert!(self.dma_write_bytes_per_sec > 0, "DMA write bandwidth");
        debug_assert!(self.walk_overlap > 0, "walk unit needs at least one slot");
        debug_assert!(self.tree_node_bytes > 0, "tree nodes have a size");
        debug_assert!(self.max_run_blocks > 0, "runs cover at least one block");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        NescConfig::prototype().validate();
        NescConfig::gen3().validate();
    }

    #[test]
    fn prototype_matches_paper_headline_numbers() {
        let c = NescConfig::prototype();
        assert_eq!(c.dma_read_bytes_per_sec, 800_000_000);
        assert_eq!(c.dma_write_bytes_per_sec, 1_000_000_000);
        assert_eq!(c.btlb_entries, 8);
        assert_eq!(c.walk_overlap, 2);
        assert_eq!(c.max_vfs, 64);
        assert_eq!(c.capacity_blocks * 1024, 1 << 30); // 1 GB
    }

    #[test]
    #[should_panic(expected = "walk unit")]
    fn degenerate_config_rejected() {
        let mut c = NescConfig::prototype();
        c.walk_overlap = 0;
        c.validate();
    }
}
