//! The block translation lookaside buffer.
//!
//! "Given that storage access exhibits spatial locality, and extents
//! typically span more than one block, the translation unit maintains a
//! small cache of the last 8 extents used in translation" (paper §V-B).
//! Entries are whole *extents*, not single blocks, so one entry covers an
//! arbitrarily long sequential stream; eviction is FIFO ("evicting the
//! oldest entry").
//!
//! The PF can flush the BTLB "to preserve meta-data consistency" when the
//! hypervisor rewrites mappings (e.g. block deduplication); the device
//! model also flushes a single function's entries when its tree root is
//! replaced.

use nesc_extent::{ExtentMapping, Plba, Vlba};

/// A cached translation, tagged by the owning function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtlbEntry {
    func: u16,
    extent: ExtentMapping,
}

/// Fixed-capacity, FIFO-evicting extent cache.
///
/// # Example
///
/// ```
/// use nesc_core::Btlb;
/// use nesc_extent::{ExtentMapping, Vlba, Plba};
///
/// let mut btlb = Btlb::new(2);
/// btlb.insert(0, ExtentMapping::new(Vlba(0), Plba(100), 8));
/// assert_eq!(btlb.lookup(0, Vlba(5)), Some(Plba(105)));
/// assert_eq!(btlb.lookup(1, Vlba(5)), None); // other functions never hit
/// ```
#[derive(Debug, Clone)]
pub struct Btlb {
    entries: Vec<BtlbEntry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl Btlb {
    /// Creates a BTLB with `capacity` entries. A capacity of zero is
    /// allowed (the BTLB-ablation configuration: every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Btlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `vlba` for function `func`; returns the physical block on a
    /// hit and records hit/miss statistics.
    pub fn lookup(&mut self, func: u16, vlba: Vlba) -> Option<Plba> {
        match self
            .entries
            .iter()
            .find(|e| e.func == func && e.extent.contains(vlba))
        {
            Some(e) => {
                self.hits += 1;
                e.extent.translate(vlba)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly walked extent, evicting the oldest entry when
    /// full. Duplicate coverage is not inserted twice.
    pub fn insert(&mut self, func: u16, extent: ExtentMapping) {
        if self.capacity == 0 {
            return;
        }
        if self
            .entries
            .iter()
            .any(|e| e.func == func && e.extent == extent)
        {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(BtlbEntry { func, extent });
    }

    /// Drops every entry (the PF-initiated global flush).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Drops one function's entries (tree-root replacement).
    pub fn flush_func(&mut self, func: u16) {
        self.entries.retain(|e| e.func != func);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction over all lookups (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ext(l: u64, p: u64, n: u64) -> ExtentMapping {
        ExtentMapping::new(Vlba(l), Plba(p), n)
    }

    #[test]
    fn fifo_eviction() {
        let mut b = Btlb::new(2);
        b.insert(0, ext(0, 100, 1));
        b.insert(0, ext(10, 200, 1));
        b.insert(0, ext(20, 300, 1)); // evicts the (0,100) entry
        assert_eq!(b.lookup(0, Vlba(0)), None);
        assert_eq!(b.lookup(0, Vlba(10)), Some(Plba(200)));
        assert_eq!(b.lookup(0, Vlba(20)), Some(Plba(300)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn per_function_isolation() {
        let mut b = Btlb::new(8);
        b.insert(3, ext(0, 500, 4));
        assert_eq!(b.lookup(3, Vlba(2)), Some(Plba(502)));
        assert_eq!(b.lookup(4, Vlba(2)), None);
        b.flush_func(3);
        assert_eq!(b.lookup(3, Vlba(2)), None);
        assert!(b.is_empty());
    }

    #[test]
    fn flush_all_clears() {
        let mut b = Btlb::new(8);
        b.insert(0, ext(0, 1, 1));
        b.insert(1, ext(0, 2, 1));
        b.flush_all();
        assert!(b.is_empty());
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = Btlb::new(0);
        b.insert(0, ext(0, 1, 100));
        assert_eq!(b.lookup(0, Vlba(0)), None);
        assert_eq!(b.hits(), 0);
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut b = Btlb::new(4);
        b.insert(0, ext(0, 1, 4));
        b.insert(0, ext(0, 1, 4));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut b = Btlb::new(4);
        assert_eq!(b.hit_rate(), 0.0);
        b.insert(0, ext(0, 10, 2));
        b.lookup(0, Vlba(0)); // hit
        b.lookup(0, Vlba(1)); // hit
        b.lookup(0, Vlba(2)); // miss
        assert_eq!(b.hits(), 2);
        assert_eq!(b.misses(), 1);
        assert!((b.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        /// The BTLB never returns a translation that differs from the
        /// extent it was given — a cache can go stale only by explicit
        /// invalidation bugs, never corrupt.
        #[test]
        fn prop_translations_faithful(
            inserts in proptest::collection::vec((0u16..4, 0u64..1000, 0u64..1000, 1u64..64), 1..40),
            probes in proptest::collection::vec((0u16..4, 0u64..1100), 1..60),
        ) {
            let mut b = Btlb::new(8);
            let mut reference: Vec<(u16, ExtentMapping)> = Vec::new();
            for &(f, l, p, n) in &inserts {
                let e = ext(l, p, n);
                b.insert(f, e);
                reference.push((f, e));
            }
            for &(f, v) in &probes {
                if let Some(plba) = b.lookup(f, Vlba(v)) {
                    // Some inserted extent for this function justifies it.
                    let justified = reference
                        .iter()
                        .any(|&(rf, re)| rf == f && re.translate(Vlba(v)) == Some(plba));
                    prop_assert!(justified, "unjustified hit {:?} for func {}", plba, f);
                }
            }
        }
    }
}
