//! The block translation lookaside buffer.
//!
//! "Given that storage access exhibits spatial locality, and extents
//! typically span more than one block, the translation unit maintains a
//! small cache of the last 8 extents used in translation" (paper §V-B).
//! Entries are whole *extents*, not single blocks, so one entry covers an
//! arbitrarily long sequential stream; eviction is FIFO ("evicting the
//! oldest entry").
//!
//! The PF can flush the BTLB "to preserve meta-data consistency" when the
//! hypervisor rewrites mappings (e.g. block deduplication); the device
//! model also flushes a single function's entries when its tree root is
//! replaced.
//!
//! Entries are indexed per function and kept sorted on the extent's start
//! vLBA, so a probe is a binary search plus a bounded stab scan instead of
//! a linear pass over every function's entries (the old representation
//! scanned the whole cache even at ablation capacities of hundreds of
//! entries). Function ids are dense small integers, so the per-function
//! buckets live in a flat `Vec` indexed directly by id — a probe touches
//! one predictable cache line to find its bucket instead of hashing.
//! FIFO order lives in a side queue of insertion stamps; `flush_func`
//! empties a function's bucket in place and leaves stale stamps behind as
//! tombstones that eviction skips.
//!
//! Two layers of statistics coexist:
//!
//! - `hits`/`misses` keep the historical *per-block* meaning: when the
//!   device serves a multi-block run from one probe it credits the extra
//!   blocks via [`Btlb::credit_hits`]/[`Btlb::credit_misses`], so hit-rate
//!   figures are comparable across the run-batching change.
//! - `probe_hits`/`probe_misses`/`blocks_covered` count actual cache
//!   probes and the blocks each probe's extent served, which is the honest
//!   accounting for the batched translation unit.

use std::collections::VecDeque;

use nesc_extent::{ExtentMapping, Plba, Vlba};

/// A cached translation plus its FIFO insertion stamp.
#[derive(Debug, Clone, Copy)]
struct IndexedEntry {
    extent: ExtentMapping,
    stamp: u64,
}

/// One function's entries, sorted by `(extent.logical, stamp)`.
#[derive(Debug, Clone, Default)]
struct FuncEntries {
    entries: Vec<IndexedEntry>,
    /// Longest extent ever held for this function — bounds the leftward
    /// stab scan during lookup (an extent can only cover `vlba` if it
    /// starts within `max_len` blocks before it).
    max_len: u64,
}

impl FuncEntries {
    /// Index of the first entry with `logical >= key` (ties: any).
    fn partition(&self, key: Vlba) -> usize {
        self.entries.partition_point(|e| e.extent.logical < key)
    }

    /// Oldest entry containing `vlba`, matching the insertion-order lookup
    /// of the historical linear scan.
    fn find(&self, vlba: Vlba) -> Option<&IndexedEntry> {
        let upper = self.entries.partition_point(|e| e.extent.logical <= vlba);
        let mut best: Option<&IndexedEntry> = None;
        for e in self.entries[..upper].iter().rev() {
            if vlba.distance_from(e.extent.logical) >= self.max_len {
                break; // nothing further left can reach vlba
            }
            if e.extent.contains(vlba) && best.is_none_or(|b| e.stamp < b.stamp) {
                best = Some(e);
            }
        }
        best
    }
}

/// Fixed-capacity, FIFO-evicting extent cache.
///
/// # Example
///
/// ```
/// use nesc_core::Btlb;
/// use nesc_extent::{ExtentMapping, Vlba, Plba};
///
/// let mut btlb = Btlb::new(2);
/// btlb.insert(0, ExtentMapping::new(Vlba(0), Plba(100), 8));
/// assert_eq!(btlb.lookup(0, Vlba(5)), Some(Plba(105)));
/// assert_eq!(btlb.lookup(1, Vlba(5)), None); // other functions never hit
/// ```
#[derive(Debug, Clone, Default)]
pub struct Btlb {
    /// Struct-of-arrays per-function buckets, indexed by dense function
    /// id; grown on first insert for a function.
    index: Vec<FuncEntries>,
    /// FIFO of `(func, stamp, logical)` in insertion order. Entries removed
    /// by `flush_func`/`flush_all` stay here as tombstones; eviction skips
    /// stamps that no longer exist in the index.
    fifo: VecDeque<(u16, u64, Vlba)>,
    capacity: usize,
    live: usize,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    probe_hits: u64,
    probe_misses: u64,
    blocks_covered: u64,
}

impl Btlb {
    /// Creates a BTLB with `capacity` entries. A capacity of zero is
    /// allowed (the BTLB-ablation configuration: every lookup misses).
    pub fn new(capacity: usize) -> Self {
        Btlb {
            capacity,
            ..Btlb::default()
        }
    }

    /// Looks up `vlba` for function `func`; returns the physical block on a
    /// hit and records hit/miss statistics for one block.
    pub fn lookup(&mut self, func: u16, vlba: Vlba) -> Option<Plba> {
        self.lookup_run(func, vlba, 1).map(|(plba, _)| plba)
    }

    /// Looks up `vlba` for function `func` and, on a hit, also reports how
    /// many blocks (capped at `max_blocks`) the cached extent covers from
    /// `vlba` on — the run the device may serve from this single probe.
    ///
    /// Statistics: exactly one probe and one legacy block (`hits` or
    /// `misses`) are recorded, as if a single-block [`Btlb::lookup`] had
    /// run. When the caller actually serves extra run blocks from the
    /// result it must say so through [`Btlb::credit_hits`] so legacy
    /// accounting stays per-block.
    pub fn lookup_run(&mut self, func: u16, vlba: Vlba, max_blocks: u64) -> Option<(Plba, u64)> {
        // find() checked containment, so translate() only fails if an
        // entry's extent is inconsistent with its index position — degrade
        // that to a miss (the walk path re-derives the truth).
        let hit = self
            .index
            .get(func as usize)
            .and_then(|fe| fe.find(vlba))
            .and_then(|e| {
                let plba = e.extent.translate(vlba);
                debug_assert!(plba.is_some(), "find() checked containment");
                Some((plba?, e.extent.covered_run(vlba, max_blocks.max(1))))
            });
        match hit {
            Some(found) => {
                self.hits += 1;
                self.probe_hits += 1;
                self.blocks_covered += 1;
                Some(found)
            }
            None => {
                self.misses += 1;
                self.probe_misses += 1;
                None
            }
        }
    }

    /// Whether some cached extent of `func` contains `vlba`, without
    /// touching any statistics. The device uses this to decide if a run's
    /// remaining blocks would still hit after the inserts of a composed
    /// (nested) translation chain.
    pub fn covers(&self, func: u16, vlba: Vlba) -> bool {
        self.covered_at(func, vlba).is_some()
    }

    /// Stat-free probe: the translation the (oldest) cached extent gives
    /// `vlba`, plus how many blocks that extent still covers from `vlba`
    /// on. This is what a [`Btlb::lookup_run`] would return, without
    /// counting — the device's run re-bounding check after a nested
    /// chain's inserts have settled.
    pub fn covered_at(&self, func: u16, vlba: Vlba) -> Option<(Plba, u64)> {
        let e = self.index.get(func as usize)?.find(vlba)?;
        let plba = e.extent.translate(vlba);
        debug_assert!(plba.is_some(), "find() checked containment");
        Some((plba?, e.extent.end_logical().distance_from(vlba)))
    }

    /// Inserts a freshly walked extent, evicting the oldest entry when
    /// full. Duplicate coverage is not inserted twice.
    pub fn insert(&mut self, func: u16, extent: ExtentMapping) {
        if self.capacity == 0 {
            return;
        }
        if self.index.len() <= func as usize {
            self.index
                .resize_with(func as usize + 1, FuncEntries::default);
        }
        let fe = &self.index[func as usize];
        let pos = fe.partition(extent.logical);
        // Duplicate check: equal extents share a start, so they sit in the
        // contiguous equal-logical range at `pos`.
        let dup = fe.entries[pos..]
            .iter()
            .take_while(|e| e.extent.logical == extent.logical)
            .any(|e| e.extent == extent);
        if dup {
            return;
        }
        if self.live == self.capacity {
            self.evict_oldest();
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let fe = &mut self.index[func as usize];
        // Re-derive the slot: eviction may have shifted this bucket.
        let pos = fe.partition(extent.logical);
        let pos = pos
            + fe.entries[pos..]
                .iter()
                .take_while(|e| e.extent.logical == extent.logical)
                .count();
        fe.entries.insert(pos, IndexedEntry { extent, stamp });
        fe.max_len = fe.max_len.max(extent.len);
        self.fifo.push_back((func, stamp, extent.logical));
        self.live += 1;
    }

    /// Removes the oldest live entry (skipping tombstones left by flushes).
    fn evict_oldest(&mut self) {
        while let Some((func, stamp, logical)) = self.fifo.pop_front() {
            let Some(fe) = self.index.get_mut(func as usize) else {
                continue; // function flushed wholesale
            };
            let start = fe.partition(logical);
            let victim = fe.entries[start..]
                .iter()
                .take_while(|e| e.extent.logical == logical)
                .position(|e| e.stamp == stamp);
            if let Some(off) = victim {
                fe.entries.remove(start + off);
                self.live -= 1;
                return;
            }
            // Stale stamp (entry flushed); keep draining.
        }
        // The FIFO drained without finding a live victim — the live count
        // is out of sync with the index. The insert that asked for the
        // eviction still proceeds; the cache merely runs one entry over
        // its nominal capacity.
        debug_assert!(false, "evict_oldest called with live == capacity > 0");
    }

    /// Drops every entry (the PF-initiated global flush). Bucket storage
    /// is retained for reuse.
    pub fn flush_all(&mut self) {
        for fe in &mut self.index {
            fe.entries.clear();
            fe.max_len = 0;
        }
        self.fifo.clear();
        self.live = 0;
    }

    /// Drops one function's entries (tree-root replacement). One bucket
    /// emptied in place; the FIFO keeps tombstones that eviction skips
    /// lazily.
    pub fn flush_func(&mut self, func: u16) {
        if let Some(fe) = self.index.get_mut(func as usize) {
            self.live -= fe.entries.len();
            fe.entries.clear();
            fe.max_len = 0;
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Configured entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime per-block hit count (run blocks served from one probe are
    /// credited individually, matching the historical per-block lookup).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime per-block miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime probe count that hit (one per `lookup`/`lookup_run` call).
    pub fn probe_hits(&self) -> u64 {
        self.probe_hits
    }

    /// Lifetime probe count that missed.
    pub fn probe_misses(&self) -> u64 {
        self.probe_misses
    }

    /// Total blocks served by cached extents, including run blocks the
    /// device credited after a batched probe or walk.
    pub fn blocks_covered(&self) -> u64 {
        self.blocks_covered
    }

    /// Credits `n` extra blocks served from an earlier probe or walk — the
    /// blocks that, under per-block translation, would each have been a
    /// BTLB hit. Keeps `hits()`/`hit_rate()` per-block comparable.
    pub fn credit_hits(&mut self, n: u64) {
        self.hits += n;
        self.blocks_covered += n;
    }

    /// Credits `n` extra blocks of a batched *uncached* span (e.g. a hole
    /// run walked once) — blocks that per-block translation would each
    /// have counted as a miss.
    pub fn credit_misses(&mut self, n: u64) {
        self.misses += n;
    }

    /// Hit fraction over all per-block lookups (0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ext(l: u64, p: u64, n: u64) -> ExtentMapping {
        ExtentMapping::new(Vlba(l), Plba(p), n)
    }

    #[test]
    fn fifo_eviction() {
        let mut b = Btlb::new(2);
        b.insert(0, ext(0, 100, 1));
        b.insert(0, ext(10, 200, 1));
        b.insert(0, ext(20, 300, 1)); // evicts the (0,100) entry
        assert_eq!(b.lookup(0, Vlba(0)), None);
        assert_eq!(b.lookup(0, Vlba(10)), Some(Plba(200)));
        assert_eq!(b.lookup(0, Vlba(20)), Some(Plba(300)));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn fifo_eviction_order_across_functions_and_flushes() {
        // Regression for the indexed representation: FIFO age is global
        // across functions, and flush_func tombstones must not change
        // which entry is "oldest".
        let mut b = Btlb::new(3);
        b.insert(0, ext(0, 100, 1)); // age 0
        b.insert(1, ext(0, 200, 1)); // age 1
        b.insert(0, ext(10, 300, 1)); // age 2
        b.flush_func(1); // tombstone for age 1
        b.insert(2, ext(0, 400, 1)); // fills the freed slot, age 3
        b.insert(2, ext(10, 500, 1)); // full -> evicts age 0 (func 0, vlba 0)
        assert_eq!(b.lookup(0, Vlba(0)), None, "oldest entry must be evicted");
        assert_eq!(b.lookup(0, Vlba(10)), Some(Plba(300)));
        assert_eq!(b.lookup(2, Vlba(0)), Some(Plba(400)));
        assert_eq!(b.lookup(2, Vlba(10)), Some(Plba(500)));
        // Next eviction skips the flushed func-1 tombstone and takes age 2.
        b.insert(3, ext(0, 600, 1));
        assert_eq!(b.lookup(0, Vlba(10)), None);
        assert_eq!(b.lookup(3, Vlba(0)), Some(Plba(600)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn per_function_isolation() {
        let mut b = Btlb::new(8);
        b.insert(3, ext(0, 500, 4));
        assert_eq!(b.lookup(3, Vlba(2)), Some(Plba(502)));
        assert_eq!(b.lookup(4, Vlba(2)), None);
        b.flush_func(3);
        assert_eq!(b.lookup(3, Vlba(2)), None);
        assert!(b.is_empty());
    }

    #[test]
    fn flush_all_clears() {
        let mut b = Btlb::new(8);
        b.insert(0, ext(0, 1, 1));
        b.insert(1, ext(0, 2, 1));
        b.flush_all();
        assert!(b.is_empty());
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut b = Btlb::new(0);
        b.insert(0, ext(0, 1, 100));
        assert_eq!(b.lookup(0, Vlba(0)), None);
        assert_eq!(b.hits(), 0);
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut b = Btlb::new(4);
        b.insert(0, ext(0, 1, 4));
        b.insert(0, ext(0, 1, 4));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut b = Btlb::new(4);
        assert_eq!(b.hit_rate(), 0.0);
        b.insert(0, ext(0, 10, 2));
        b.lookup(0, Vlba(0)); // hit
        b.lookup(0, Vlba(1)); // hit
        b.lookup(0, Vlba(2)); // miss
        assert_eq!(b.hits(), 2);
        assert_eq!(b.misses(), 1);
        assert!((b.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_run_reports_coverage_and_counts_one_probe() {
        let mut b = Btlb::new(4);
        b.insert(0, ext(10, 100, 8));
        assert_eq!(b.lookup_run(0, Vlba(12), 64), Some((Plba(102), 6)));
        assert_eq!(b.lookup_run(0, Vlba(12), 4), Some((Plba(102), 4)));
        assert_eq!(b.lookup_run(0, Vlba(18), 64), None);
        assert_eq!(b.probe_hits(), 2);
        assert_eq!(b.probe_misses(), 1);
        assert_eq!(b.hits(), 2); // one legacy block per probe
        assert_eq!(b.misses(), 1);
        assert_eq!(b.blocks_covered(), 2);
        // The device serves 5 more blocks from the first probe's run.
        b.credit_hits(5);
        assert_eq!(b.hits(), 7);
        assert_eq!(b.blocks_covered(), 7);
        b.credit_misses(3);
        assert_eq!(b.misses(), 4);
    }

    #[test]
    fn covers_is_stat_free() {
        let mut b = Btlb::new(4);
        b.insert(0, ext(0, 10, 4));
        assert!(b.covers(0, Vlba(3)));
        assert!(!b.covers(0, Vlba(4)));
        assert!(!b.covers(1, Vlba(0)));
        assert_eq!(b.hits() + b.misses(), 0);
        assert_eq!(b.probe_hits() + b.probe_misses(), 0);
    }

    /// Reference model: the historical Vec-of-entries implementation, used
    /// to pin the indexed rewrite to the exact old semantics.
    #[derive(Default)]
    struct ModelBtlb {
        entries: Vec<(u16, ExtentMapping)>,
        capacity: usize,
        hits: u64,
        misses: u64,
    }

    impl ModelBtlb {
        fn new(capacity: usize) -> Self {
            ModelBtlb {
                capacity,
                ..ModelBtlb::default()
            }
        }
        fn lookup(&mut self, func: u16, vlba: Vlba) -> Option<Plba> {
            match self
                .entries
                .iter()
                .find(|(f, e)| *f == func && e.contains(vlba))
            {
                Some((_, e)) => {
                    self.hits += 1;
                    e.translate(vlba)
                }
                None => {
                    self.misses += 1;
                    None
                }
            }
        }
        fn insert(&mut self, func: u16, extent: ExtentMapping) {
            if self.capacity == 0 {
                return;
            }
            if self.entries.iter().any(|(f, e)| *f == func && *e == extent) {
                return;
            }
            if self.entries.len() == self.capacity {
                self.entries.remove(0);
            }
            self.entries.push((func, extent));
        }
        fn flush_func(&mut self, func: u16) {
            self.entries.retain(|(f, _)| *f != func);
        }
    }

    proptest! {
        /// Under arbitrary interleavings of inserts, lookups, and per-func
        /// flushes, the indexed BTLB reports the same lengths, the same
        /// legacy hit/miss counters, and hits only where the historical
        /// linear-scan implementation hit.
        #[test]
        fn prop_indexed_btlb_matches_linear_model(
            capacity in 0usize..6,
            ops in proptest::collection::vec(
                (0u8..8, 0u16..3, 0u64..120, 0u64..500, 1u64..16),
                1..120,
            ),
        ) {
            let mut b = Btlb::new(capacity);
            let mut m = ModelBtlb::new(capacity);
            for &(kind, f, l, p, n) in &ops {
                match kind {
                    0..=2 => {
                        let e = ext(l, p, n);
                        b.insert(f, e);
                        m.insert(f, e);
                    }
                    3 => {
                        b.flush_func(f);
                        m.flush_func(f);
                    }
                    _ => {
                        let got = b.lookup(f, Vlba(l));
                        let want = m.lookup(f, Vlba(l));
                        // Overlapping same-func extents are tie-broken by
                        // age in both; results must agree exactly.
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(b.len(), m.entries.len());
            }
            prop_assert_eq!(b.hits(), m.hits);
            prop_assert_eq!(b.misses(), m.misses);
        }
    }

    proptest! {
        /// The BTLB never returns a translation that differs from the
        /// extent it was given — a cache can go stale only by explicit
        /// invalidation bugs, never corrupt.
        #[test]
        fn prop_translations_faithful(
            inserts in proptest::collection::vec((0u16..4, 0u64..1000, 0u64..1000, 1u64..64), 1..40),
            probes in proptest::collection::vec((0u16..4, 0u64..1100), 1..60),
        ) {
            let mut b = Btlb::new(8);
            let mut reference: Vec<(u16, ExtentMapping)> = Vec::new();
            for &(f, l, p, n) in &inserts {
                let e = ext(l, p, n);
                b.insert(f, e);
                reference.push((f, e));
            }
            for &(f, v) in &probes {
                if let Some(plba) = b.lookup(f, Vlba(v)) {
                    // Some inserted extent for this function justifies it.
                    let justified = reference
                        .iter()
                        .any(|&(rf, re)| rf == f && re.translate(Vlba(v)) == Some(plba));
                    prop_assert!(justified, "unjustified hit {:?} for func {}", plba, f);
                }
            }
        }
    }
}
