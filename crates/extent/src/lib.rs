#![warn(missing_docs)]

//! Extent trees: the vLBA→pLBA mapping structure at the heart of NeSC.
//!
//! NeSC associates every virtual function with a *software-defined,
//! hardware-traversed* extent tree (paper §IV-B, Fig. 4). The hypervisor
//! builds the tree in host memory from the host filesystem's own per-file
//! extents; the device walks it with DMA reads to translate each client
//! block address, enforcing isolation purely by construction — a VF simply
//! has no way to name a physical block outside its tree.
//!
//! This crate implements both halves:
//!
//! * [`ExtentTree`] — the software (builder) representation the hypervisor
//!   maintains: insert/lookup/merge of [`ExtentMapping`]s, hole semantics,
//!   and serialization into the device-visible format.
//! * [`walk()`] — the device's view: given only a root pointer and a
//!   [`HostMemory`][nesc_pcie::HostMemory], traverse serialized nodes
//!   exactly as the block-walk unit does, reporting how many levels (=DMA
//!   round trips) the walk took, whether it hit a mapping, a hole, or a
//!   pruned subtree.
//!
//! The serialized layout ([`layout`]) mirrors ext4's extent trees: fixed
//! 512-byte nodes whose header says whether entries are node pointers or
//! extent pointers; node-pointer entries carry `(first logical block,
//! blocks covered, child pointer)` and a NULL child pointer marks a pruned
//! subtree (paper: "the hypervisor can prune parts of the extent tree and
//! mark the pruned sections by storing NULL in their respective Next Node
//! Pointer").

pub mod guest;
pub mod layout;
pub mod tree;
pub mod types;
pub mod walk;

pub use guest::{
    validate_chain_len, validate_cid, validate_count, validate_nlb, validate_ring_tail,
    validate_sector, validate_slba, GuestFault, Untrusted,
};
pub use layout::{NodeKind, FANOUT, NODE_SIZE};
pub use tree::{ExtentTree, InsertError};
pub use types::{BlockAddr, ExtentMapping, Plba, Vlba, BLOCK_SIZE};
pub use walk::{prune_covering, walk, walk_run, WalkOutcome, WalkResult, WalkRun};
