//! Address and mapping types.
//!
//! The paper names three address spaces (§IV-B): *vLBA* — logical block
//! addresses of a virtual device as seen by the client VM; *pLBA* — logical
//! block addresses on the physical device; and the translation between them.
//! Newtypes keep the two from ever being mixed up at compile time.

use std::fmt;

/// NeSC's translation granularity: 1 KiB, "the smallest block size supported
/// by ext4" (paper §IV-C). It lives next to the address newtypes so the
/// byte/block conversion helpers below are the *only* place the workspace
/// multiplies an address by a block size (lint rule T3).
pub const BLOCK_SIZE: u64 = 1024;

/// A virtual logical block address: an offset, in 1 KiB blocks, into a
/// virtual device (equivalently, into the backing file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vlba(pub u64);

/// A physical logical block address: a block on the physical device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Plba(pub u64);

/// Behavior shared by both block-address spaces, so request plumbing can be
/// generic over *which* space an address lives in (a VF request carries
/// [`Vlba`]s, a PF request [`Plba`]s) without ever collapsing back to a bare
/// `u64` — the decay the provenance lint (rules T1–T3) exists to prevent.
pub trait BlockAddr:
    Copy + Eq + Ord + std::hash::Hash + fmt::Debug + fmt::Display + private::Sealed
{
    /// The address `n` blocks after this one.
    fn offset(self, n: u64) -> Self;

    /// The address `n` blocks after this one, or `None` on overflow —
    /// range checks on untrusted (wire-decoded) addresses must use this
    /// rather than `offset`, which may wrap.
    fn checked_add_blocks(self, n: u64) -> Option<Self>;

    /// Byte offset of the block's first byte from the start of its space.
    fn byte_offset(self) -> u64;
}

mod private {
    /// Only the two address spaces defined here implement [`super::BlockAddr`];
    /// a third "space" would be an aliasing hazard, not an extension point.
    pub trait Sealed {}
    impl Sealed for super::Vlba {}
    impl Sealed for super::Plba {}
}

impl BlockAddr for Vlba {
    fn offset(self, n: u64) -> Vlba {
        Vlba(self.0 + n)
    }
    fn checked_add_blocks(self, n: u64) -> Option<Vlba> {
        self.0.checked_add(n).map(Vlba)
    }
    fn byte_offset(self) -> u64 {
        self.0 * BLOCK_SIZE
    }
}

impl BlockAddr for Plba {
    fn offset(self, n: u64) -> Plba {
        Plba(self.0 + n)
    }
    fn checked_add_blocks(self, n: u64) -> Option<Plba> {
        self.0.checked_add(n).map(Plba)
    }
    fn byte_offset(self) -> u64 {
        self.0 * BLOCK_SIZE
    }
}

impl Vlba {
    /// The address `n` blocks after this one.
    pub fn offset(self, n: u64) -> Vlba {
        Vlba(self.0 + n)
    }

    /// The address `n` blocks after this one, or `None` on overflow.
    pub fn checked_add_blocks(self, n: u64) -> Option<Vlba> {
        BlockAddr::checked_add_blocks(self, n)
    }

    /// Byte offset of this block's first byte within the virtual device.
    pub fn byte_offset(self) -> u64 {
        BlockAddr::byte_offset(self)
    }

    /// The virtual block containing byte `bytes` of the virtual device
    /// (floor division) — the one sanctioned byte→block conversion for
    /// virtual addresses.
    pub fn from_byte_offset(bytes: u64) -> Vlba {
        Vlba(bytes / BLOCK_SIZE)
    }

    /// Blocks from `earlier` to `self`. An `earlier` after `self` (a
    /// contract violation) yields zero — run lengths degrade to empty
    /// rather than killing the translation path.
    pub fn distance_from(self, earlier: Vlba) -> u64 {
        debug_assert!(earlier.0 <= self.0, "vLBA distance underflow");
        self.0.saturating_sub(earlier.0)
    }

    /// The PF's identity translation: the physical function is not
    /// virtualized, so the "virtual" block `v` of a request addressed to it
    /// *is* physical block `v` (paper §IV-A — the PF exposes the raw
    /// device). This is one of exactly two sanctioned ways to mint a
    /// [`Plba`] outside the allocator and the extent walk; it may appear
    /// only where the device core dispatches PF requests.
    pub fn identity_plba(self) -> Plba {
        Plba(self.0)
    }
}

impl Plba {
    /// The address `n` blocks after this one.
    pub fn offset(self, n: u64) -> Plba {
        Plba(self.0 + n)
    }

    /// The address `n` blocks after this one, or `None` on overflow.
    pub fn checked_add_blocks(self, n: u64) -> Option<Plba> {
        BlockAddr::checked_add_blocks(self, n)
    }

    /// Byte offset of this block's first byte on the physical device.
    pub fn byte_offset(self) -> u64 {
        BlockAddr::byte_offset(self)
    }

    /// Blocks from `earlier` to `self`. An `earlier` after `self` (a
    /// contract violation) yields zero — run lengths degrade to empty
    /// rather than killing the translation path.
    pub fn distance_from(self, earlier: Plba) -> u64 {
        debug_assert!(earlier.0 <= self.0, "pLBA distance underflow");
        self.0.saturating_sub(earlier.0)
    }

    /// Re-bases one nesting level up: what a child device calls a physical
    /// block is, to its parent, a *virtual* block of the parent's device
    /// (paper §VI — nested NeSC instances chain translations). A guest
    /// filesystem's pLBA on its virtual disk becomes the VF's vLBA here;
    /// the address is unchanged, only its frame of reference moves.
    pub fn nested_vlba(self) -> Vlba {
        Vlba(self.0)
    }
}

impl fmt::Display for Vlba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Plba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One extent: `len` contiguous virtual blocks starting at `logical` mapped
/// to contiguous physical blocks starting at `physical`.
///
/// # Example
///
/// ```
/// use nesc_extent::{ExtentMapping, Vlba, Plba};
/// let e = ExtentMapping::new(Vlba(100), Plba(5000), 16);
/// assert!(e.contains(Vlba(100)) && e.contains(Vlba(115)));
/// assert!(!e.contains(Vlba(116)));
/// assert_eq!(e.translate(Vlba(103)), Some(Plba(5003)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ExtentMapping {
    /// First virtual block covered.
    pub logical: Vlba,
    /// First physical block of the extent.
    pub physical: Plba,
    /// Extent length in blocks.
    pub len: u64,
}

impl ExtentMapping {
    /// Creates an extent. A zero length (a contract violation: the
    /// allocator never returns empty runs) is widened to one block.
    pub fn new(logical: Vlba, physical: Plba, len: u64) -> Self {
        debug_assert!(len > 0, "extents cover at least one block");
        ExtentMapping {
            logical,
            physical,
            len: len.max(1),
        }
    }

    /// One past the last virtual block covered.
    pub fn end_logical(&self) -> Vlba {
        self.logical.offset(self.len)
    }

    /// One past the last physical block covered.
    pub fn end_physical(&self) -> Plba {
        self.physical.offset(self.len)
    }

    /// Whether `v` falls inside this extent.
    pub fn contains(&self, v: Vlba) -> bool {
        v >= self.logical && v < self.end_logical()
    }

    /// Translates `v` to its physical block, if covered.
    pub fn translate(&self, v: Vlba) -> Option<Plba> {
        if self.contains(v) {
            Some(self.physical.offset(v.distance_from(self.logical)))
        } else {
            None
        }
    }

    /// How many blocks this extent covers starting at `v`, capped at
    /// `max_blocks`; zero when `v` is not contained. This is what lets a
    /// translation consumer size an extent *run* — a maximal span of
    /// contiguous vLBAs served by one cached mapping — from a single probe
    /// instead of re-checking block by block.
    ///
    /// # Example
    ///
    /// ```
    /// use nesc_extent::{ExtentMapping, Vlba, Plba};
    /// let e = ExtentMapping::new(Vlba(100), Plba(5000), 16);
    /// assert_eq!(e.covered_run(Vlba(100), u64::MAX), 16);
    /// assert_eq!(e.covered_run(Vlba(110), u64::MAX), 6);
    /// assert_eq!(e.covered_run(Vlba(110), 4), 4);
    /// assert_eq!(e.covered_run(Vlba(116), u64::MAX), 0);
    /// ```
    pub fn covered_run(&self, v: Vlba, max_blocks: u64) -> u64 {
        if self.contains(v) {
            (self.end_logical().0 - v.0).min(max_blocks)
        } else {
            0
        }
    }

    /// Whether `other` continues this extent exactly (logically and
    /// physically adjacent), so the two can merge into one.
    pub fn abuts(&self, other: &ExtentMapping) -> bool {
        self.end_logical() == other.logical && self.end_physical() == other.physical
    }

    /// Whether the logical ranges of two extents overlap.
    pub fn overlaps_logical(&self, other: &ExtentMapping) -> bool {
        self.logical < other.end_logical() && other.logical < self.end_logical()
    }
}

impl fmt::Display for ExtentMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}..{}) -> [{}..{})",
            self.logical.0,
            self.end_logical().0,
            self.physical.0,
            self.end_physical().0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn translate_offsets_correctly() {
        let e = ExtentMapping::new(Vlba(10), Plba(90), 5);
        assert_eq!(e.translate(Vlba(10)), Some(Plba(90)));
        assert_eq!(e.translate(Vlba(14)), Some(Plba(94)));
        assert_eq!(e.translate(Vlba(15)), None);
        assert_eq!(e.translate(Vlba(9)), None);
    }

    #[test]
    fn abutting_detection() {
        let a = ExtentMapping::new(Vlba(0), Plba(100), 4);
        let b = ExtentMapping::new(Vlba(4), Plba(104), 4);
        let c = ExtentMapping::new(Vlba(4), Plba(200), 4); // logically adjacent only
        assert!(a.abuts(&b));
        assert!(!a.abuts(&c));
        assert!(!b.abuts(&a));
    }

    #[test]
    fn overlap_detection() {
        let a = ExtentMapping::new(Vlba(0), Plba(0), 10);
        let b = ExtentMapping::new(Vlba(9), Plba(100), 1);
        let c = ExtentMapping::new(Vlba(10), Plba(100), 1);
        assert!(a.overlaps_logical(&b));
        assert!(!a.overlaps_logical(&c));
    }

    #[test]
    fn byte_offset_roundtrips() {
        assert_eq!(Vlba(3).byte_offset(), 3 * BLOCK_SIZE);
        assert_eq!(Plba(7).byte_offset(), 7 * BLOCK_SIZE);
        assert_eq!(Vlba::from_byte_offset(3 * BLOCK_SIZE), Vlba(3));
        assert_eq!(Vlba::from_byte_offset(3 * BLOCK_SIZE + 17), Vlba(3));
    }

    #[test]
    fn checked_add_saturates_to_none() {
        assert_eq!(Vlba(10).checked_add_blocks(5), Some(Vlba(15)));
        assert_eq!(Vlba(u64::MAX).checked_add_blocks(1), None);
        assert_eq!(Plba(u64::MAX - 1).checked_add_blocks(2), None);
    }

    #[test]
    fn reference_frame_conversions_preserve_the_index() {
        assert_eq!(Vlba(42).identity_plba(), Plba(42));
        assert_eq!(Plba(42).nested_vlba(), Vlba(42));
        assert_eq!(Plba(9).distance_from(Plba(4)), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Vlba(3).to_string(), "v3");
        assert_eq!(Plba(4).to_string(), "p4");
        assert_eq!(
            ExtentMapping::new(Vlba(0), Plba(8), 2).to_string(),
            "[0..2) -> [8..10)"
        );
    }

    proptest! {
        /// translate() is a bijection between the logical and physical ranges.
        #[test]
        fn prop_translate_bijective(start in 0u64..1_000, phys in 0u64..1_000, len in 1u64..500) {
            let e = ExtentMapping::new(Vlba(start), Plba(phys), len);
            let mut seen = std::collections::HashSet::new();
            for i in 0..len {
                let p = e.translate(Vlba(start + i)).unwrap();
                prop_assert!(seen.insert(p));
                prop_assert!(p >= Plba(phys) && p < e.end_physical());
            }
        }
    }
}
