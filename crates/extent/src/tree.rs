//! The hypervisor-side (builder) extent tree.
//!
//! [`ExtentTree`] is the software representation the hypervisor maintains
//! per virtual function: an ordered set of non-overlapping
//! [`ExtentMapping`]s. Virtual blocks not covered by any extent are *holes*
//! — unallocated thanks to lazy allocation, reading as zeros per POSIX
//! (paper §IV-C).
//!
//! [`ExtentTree::serialize`] lowers the mapping into the device-visible
//! node format in host memory (bottom-up B-tree construction with the
//! layout's fanout) and returns the root pointer the hypervisor stores in
//! the VF's `ExtentTreeRoot` register. Like ext4, "the key benefit of
//! extent trees is that their depth is not fixed but rather depends on the
//! mapping itself": a file mapped by one extent serializes to a single leaf
//! node, while a fragmented file grows internal levels.

use nesc_pcie::{HostAddr, HostMemory};

use crate::layout::{self, NodeEntry, FANOUT, NODE_SIZE};
use crate::types::{ExtentMapping, Vlba};

/// Error inserting an extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertError {
    /// The new extent's logical range overlaps an existing mapping.
    Overlap {
        /// The mapping already present.
        existing: ExtentMapping,
        /// The mapping that was rejected.
        rejected: ExtentMapping,
    },
}

impl std::fmt::Display for InsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Overlap { existing, rejected } => {
                write!(f, "extent {rejected} overlaps existing {existing}")
            }
        }
    }
}

impl std::error::Error for InsertError {}

/// An ordered, non-overlapping set of extents mapping a virtual device (a
/// file) onto physical blocks.
///
/// # Example
///
/// ```
/// use nesc_extent::{ExtentTree, ExtentMapping, Vlba, Plba};
///
/// let mut tree = ExtentTree::new();
/// tree.insert(ExtentMapping::new(Vlba(0), Plba(1000), 8)).unwrap();
/// tree.insert(ExtentMapping::new(Vlba(8), Plba(1008), 8)).unwrap(); // merges
/// assert_eq!(tree.extent_count(), 1);
/// assert_eq!(tree.lookup(Vlba(12)).unwrap().translate(Vlba(12)), Some(Plba(1012)));
/// assert!(tree.lookup(Vlba(100)).is_none()); // a hole
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtentTree {
    /// Sorted by `logical`, pairwise non-overlapping, adjacent-merged.
    extents: Vec<ExtentMapping>,
}

impl ExtentTree {
    /// Creates an empty tree (every block is a hole).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a tree from extents in any order.
    ///
    /// # Errors
    ///
    /// Returns the first [`InsertError::Overlap`] encountered.
    pub fn from_extents(
        extents: impl IntoIterator<Item = ExtentMapping>,
    ) -> Result<Self, InsertError> {
        let mut t = ExtentTree::new();
        for e in extents {
            t.insert(e)?;
        }
        Ok(t)
    }

    /// Number of extents after merging.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Total mapped blocks (excludes holes).
    pub fn mapped_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// One past the last mapped virtual block, or `Vlba(0)` if empty.
    pub fn logical_end(&self) -> Vlba {
        self.extents
            .last()
            .map(|e| e.end_logical())
            .unwrap_or(Vlba(0))
    }

    /// Iterates extents in logical order.
    pub fn iter(&self) -> impl Iterator<Item = &ExtentMapping> {
        self.extents.iter()
    }

    /// Inserts a mapping, merging with logically+physically adjacent
    /// neighbours (the same coalescing ext4 performs).
    ///
    /// # Errors
    ///
    /// [`InsertError::Overlap`] if the logical range is already mapped.
    pub fn insert(&mut self, ext: ExtentMapping) -> Result<(), InsertError> {
        let pos = self.extents.partition_point(|e| e.logical < ext.logical);
        if let Some(prev) = pos.checked_sub(1).and_then(|i| self.extents.get(i)) {
            if prev.overlaps_logical(&ext) {
                return Err(InsertError::Overlap {
                    existing: *prev,
                    rejected: ext,
                });
            }
        }
        if let Some(next) = self.extents.get(pos) {
            if next.overlaps_logical(&ext) {
                return Err(InsertError::Overlap {
                    existing: *next,
                    rejected: ext,
                });
            }
        }
        self.extents.insert(pos, ext);
        // Merge with the next extent, then with the previous one.
        if pos + 1 < self.extents.len() && self.extents[pos].abuts(&self.extents[pos + 1]) {
            self.extents[pos].len += self.extents[pos + 1].len;
            self.extents.remove(pos + 1);
        }
        if pos > 0 && self.extents[pos - 1].abuts(&self.extents[pos]) {
            self.extents[pos - 1].len += self.extents[pos].len;
            self.extents.remove(pos);
        }
        Ok(())
    }

    /// The extent covering `v`, if mapped.
    pub fn lookup(&self, v: Vlba) -> Option<ExtentMapping> {
        let pos = self.extents.partition_point(|e| e.logical <= v);
        pos.checked_sub(1)
            .map(|i| self.extents[i])
            .filter(|e| e.contains(v))
    }

    /// Unmaps `[start, start+len)`, splitting extents as needed (hole
    /// punching / truncation). Blocks already unmapped are ignored.
    pub fn remove_range(&mut self, start: Vlba, len: u64) {
        if len == 0 {
            return;
        }
        let end = start.offset(len);
        let mut out = Vec::with_capacity(self.extents.len() + 1);
        for e in self.extents.drain(..) {
            if e.end_logical() <= start || e.logical >= end {
                out.push(e);
                continue;
            }
            // Left remainder.
            if e.logical < start {
                out.push(ExtentMapping::new(
                    e.logical,
                    e.physical,
                    start.distance_from(e.logical),
                ));
            }
            // Right remainder.
            if e.end_logical() > end {
                let cut = end.distance_from(e.logical);
                out.push(ExtentMapping::new(
                    end,
                    e.physical.offset(cut),
                    e.end_logical().distance_from(end),
                ));
            }
        }
        self.extents = out;
    }

    /// Serializes the tree into host memory in the device-visible layout,
    /// returning the root node's address for the VF's `ExtentTreeRoot`
    /// register.
    ///
    /// An empty tree serializes to an empty leaf, so the device can still
    /// walk it (and correctly report every block as a hole).
    pub fn serialize(&self, mem: &mut HostMemory) -> HostAddr {
        // Leaf level.
        let mut level: Vec<(HostAddr, Vlba, Vlba)> = Vec::new(); // (addr, first, end)
        if self.extents.is_empty() {
            let addr = mem.alloc(NODE_SIZE as u64, 64);
            mem.write(addr, &layout::encode_leaf(&[]));
            return addr;
        }
        for chunk in self.extents.chunks(FANOUT) {
            let addr = mem.alloc(NODE_SIZE as u64, 64);
            mem.write(addr, &layout::encode_leaf(chunk));
            level.push((addr, chunk[0].logical, chunk[chunk.len() - 1].end_logical()));
        }
        // Internal levels until a single root remains.
        while level.len() > 1 {
            let mut next: Vec<(HostAddr, Vlba, Vlba)> = Vec::new();
            for chunk in level.chunks(FANOUT) {
                let entries: Vec<NodeEntry> = chunk
                    .iter()
                    .map(|&(addr, first, end)| NodeEntry {
                        first_logical: first,
                        blocks: end.distance_from(first),
                        child: addr,
                    })
                    .collect();
                let addr = mem.alloc(NODE_SIZE as u64, 64);
                mem.write(addr, &layout::encode_internal(&entries));
                next.push((addr, chunk[0].1, chunk[chunk.len() - 1].2));
            }
            level = next;
        }
        level[0].0
    }

    /// The depth (node reads per cold walk) this tree serializes to.
    pub fn serialized_depth(&self) -> u32 {
        let mut nodes = self.extents.len().max(1).div_ceil(FANOUT);
        let mut depth = 1;
        while nodes > 1 {
            nodes = nodes.div_ceil(FANOUT);
            depth += 1;
        }
        depth
    }
}

impl FromIterator<ExtentMapping> for ExtentTree {
    /// Builds a tree, panicking on overlap; use [`ExtentTree::from_extents`]
    /// for fallible construction.
    fn from_iter<I: IntoIterator<Item = ExtentMapping>>(iter: I) -> Self {
        ExtentTree::from_extents(iter).expect("overlapping extents")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Plba;
    use proptest::prelude::*;

    #[test]
    fn insert_rejects_overlap() {
        let mut t = ExtentTree::new();
        t.insert(ExtentMapping::new(Vlba(10), Plba(0), 10)).unwrap();
        let err = t
            .insert(ExtentMapping::new(Vlba(15), Plba(100), 1))
            .unwrap_err();
        assert!(matches!(err, InsertError::Overlap { .. }));
        assert!(err.to_string().contains("overlaps"));
        // Non-overlapping neighbours are fine.
        t.insert(ExtentMapping::new(Vlba(0), Plba(50), 10)).unwrap();
        t.insert(ExtentMapping::new(Vlba(20), Plba(60), 5)).unwrap();
    }

    #[test]
    fn merges_adjacent_extents() {
        let mut t = ExtentTree::new();
        t.insert(ExtentMapping::new(Vlba(0), Plba(100), 4)).unwrap();
        t.insert(ExtentMapping::new(Vlba(8), Plba(108), 4)).unwrap();
        // Fill the gap with the physically-contiguous middle piece: all
        // three coalesce into one extent.
        t.insert(ExtentMapping::new(Vlba(4), Plba(104), 4)).unwrap();
        assert_eq!(t.extent_count(), 1);
        assert_eq!(t.mapped_blocks(), 12);
        assert_eq!(t.logical_end(), Vlba(12));
    }

    #[test]
    fn physically_discontiguous_do_not_merge() {
        let mut t = ExtentTree::new();
        t.insert(ExtentMapping::new(Vlba(0), Plba(100), 4)).unwrap();
        t.insert(ExtentMapping::new(Vlba(4), Plba(500), 4)).unwrap();
        assert_eq!(t.extent_count(), 2);
    }

    #[test]
    fn lookup_hits_and_holes() {
        let t: ExtentTree = [
            ExtentMapping::new(Vlba(0), Plba(10), 2),
            ExtentMapping::new(Vlba(10), Plba(20), 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            t.lookup(Vlba(1)).unwrap().translate(Vlba(1)),
            Some(Plba(11))
        );
        assert!(t.lookup(Vlba(2)).is_none());
        assert!(t.lookup(Vlba(9)).is_none());
        assert_eq!(
            t.lookup(Vlba(11)).unwrap().translate(Vlba(11)),
            Some(Plba(21))
        );
        assert!(t.lookup(Vlba(12)).is_none());
    }

    #[test]
    fn remove_range_splits() {
        let mut t = ExtentTree::new();
        t.insert(ExtentMapping::new(Vlba(0), Plba(100), 10))
            .unwrap();
        t.remove_range(Vlba(3), 4);
        assert_eq!(t.extent_count(), 2);
        assert_eq!(
            t.lookup(Vlba(2)).unwrap().translate(Vlba(2)),
            Some(Plba(102))
        );
        assert!(t.lookup(Vlba(3)).is_none());
        assert!(t.lookup(Vlba(6)).is_none());
        assert_eq!(
            t.lookup(Vlba(7)).unwrap().translate(Vlba(7)),
            Some(Plba(107))
        );
        t.remove_range(Vlba(0), 100);
        assert_eq!(t.extent_count(), 0);
        t.remove_range(Vlba(0), 0); // no-op
    }

    #[test]
    fn depth_grows_with_fragmentation() {
        // FANOUT extents fit a single leaf; FANOUT+1 need a root.
        let single: ExtentTree = (0..FANOUT as u64)
            .map(|i| ExtentMapping::new(Vlba(i * 2), Plba(i * 2), 1))
            .collect();
        assert_eq!(single.serialized_depth(), 1);
        let two: ExtentTree = (0..FANOUT as u64 + 1)
            .map(|i| ExtentMapping::new(Vlba(i * 2), Plba(i * 2), 1))
            .collect();
        assert_eq!(two.serialized_depth(), 2);
        let three: ExtentTree = (0..(FANOUT * FANOUT) as u64 + 1)
            .map(|i| ExtentMapping::new(Vlba(i * 2), Plba(i * 2), 1))
            .collect();
        assert_eq!(three.serialized_depth(), 3);
    }

    #[test]
    fn empty_tree_serializes() {
        let mut mem = HostMemory::new();
        let t = ExtentTree::new();
        let root = t.serialize(&mut mem);
        assert_ne!(root, 0);
        assert_eq!(t.serialized_depth(), 1);
    }

    proptest! {
        /// lookup() agrees with a brute-force reference map built from the
        /// same random (disjoint) extents.
        #[test]
        fn prop_lookup_matches_reference(
            // Random disjoint extents via start offsets spaced by stride.
            seeds in proptest::collection::vec((0u64..50, 1u64..20, 0u64..100_000), 1..60)
        ) {
            let mut t = ExtentTree::new();
            let mut reference = std::collections::HashMap::new();
            let mut cursor = 0u64;
            for &(gap, len, phys) in &seeds {
                let logical = cursor + gap;
                cursor = logical + len;
                if t.insert(ExtentMapping::new(Vlba(logical), Plba(phys), len)).is_ok() {
                    for i in 0..len {
                        reference.insert(logical + i, phys + i);
                    }
                }
            }
            for v in 0..cursor + 10 {
                let got = t.lookup(Vlba(v)).and_then(|e| e.translate(Vlba(v)));
                prop_assert_eq!(got, reference.get(&v).map(|&p| Plba(p)));
            }
        }

        /// remove_range never leaves blocks mapped inside the removed range
        /// and never disturbs blocks outside it.
        #[test]
        fn prop_remove_range_exact(
            len in 1u64..200,
            cut_start in 0u64..220,
            cut_len in 0u64..100,
        ) {
            let mut t = ExtentTree::new();
            t.insert(ExtentMapping::new(Vlba(0), Plba(1000), len)).unwrap();
            t.remove_range(Vlba(cut_start), cut_len);
            for v in 0..len + 20 {
                let inside_cut = v >= cut_start && v < cut_start + cut_len;
                let originally = v < len;
                let got = t.lookup(Vlba(v)).and_then(|e| e.translate(Vlba(v)));
                if originally && !inside_cut {
                    prop_assert_eq!(got, Some(Plba(1000 + v)));
                } else {
                    prop_assert_eq!(got, None);
                }
            }
        }
    }
}
