//! Device-visible serialized node layout.
//!
//! The hypervisor writes tree nodes into host memory in this format and the
//! device's block-walk unit reads them back over DMA. The layout follows the
//! paper's Fig. 4:
//!
//! ```text
//! node (512 B) = header (16 B) + up to 20 entries (24 B each)
//! header       = magic u16 | kind u16 | entry_count u32 | reserved u64
//! node entry   = first_logical u64 | num_blocks u64 | child_ptr u64
//! extent entry = first_logical u64 | num_blocks u64 | first_physical u64
//! ```
//!
//! A `child_ptr` of zero is the NULL "pruned" marker: the subtree's
//! mappings were evicted under memory pressure and the device must
//! interrupt the host to regenerate them (paper §IV-B).

use crate::types::{ExtentMapping, Plba, Vlba};

/// Serialized node size in bytes — one DMA read per level of the walk.
pub const NODE_SIZE: usize = 512;
/// Header size in bytes.
pub const HEADER_SIZE: usize = 16;
/// Entry size in bytes.
pub const ENTRY_SIZE: usize = 24;
/// Maximum entries per node.
pub const FANOUT: usize = (NODE_SIZE - HEADER_SIZE) / ENTRY_SIZE;

const MAGIC: u16 = 0x4E53; // "NS"

/// What a node's entries are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Entries are node pointers to children.
    Internal,
    /// Entries are extent pointers (tree leaves).
    Leaf,
}

impl NodeKind {
    fn code(self) -> u16 {
        match self {
            NodeKind::Internal => 1,
            NodeKind::Leaf => 2,
        }
    }
}

/// A node-pointer entry of an internal node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeEntry {
    /// First logical block the child subtree covers.
    pub first_logical: Vlba,
    /// Number of (possibly non-contiguous) logical blocks it covers.
    pub blocks: u64,
    /// Host-memory address of the child node; 0 = pruned (NULL).
    pub child: u64,
}

impl NodeEntry {
    /// Whether the subtree was pruned by the hypervisor.
    pub fn is_pruned(&self) -> bool {
        self.child == 0
    }

    /// One past the last logical block covered.
    pub fn end_logical(&self) -> Vlba {
        self.first_logical.offset(self.blocks)
    }
}

/// Decoding error for a serialized node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// The magic bytes did not match — the pointer does not reference a
    /// serialized extent-tree node.
    BadMagic {
        /// Value found in the header.
        found: u16,
    },
    /// Unknown node kind code.
    BadKind {
        /// Value found in the header.
        found: u16,
    },
    /// Entry count exceeds the node's fanout.
    BadCount {
        /// Value found in the header.
        found: u32,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::BadMagic { found } => write!(f, "bad node magic {found:#06x}"),
            LayoutError::BadKind { found } => write!(f, "bad node kind {found}"),
            LayoutError::BadCount { found } => write!(f, "bad entry count {found}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Fixed-capacity inline list of decoded node entries. A node holds at
/// most [`FANOUT`] entries, so decoding never needs the heap — the walk
/// unit's hot loop reads nodes without touching the allocator. Derefs to a
/// slice of the live entries.
#[derive(Debug, Clone, Copy)]
pub struct NodeList<T> {
    items: [T; FANOUT],
    len: usize,
}

impl<T: Copy + Default> NodeList<T> {
    /// Builds a list of `len` entries, entry `i` produced by `f(i)`.
    /// A `len` beyond [`FANOUT`] (a contract violation: [`decode`] bounds
    /// the count first) is truncated.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        debug_assert!(len <= FANOUT, "node overflow: {len}");
        let len = len.min(FANOUT);
        let mut items = [T::default(); FANOUT];
        for (i, slot) in items[..len].iter_mut().enumerate() {
            *slot = f(i);
        }
        NodeList { items, len }
    }
}

impl<T> std::ops::Deref for NodeList<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.items[..self.len]
    }
}

impl<T: PartialEq> PartialEq for NodeList<T> {
    fn eq(&self, other: &Self) -> bool {
        self.items[..self.len] == other.items[..other.len]
    }
}

impl<T: Eq> Eq for NodeList<T> {}

impl<T: PartialEq> PartialEq<[T]> for NodeList<T> {
    fn eq(&self, other: &[T]) -> bool {
        &self.items[..self.len] == other
    }
}

impl<T: PartialEq> PartialEq<Vec<T>> for NodeList<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        &self.items[..self.len] == other.as_slice()
    }
}

/// A decoded node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// Internal node with child pointers.
    Internal(NodeList<NodeEntry>),
    /// Leaf node with extent pointers.
    Leaf(NodeList<ExtentMapping>),
}

impl Node {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            Node::Internal(v) => v.len(),
            Node::Leaf(v) => v.len(),
        }
    }

    /// Whether the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Encodes an internal node. More than [`FANOUT`] entries (a contract
/// violation: the builder splits nodes first) are truncated.
pub fn encode_internal(entries: &[NodeEntry]) -> [u8; NODE_SIZE] {
    debug_assert!(entries.len() <= FANOUT, "node overflow: {}", entries.len());
    let entries = &entries[..entries.len().min(FANOUT)];
    let mut buf = [0u8; NODE_SIZE];
    write_header(&mut buf, NodeKind::Internal, entries.len() as u32);
    for (i, e) in entries.iter().enumerate() {
        let off = HEADER_SIZE + i * ENTRY_SIZE;
        buf[off..off + 8].copy_from_slice(&e.first_logical.0.to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&e.blocks.to_le_bytes());
        buf[off + 16..off + 24].copy_from_slice(&e.child.to_le_bytes());
    }
    buf
}

/// Encodes a leaf node. More than [`FANOUT`] extents (a contract
/// violation: the builder splits nodes first) are truncated.
pub fn encode_leaf(extents: &[ExtentMapping]) -> [u8; NODE_SIZE] {
    debug_assert!(extents.len() <= FANOUT, "node overflow: {}", extents.len());
    let extents = &extents[..extents.len().min(FANOUT)];
    let mut buf = [0u8; NODE_SIZE];
    write_header(&mut buf, NodeKind::Leaf, extents.len() as u32);
    for (i, e) in extents.iter().enumerate() {
        let off = HEADER_SIZE + i * ENTRY_SIZE;
        buf[off..off + 8].copy_from_slice(&e.logical.0.to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&e.len.to_le_bytes());
        buf[off + 16..off + 24].copy_from_slice(&e.physical.0.to_le_bytes());
    }
    buf
}

fn write_header(buf: &mut [u8; NODE_SIZE], kind: NodeKind, count: u32) {
    buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
    buf[2..4].copy_from_slice(&kind.code().to_le_bytes());
    buf[4..8].copy_from_slice(&count.to_le_bytes());
}

/// Decodes a node buffer.
///
/// # Errors
///
/// Returns a [`LayoutError`] if the header is malformed — the device treats
/// this as a fatal tree-corruption condition.
pub fn decode(buf: &[u8; NODE_SIZE]) -> Result<Node, LayoutError> {
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(LayoutError::BadMagic { found: magic });
    }
    let kind = u16::from_le_bytes([buf[2], buf[3]]);
    let count = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if count as usize > FANOUT {
        return Err(LayoutError::BadCount { found: count });
    }
    let read_u64 = |off: usize| {
        // The count check above bounds every entry offset inside the node.
        let mut w = [0u8; 8];
        w.copy_from_slice(&buf[off..off + 8]);
        u64::from_le_bytes(w)
    };
    match kind {
        1 => {
            let entries = NodeList::from_fn(count as usize, |i| {
                let off = HEADER_SIZE + i * ENTRY_SIZE;
                NodeEntry {
                    first_logical: Vlba(read_u64(off)),
                    blocks: read_u64(off + 8),
                    child: read_u64(off + 16),
                }
            });
            Ok(Node::Internal(entries))
        }
        2 => {
            let extents = NodeList::from_fn(count as usize, |i| {
                let off = HEADER_SIZE + i * ENTRY_SIZE;
                ExtentMapping {
                    logical: Vlba(read_u64(off)),
                    len: read_u64(off + 8),
                    physical: Plba(read_u64(off + 16)),
                }
            });
            Ok(Node::Leaf(extents))
        }
        other => Err(LayoutError::BadKind { found: other }),
    }
}

/// Byte offset of the `child` pointer of internal entry `i` — used to
/// overwrite a pointer with NULL when pruning in place.
///
/// # Panics
///
/// Panics if `i >= FANOUT`.
pub fn child_ptr_offset(i: usize) -> usize {
    assert!(i < FANOUT, "entry index out of range");
    HEADER_SIZE + i * ENTRY_SIZE + 16
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fanout_is_twenty() {
        assert_eq!(FANOUT, 20);
    }

    #[test]
    fn leaf_roundtrip() {
        let extents = vec![
            ExtentMapping::new(Vlba(0), Plba(100), 4),
            ExtentMapping::new(Vlba(8), Plba(200), 2),
        ];
        let buf = encode_leaf(&extents);
        match decode(&buf).unwrap() {
            Node::Leaf(got) => assert_eq!(got, extents),
            other => panic!("decoded wrong kind: {other:?}"),
        }
    }

    #[test]
    fn internal_roundtrip() {
        let entries = vec![
            NodeEntry {
                first_logical: Vlba(0),
                blocks: 100,
                child: 0x1000,
            },
            NodeEntry {
                first_logical: Vlba(100),
                blocks: 50,
                child: 0, // pruned
            },
        ];
        let buf = encode_internal(&entries);
        match decode(&buf).unwrap() {
            Node::Internal(got) => {
                assert_eq!(got, entries);
                assert!(!got[0].is_pruned());
                assert!(got[1].is_pruned());
                assert_eq!(got[0].end_logical(), Vlba(100));
            }
            other => panic!("decoded wrong kind: {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = [0u8; NODE_SIZE];
        assert_eq!(
            decode(&buf).unwrap_err(),
            LayoutError::BadMagic { found: 0 }
        );
    }

    #[test]
    fn bad_kind_rejected() {
        let mut buf = encode_leaf(&[]);
        buf[2] = 9;
        assert!(matches!(
            decode(&buf).unwrap_err(),
            LayoutError::BadKind { found: 9 }
        ));
    }

    #[test]
    fn bad_count_rejected() {
        let mut buf = encode_leaf(&[]);
        buf[4] = (FANOUT + 1) as u8;
        assert!(matches!(
            decode(&buf).unwrap_err(),
            LayoutError::BadCount { .. }
        ));
    }

    #[test]
    fn node_empty_and_len() {
        let buf = encode_leaf(&[]);
        let node = decode(&buf).unwrap();
        assert!(node.is_empty());
        assert_eq!(node.len(), 0);
    }

    #[test]
    fn child_ptr_offset_matches_encoding() {
        let entries = vec![NodeEntry {
            first_logical: Vlba(1),
            blocks: 2,
            child: 0xABCD,
        }];
        let buf = encode_internal(&entries);
        let off = child_ptr_offset(0);
        let ptr = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
        assert_eq!(ptr, 0xABCD);
    }

    proptest! {
        /// Any set of <= FANOUT extents round-trips exactly.
        #[test]
        fn prop_leaf_roundtrip(
            raw in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000, 1u64..10_000), 0..FANOUT)
        ) {
            let extents: Vec<ExtentMapping> = raw
                .iter()
                .map(|&(l, p, n)| ExtentMapping::new(Vlba(l), Plba(p), n))
                .collect();
            let buf = encode_leaf(&extents);
            match decode(&buf).unwrap() {
                Node::Leaf(got) => prop_assert_eq!(got, extents),
                other => return Err(TestCaseError::fail(format!("wrong kind: {other:?}"))),
            }
        }
    }
}
