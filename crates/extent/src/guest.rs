//! Guest-input quarantine: the [`Untrusted<T>`] wrapper and the
//! bounds-proving validators that are the only sanctioned way out of it.
//!
//! NeSC's isolation claim cuts both ways. The T rules (and the `Vlba`/
//! `Plba` newtypes) keep *translated* addresses from leaking back toward
//! the guest; this module covers the opposite direction: raw integers
//! decoded from guest-controlled memory — SQE fields, ring descriptors,
//! virtio request headers, doorbell writes — must not reach an extent
//! walk, a DMA length, or ring-index arithmetic until a validator has
//! proven them in bounds. The `nesc-lint` G rules enforce the discipline
//! statically:
//!
//! * **G1** — values produced by a `// nesc-lint: guest-input` decode
//!   boundary travel as `Untrusted<T>`, never as raw integers;
//! * **G2** — [`Untrusted::into_unchecked`] (the raw escape hatch) is
//!   confined to the allowlisted boundary modules;
//! * **G3** — on the data-path call graph, every guest-input source →
//!   sink path must cross a `validate_*` function first.
//!
//! The validators live here — next to the newtypes whose invariants they
//! prove — so every decoding crate (`nesc-core`, `nesc-nvme`,
//! `nesc-virtio`, `nesc-hypervisor`) shares one bounds-check vocabulary
//! and one typed fault enum instead of scattered ad-hoc `if` ranges.

use std::fmt;

use crate::types::Vlba;

/// A value decoded from guest-controlled memory, not yet proven safe.
///
/// The inner value is private: the only exits are a validator in this
/// module (which proves a bound and returns the raw value) or
/// [`into_unchecked`](Self::into_unchecked), which rule G2 confines to
/// the wire-serialization boundary modules. Wrapping ([`new`](Self::new))
/// is free everywhere — quarantining a value is always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Untrusted<T>(T);

impl<T> Untrusted<T> {
    /// Quarantines a raw guest-supplied value.
    pub fn new(v: T) -> Self {
        Untrusted(v)
    }

    /// Unwraps without proving anything. Legitimate only where the value
    /// goes straight back onto the wire (encode paths) or into a lookup
    /// that is total over the type's domain; everywhere else rule G2
    /// demands a justified `// nesc-lint::allow(G2)` — prefer a
    /// validator.
    pub fn into_unchecked(self) -> T {
        self.0
    }
}

impl<T: fmt::Display> fmt::Display for Untrusted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "untrusted({})", self.0)
    }
}

/// Why a guest-supplied value failed validation.
///
/// These are *guest-attributable* faults: the device's answer is a typed
/// error completion (or a dropped doorbell), never a panic and never a
/// silently clamped address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuestFault {
    /// `slba + blocks` wraps the address space or ends past the
    /// namespace/device capacity.
    SlbaOutOfRange {
        /// The starting virtual block the guest asked for.
        slba: Vlba,
        /// The validated transfer length in blocks.
        blocks: u64,
        /// The virtual capacity the range must fit inside.
        capacity_blocks: u64,
    },
    /// The transfer length alone exceeds the virtual capacity.
    NlbOutOfRange {
        /// The requested length in blocks (already 1-based).
        blocks: u64,
        /// The virtual capacity in blocks.
        capacity_blocks: u64,
    },
    /// A zero-length transfer, which the descriptor format forbids.
    ZeroLength,
    /// A ring-tail doorbell value outside the configured ring.
    TailOutOfRange {
        /// The doorbell value the guest wrote.
        tail: u32,
        /// The configured ring size.
        entries: u32,
    },
    /// A virtio request sector past the virtual disk.
    SectorOutOfRange {
        /// The 512-byte sector index from the request header.
        sector: u64,
        /// The virtual disk size in sectors.
        capacity_sectors: u64,
    },
    /// A descriptor chain longer than the device accepts.
    ChainTooLong {
        /// The chain length the guest published.
        len: u32,
        /// The device's chain-length limit.
        max: u32,
    },
}

impl fmt::Display for GuestFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuestFault::SlbaOutOfRange {
                slba,
                blocks,
                capacity_blocks,
            } => write!(
                f,
                "guest slba {}+{blocks} blocks exceeds capacity {capacity_blocks}",
                slba.0
            ),
            GuestFault::NlbOutOfRange {
                blocks,
                capacity_blocks,
            } => write!(
                f,
                "guest transfer of {blocks} blocks exceeds capacity {capacity_blocks}"
            ),
            GuestFault::ZeroLength => write!(f, "guest requested a zero-length transfer"),
            GuestFault::TailOutOfRange { tail, entries } => {
                write!(f, "guest rang tail {tail} on a {entries}-entry ring")
            }
            GuestFault::SectorOutOfRange {
                sector,
                capacity_sectors,
            } => write!(
                f,
                "guest sector {sector} beyond virtual disk of {capacity_sectors} sectors"
            ),
            GuestFault::ChainTooLong { len, max } => {
                write!(f, "guest descriptor chain of {len} exceeds limit {max}")
            }
        }
    }
}

impl std::error::Error for GuestFault {}

/// Proves a guest starting LBA in range: `slba + blocks` must not wrap
/// and must end at or before `capacity_blocks`.
///
/// # Errors
///
/// [`GuestFault::SlbaOutOfRange`] on wrap-around or overrun.
pub fn validate_slba(
    slba: Untrusted<Vlba>,
    blocks: u64,
    capacity_blocks: u64,
) -> Result<Vlba, GuestFault> {
    let v = slba.0;
    match v.checked_add_blocks(blocks) {
        Some(end) if end <= Vlba(capacity_blocks) => Ok(v),
        _ => Err(GuestFault::SlbaOutOfRange {
            slba: v,
            blocks,
            capacity_blocks,
        }),
    }
}

/// Proves an NVMe `nlb` field (0-based: `nlb = 0` means one block) fits
/// the namespace, returning the 1-based block count.
///
/// # Errors
///
/// [`GuestFault::NlbOutOfRange`] when the length alone exceeds capacity.
pub fn validate_nlb(nlb: Untrusted<u32>, capacity_blocks: u64) -> Result<u64, GuestFault> {
    let blocks = nlb.0 as u64 + 1;
    if blocks <= capacity_blocks {
        Ok(blocks)
    } else {
        Err(GuestFault::NlbOutOfRange {
            blocks,
            capacity_blocks,
        })
    }
}

/// Proves a descriptor block count non-zero, returning it widened.
///
/// # Errors
///
/// [`GuestFault::ZeroLength`] for a zero count.
pub fn validate_count(count: Untrusted<u32>) -> Result<u64, GuestFault> {
    if count.0 == 0 {
        Err(GuestFault::ZeroLength)
    } else {
        Ok(count.0 as u64)
    }
}

/// Proves a ring-tail doorbell value addresses a slot of the configured
/// ring (`tail < entries`).
///
/// # Errors
///
/// [`GuestFault::TailOutOfRange`] otherwise (including `entries == 0`,
/// i.e. an unconfigured ring).
pub fn validate_ring_tail(tail: Untrusted<u32>, entries: u32) -> Result<u32, GuestFault> {
    if tail.0 < entries {
        Ok(tail.0)
    } else {
        Err(GuestFault::TailOutOfRange {
            tail: tail.0,
            entries,
        })
    }
}

/// Proves a virtio request sector inside the virtual disk.
///
/// # Errors
///
/// [`GuestFault::SectorOutOfRange`] when `sector >= capacity_sectors`.
pub fn validate_sector(sector: Untrusted<u64>, capacity_sectors: u64) -> Result<u64, GuestFault> {
    if sector.0 < capacity_sectors {
        Ok(sector.0)
    } else {
        Err(GuestFault::SectorOutOfRange {
            sector: sector.0,
            capacity_sectors,
        })
    }
}

/// Proves a descriptor-chain length within the device limit.
///
/// # Errors
///
/// [`GuestFault::ChainTooLong`] when `len > max`.
pub fn validate_chain_len(len: Untrusted<u32>, max: u32) -> Result<u32, GuestFault> {
    if len.0 <= max {
        Ok(len.0)
    } else {
        Err(GuestFault::ChainTooLong { len: len.0, max })
    }
}

/// Releases a guest command identifier. Total: a cid is only ever echoed
/// back in the matching completion, so every `u16` is safe — this exists
/// so the data path can exit the quarantine without an unchecked escape.
pub fn validate_cid(cid: Untrusted<u16>) -> u16 {
    cid.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slba_accepts_exact_fit_and_rejects_overrun_and_wrap() {
        assert_eq!(validate_slba(Untrusted::new(Vlba(10)), 6, 16), Ok(Vlba(10)));
        assert!(validate_slba(Untrusted::new(Vlba(11)), 6, 16).is_err());
        assert!(validate_slba(Untrusted::new(Vlba(u64::MAX)), 1, u64::MAX).is_err());
        // Zero-length ranges never overrun on their own.
        assert_eq!(validate_slba(Untrusted::new(Vlba(16)), 0, 16), Ok(Vlba(16)));
    }

    #[test]
    fn nlb_is_one_based_and_bounded() {
        assert_eq!(validate_nlb(Untrusted::new(0), 1), Ok(1));
        assert_eq!(validate_nlb(Untrusted::new(7), 8), Ok(8));
        assert_eq!(
            validate_nlb(Untrusted::new(8), 8),
            Err(GuestFault::NlbOutOfRange {
                blocks: 9,
                capacity_blocks: 8
            })
        );
    }

    #[test]
    fn count_rejects_zero_only() {
        assert_eq!(
            validate_count(Untrusted::new(0)),
            Err(GuestFault::ZeroLength)
        );
        assert_eq!(
            validate_count(Untrusted::new(u32::MAX)),
            Ok(u32::MAX as u64)
        );
    }

    #[test]
    fn ring_tail_is_strictly_below_entries() {
        assert_eq!(validate_ring_tail(Untrusted::new(7), 8), Ok(7));
        assert!(validate_ring_tail(Untrusted::new(8), 8).is_err());
        assert!(
            validate_ring_tail(Untrusted::new(0), 0).is_err(),
            "an unconfigured ring accepts no doorbell"
        );
    }

    #[test]
    fn sector_and_chain_len_bounds() {
        assert_eq!(validate_sector(Untrusted::new(99), 100), Ok(99));
        assert!(validate_sector(Untrusted::new(100), 100).is_err());
        assert_eq!(validate_chain_len(Untrusted::new(3), 3), Ok(3));
        assert!(validate_chain_len(Untrusted::new(4), 3).is_err());
    }

    #[test]
    fn cid_release_is_total() {
        assert_eq!(validate_cid(Untrusted::new(u16::MAX)), u16::MAX);
    }

    #[test]
    fn faults_render_human_readable() {
        let f = validate_ring_tail(Untrusted::new(9), 8).unwrap_err();
        assert!(f.to_string().contains("tail 9"));
        assert!(format!("{}", Untrusted::new(5u32)).contains("untrusted(5)"));
    }
}
