//! The device-side block walk.
//!
//! This is the traversal NeSC's block-walk unit performs in hardware (paper
//! §V-B): starting from the VF's `ExtentTreeRoot` pointer, DMA one node per
//! level out of host memory, match the vLBA against the node's entries, and
//! recurse until an extent is matched (translation), no entry covers the
//! address (a file hole), or a NULL child pointer is found (the hypervisor
//! pruned the subtree under memory pressure and must be interrupted to
//! regenerate it).
//!
//! The function here is the *functional* walk; the controller model in
//! `nesc-core` charges one tree-node DMA per level reported in
//! [`WalkResult::levels`].

use nesc_pcie::{HostAddr, HostMemory};

use crate::layout::{self, LayoutError, Node, NODE_SIZE};
use crate::types::{ExtentMapping, Vlba};

/// Outcome of walking a serialized extent tree for one vLBA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// The address is mapped; the whole covering extent is returned so a
    /// BTLB can cache it.
    Mapped(ExtentMapping),
    /// The address falls in a file hole: reads return zeros, writes require
    /// host allocation.
    Hole,
    /// The covering subtree was pruned (NULL node pointer); the device must
    /// interrupt the host to regenerate mappings.
    Pruned {
        /// Address of the internal node holding the NULL pointer.
        node: HostAddr,
        /// Index of the NULL entry within that node.
        entry: usize,
    },
    /// The node bytes did not decode — tree corruption, fatal.
    Corrupt(LayoutError),
}

/// Result of one walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// What the walk found.
    pub outcome: WalkOutcome,
    /// Number of nodes read — the number of DMA round trips the hardware
    /// pays for this walk.
    pub levels: u32,
}

fn read_node(mem: &HostMemory, addr: HostAddr) -> Result<Node, LayoutError> {
    let mut buf = [0u8; NODE_SIZE];
    mem.read(addr, &mut buf);
    layout::decode(&buf)
}

/// Result of one run-sized walk: the outcome for the probed vLBA plus how
/// many blocks (starting there) the outcome is known to apply to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkRun {
    /// Outcome and level count, exactly as [`walk`] would report them.
    pub result: WalkResult,
    /// Blocks the outcome applies to, starting at the probed vLBA and
    /// capped at the caller's `max_blocks` (always at least 1):
    ///
    /// - `Mapped`: the extent's remaining coverage — every block in the run
    ///   translates contiguously through the same extent.
    /// - `Hole`: the hole span bounded so every block in the run resolves
    ///   `Hole` along the *same* node path with the same `levels` (the span
    ///   is clipped to the covering entry's range at each internal level),
    ///   so batched callers charge identical per-block walk costs.
    /// - `Pruned` / `Corrupt`: 1 — the caller must stop at this block.
    pub run: u64,
}

/// Walks the serialized tree rooted at `root` for `vlba`.
///
/// # Example
///
/// ```
/// use nesc_extent::{ExtentTree, ExtentMapping, Vlba, Plba, walk, WalkOutcome};
/// use nesc_pcie::HostMemory;
///
/// let mut mem = HostMemory::new();
/// let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(777), 4)].into_iter().collect();
/// let root = tree.serialize(&mut mem);
///
/// let hit = walk(&mem, root, Vlba(2));
/// assert_eq!(hit.levels, 1); // single-leaf tree: one DMA
/// match hit.outcome {
///     WalkOutcome::Mapped(e) => assert_eq!(e.translate(Vlba(2)), Some(Plba(779))),
///     other => panic!("{other:?}"),
/// }
/// assert_eq!(walk(&mem, root, Vlba(9)).outcome, WalkOutcome::Hole);
/// ```
pub fn walk(mem: &HostMemory, root: HostAddr, vlba: Vlba) -> WalkResult {
    walk_run(mem, root, vlba, 1).result
}

/// Walks the tree once and reports how far the outcome extends, so a
/// translation unit can serve a whole extent run from a single descent
/// (paper §V-B: "extents typically span more than one block").
///
/// # Example
///
/// ```
/// use nesc_extent::{ExtentTree, ExtentMapping, Vlba, Plba, walk_run, WalkOutcome};
/// use nesc_pcie::HostMemory;
///
/// let mut mem = HostMemory::new();
/// let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(777), 8)].into_iter().collect();
/// let root = tree.serialize(&mut mem);
///
/// let r = walk_run(&mem, root, Vlba(2), 64);
/// assert!(matches!(r.result.outcome, WalkOutcome::Mapped(_)));
/// assert_eq!(r.run, 6); // blocks 2..8 of the extent
/// ```
pub fn walk_run(mem: &HostMemory, root: HostAddr, vlba: Vlba, max_blocks: u64) -> WalkRun {
    let max_blocks = max_blocks.max(1);
    let mut addr = root;
    let mut levels = 0u32;
    // Tightest end-of-coverage bound among the internal entries descended
    // through; a hole span must not cross it, or later blocks of the span
    // would walk a different path (different levels, different nodes).
    let mut path_bound = u64::MAX;
    loop {
        levels += 1;
        let node = match read_node(mem, addr) {
            Ok(n) => n,
            Err(e) => {
                return WalkRun {
                    result: WalkResult {
                        outcome: WalkOutcome::Corrupt(e),
                        levels,
                    },
                    run: 1,
                }
            }
        };
        match node {
            Node::Leaf(extents) => {
                let pos = extents.partition_point(|e| e.logical <= vlba);
                let hit = pos
                    .checked_sub(1)
                    .map(|i| extents[i])
                    .filter(|e| e.contains(vlba));
                let (outcome, run) = match hit {
                    Some(e) => (WalkOutcome::Mapped(e), e.covered_run(vlba, max_blocks)),
                    None => {
                        // The hole runs to the next extent in this leaf, or
                        // to the subtree's coverage bound if none follows.
                        let bound = extents
                            .get(pos)
                            .map_or(path_bound, |e| e.logical.0.min(path_bound));
                        (WalkOutcome::Hole, hole_run(vlba, bound, max_blocks))
                    }
                };
                return WalkRun {
                    result: WalkResult { outcome, levels },
                    run,
                };
            }
            Node::Internal(entries) => {
                let pos = entries.partition_point(|e| e.first_logical <= vlba);
                let hit = pos
                    .checked_sub(1)
                    .map(|i| (i, entries[i]))
                    .filter(|(_, e)| vlba < e.end_logical());
                match hit {
                    Some((i, e)) if e.is_pruned() => {
                        return WalkRun {
                            result: WalkResult {
                                outcome: WalkOutcome::Pruned {
                                    node: addr,
                                    entry: i,
                                },
                                levels,
                            },
                            run: 1,
                        }
                    }
                    Some((_, e)) => {
                        path_bound = path_bound.min(e.end_logical().0);
                        addr = e.child;
                    }
                    None => {
                        // Gap between entries: every block up to the next
                        // entry's start resolves Hole at this very node.
                        let bound = entries
                            .get(pos)
                            .map_or(path_bound, |e| e.first_logical.0.min(path_bound));
                        return WalkRun {
                            result: WalkResult {
                                outcome: WalkOutcome::Hole,
                                levels,
                            },
                            run: hole_run(vlba, bound, max_blocks),
                        };
                    }
                }
            }
        }
    }
}

/// Span of a hole starting at `vlba` that ends before `bound`, capped at
/// `max_blocks`; never zero (the probed block itself is a hole).
fn hole_run(vlba: Vlba, bound: u64, max_blocks: u64) -> u64 {
    bound.saturating_sub(vlba.0).clamp(1, max_blocks)
}

/// Prunes the subtree covering `vlba`: finds the deepest internal node on
/// the walk path and overwrites the covering entry's child pointer with
/// NULL, in place. Returns `true` if something was pruned; `false` if the
/// tree is a single leaf (nothing prunable) or the address is a hole.
///
/// This is the hypervisor-side "memory pressure" operation the paper
/// describes; the read/write paths then observe [`WalkOutcome::Pruned`].
pub fn prune_covering(mem: &mut HostMemory, root: HostAddr, vlba: Vlba) -> bool {
    let mut addr = root;
    loop {
        let node = match read_node(mem, addr) {
            Ok(n) => n,
            Err(_) => return false,
        };
        match node {
            Node::Leaf(_) => return false,
            Node::Internal(entries) => {
                let pos = entries.partition_point(|e| e.first_logical <= vlba);
                let hit = pos
                    .checked_sub(1)
                    .map(|i| (i, entries[i]))
                    .filter(|(_, e)| vlba < e.end_logical());
                match hit {
                    None => return false,
                    Some((i, e)) if e.is_pruned() => {
                        // Already pruned at this level.
                        let _ = i;
                        return true;
                    }
                    Some((i, e)) => {
                        // If the child is a leaf, prune here; otherwise
                        // descend to prune as deep as possible (minimizes
                        // the mappings lost).
                        let child_is_leaf = matches!(read_node(mem, e.child), Ok(Node::Leaf(_)));
                        if child_is_leaf {
                            let off = addr + layout::child_ptr_offset(i) as u64;
                            mem.write_u64(off, 0);
                            return true;
                        }
                        addr = e.child;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::FANOUT;
    use crate::tree::ExtentTree;
    use crate::types::Plba;
    use proptest::prelude::*;

    fn fragmented_tree(n: u64) -> ExtentTree {
        // Every extent is 1 block with a 1-block hole after it, and a
        // non-contiguous physical address so nothing merges.
        (0..n)
            .map(|i| ExtentMapping::new(Vlba(i * 2), Plba(i * 3 + 7), 1))
            .collect()
    }

    #[test]
    fn walk_matches_builder_lookup() {
        let tree = fragmented_tree(500);
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        for v in 0..1_010 {
            let expect = tree.lookup(Vlba(v)).and_then(|e| e.translate(Vlba(v)));
            let got = match walk(&mem, root, Vlba(v)).outcome {
                WalkOutcome::Mapped(e) => e.translate(Vlba(v)),
                WalkOutcome::Hole => None,
                other => panic!("unexpected outcome {other:?}"),
            };
            assert_eq!(got, expect, "at vLBA {v}");
        }
    }

    #[test]
    fn walk_levels_match_serialized_depth() {
        for n in [
            1u64,
            FANOUT as u64,
            FANOUT as u64 + 1,
            (FANOUT * FANOUT) as u64 + 1,
        ] {
            let tree = fragmented_tree(n);
            let mut mem = HostMemory::new();
            let root = tree.serialize(&mut mem);
            let r = walk(&mem, root, Vlba(0));
            assert_eq!(r.levels, tree.serialized_depth(), "n={n}");
            assert!(matches!(r.outcome, WalkOutcome::Mapped(_)));
        }
    }

    #[test]
    fn walk_empty_tree_is_hole() {
        let mut mem = HostMemory::new();
        let root = ExtentTree::new().serialize(&mut mem);
        let r = walk(&mem, root, Vlba(0));
        assert_eq!(r.outcome, WalkOutcome::Hole);
        assert_eq!(r.levels, 1);
    }

    #[test]
    fn walk_detects_corruption() {
        let mem = HostMemory::new();
        // Address 0x5000 holds zeros -> bad magic.
        let r = walk(&mem, 0x5000, Vlba(0));
        assert!(matches!(r.outcome, WalkOutcome::Corrupt(_)));
    }

    #[test]
    fn prune_then_walk_reports_pruned() {
        let tree = fragmented_tree(FANOUT as u64 * 3); // depth 2
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        let victim = Vlba(0);
        assert!(prune_covering(&mut mem, root, victim));
        match walk(&mem, root, victim).outcome {
            WalkOutcome::Pruned { node, entry } => {
                assert_eq!(node, root);
                assert_eq!(entry, 0);
            }
            other => panic!("expected pruned, got {other:?}"),
        }
        // Addresses under other subtrees still translate.
        let far = Vlba((FANOUT as u64 * 2) * 2);
        assert!(matches!(
            walk(&mem, root, far).outcome,
            WalkOutcome::Mapped(_)
        ));
        // Re-pruning the same range is idempotent.
        assert!(prune_covering(&mut mem, root, victim));
    }

    #[test]
    fn prune_single_leaf_impossible() {
        let tree = fragmented_tree(3);
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        assert!(!prune_covering(&mut mem, root, Vlba(0)));
    }

    #[test]
    fn prune_hole_is_noop() {
        let tree = fragmented_tree(FANOUT as u64 + 5);
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        // vLBA beyond everything is a hole even at the root level.
        assert!(!prune_covering(&mut mem, root, Vlba(10_000_000)));
    }

    #[test]
    fn walk_run_reports_extent_coverage() {
        let tree: ExtentTree = [ExtentMapping::new(Vlba(10), Plba(100), 8)]
            .into_iter()
            .collect();
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        let r = walk_run(&mem, root, Vlba(12), 64);
        assert_eq!(r.run, 6);
        assert!(matches!(r.result.outcome, WalkOutcome::Mapped(_)));
        // Capped by the caller's budget.
        assert_eq!(walk_run(&mem, root, Vlba(12), 3).run, 3);
        // Run ending exactly on the extent boundary.
        assert_eq!(walk_run(&mem, root, Vlba(17), 64).run, 1);
    }

    #[test]
    fn walk_run_hole_spans_to_next_extent() {
        let tree: ExtentTree = [
            ExtentMapping::new(Vlba(0), Plba(100), 4),
            ExtentMapping::new(Vlba(10), Plba(200), 4),
        ]
        .into_iter()
        .collect();
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        let r = walk_run(&mem, root, Vlba(4), 64);
        assert_eq!(r.result.outcome, WalkOutcome::Hole);
        assert_eq!(r.run, 6); // blocks 4..10
                              // A hole past every extent is bounded only by the cap.
        assert_eq!(walk_run(&mem, root, Vlba(14), 64).run, 64);
    }

    #[test]
    fn walk_run_pruned_is_single_block() {
        let tree = fragmented_tree(FANOUT as u64 * 3);
        let mut mem = HostMemory::new();
        let root = tree.serialize(&mut mem);
        assert!(prune_covering(&mut mem, root, Vlba(0)));
        let r = walk_run(&mem, root, Vlba(0), 64);
        assert!(matches!(r.result.outcome, WalkOutcome::Pruned { .. }));
        assert_eq!(r.run, 1);
    }

    proptest! {
        /// Every block inside a reported run resolves to the same outcome
        /// class — and the same level count — as a fresh per-block walk,
        /// which is exactly the invariant the batched device path relies
        /// on to charge per-block costs arithmetically.
        #[test]
        fn prop_walk_run_blocks_agree_with_per_block_walks(
            n in 1u64..300,
            probes in proptest::collection::vec((0u64..2_000, 1u64..100), 1..30),
        ) {
            let tree = fragmented_tree(n);
            let mut mem = HostMemory::new();
            let root = tree.serialize(&mut mem);
            for &(v, max) in &probes {
                let r = walk_run(&mem, root, Vlba(v), max);
                prop_assert!(r.run >= 1 && r.run <= max.max(1));
                for k in 0..r.run {
                    let per_block = walk(&mem, root, Vlba(v + k));
                    prop_assert_eq!(per_block.levels, r.result.levels);
                    match (r.result.outcome, per_block.outcome) {
                        (WalkOutcome::Mapped(e), WalkOutcome::Mapped(e2)) => {
                            prop_assert_eq!(e, e2);
                        }
                        (WalkOutcome::Hole, WalkOutcome::Hole) => {}
                        (a, b) => return Err(TestCaseError::fail(
                            format!("run block {k}: {a:?} vs {b:?}"),
                        )),
                    }
                }
            }
        }
    }

    proptest! {
        /// For any fragmentation level, the device walk and the builder
        /// lookup agree everywhere.
        #[test]
        fn prop_walk_equals_lookup(n in 1u64..2_000, probes in proptest::collection::vec(0u64..5_000, 1..50)) {
            let tree = fragmented_tree(n);
            let mut mem = HostMemory::new();
            let root = tree.serialize(&mut mem);
            for &v in &probes {
                let expect = tree.lookup(Vlba(v)).and_then(|e| e.translate(Vlba(v)));
                let got = match walk(&mem, root, Vlba(v)).outcome {
                    WalkOutcome::Mapped(e) => e.translate(Vlba(v)),
                    WalkOutcome::Hole => None,
                    other => return Err(TestCaseError::fail(format!("{other:?}"))),
                };
                prop_assert_eq!(got, expect);
            }
        }
    }
}
