//! D7 fixture: heap-allocating calls inside `// nesc-lint: hot` regions.

// nesc-lint: hot
pub fn drain(&mut self, pending: &[Event], out: &mut Vec<Event>) {
    let staged: Vec<Event> = pending.iter().copied().collect();
    let boxed = Box::new(staged.len());
    let mut fresh = Vec::new();
    let label = format!("events-{boxed}");
    let copied = staged.to_vec();
    out.extend(copied);
}

pub fn cold_rebuild(pending: &[Event]) -> Vec<Event> {
    pending.to_vec()
}

// nesc-lint: hot
#[inline]
pub fn record(&mut self, v: u64) {
    self.ring.push(v);
}

// nesc-lint: hot
pub fn scratch(&mut self) {
    // nesc-lint::allow(D7): one-time warm-up fill, never the steady state.
    let warm = vec![0u8; 4096];
    self.seed(&warm);
}
