//! D6 fixture: raw integer literals where a sampling interval is expected.

pub fn configure(sampler: &mut Sampler, cfg: TelemetryConfig) {
    sampler.set_interval(50000);
    let cfg = cfg.poll_interval(25);
    let _ = cfg.interval(SimDuration::from_micros(50));
    let _ = sampler.interval();
    sampler.set_interval(tick_len);
}
