//! T1 fixture: raw u64 LBAs in public APIs.

pub struct Command {
    pub slba: u64,
    pub nblocks: u64,
    pub lba_typed: Vlba,
}

pub fn submit(dest_lba: u64, n: u64) -> bool {
    let start_lba: u64 = dest_lba; // a local, not API surface — no T1
    start_lba > n
}

pub fn translate(vlba: Vlba, hint: u64) -> Plba {
    hint_path(vlba, hint)
}

fn private_lba(lba: u64) -> u64 {
    lba
}
