//! L1 fixture: upward imports from the bottom-layer crate.

use nesc_core::NescDevice;
use nesc_extent::Vlba;

pub fn peek(dev: &NescDevice, v: Vlba) -> u64 {
    nesc_hypervisor::magic(dev, v)
}
