//! D1 fixture: wall-clock reads in simulated code.

use std::time::{Instant, SystemTime};

pub fn elapsed() -> u128 {
    let t = Instant::now();
    t.elapsed().as_nanos()
}

pub fn epoch() -> u64 {
    let _ = SystemTime::now();
    0
}
