//! A-rule fixture: suppression hygiene.

// nesc-lint::allow(D1): epoch stamp feeds the report banner only.
pub fn stamped() -> u64 {
    let _t = SystemTime::now();
    0
}

// nesc-lint::allow(D2)
pub fn seeded() -> u64 {
    let _r = thread_rng();
    0
}

// nesc-lint::allow(D5): nothing here actually violates D5.
pub fn clean() -> u64 {
    42
}

#[allow(dead_code)]
fn unused_one() {}

// allow: kept as an API example exercised only by fixtures.
#[allow(dead_code)]
fn unused_two() {}
