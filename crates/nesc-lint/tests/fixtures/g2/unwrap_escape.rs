//! G2 fixture: quarantine escapes outside a boundary module.
//!
//! The bare escape fires; the justified directive suppresses its
//! escape without going stale; the dead directive (nothing below it
//! escapes) earns an A3.

pub fn escape(nlb: Untrusted<u32>) -> u32 {
    nlb.into_unchecked()
}

// nesc-lint::allow(G2): wire re-encode keeps the raw form next to its decode.
pub fn reencode(nlb: Untrusted<u32>) -> u32 {
    nlb.into_unchecked()
}

// nesc-lint::allow(G2): stale justification — nothing below escapes.
pub fn quarantined(nlb: Untrusted<u32>) -> Untrusted<u32> {
    nlb
}
