//! T3 fixture: open-coded block↔byte arithmetic.

pub fn bytes_of(lba: Vlba) -> u64 {
    lba.0 * BLOCK_SIZE
}

pub fn also_bad(n: u64) -> u64 {
    let total_lba = n;
    BLOCK_SIZE * total_lba
}

pub fn third(x: Vlba) -> u64 {
    let raw_lba = 7;
    raw_lba * BLOCK_SIZE
}

pub fn fine(n: u64) -> u64 {
    n * BLOCK_SIZE
}
