//! P2 fixture: direct slice indexing inside hot regions.

// nesc-lint: hot
pub fn fold(buf: &[u64], idx: usize) -> u64 {
    let a = buf[idx];
    let window = &buf[1..3];
    a + window[0]
}

pub fn cold(buf: &[u64]) -> u64 {
    buf[0]
}
