//! D4 fixture: floats in the event-timestamp/scheduling core.

pub fn jitter(base: u64) -> u64 {
    let scale: f64 = 1.5;
    (base as f64 * scale) as u64
}
