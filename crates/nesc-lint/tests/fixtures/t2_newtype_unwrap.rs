//! T2 fixture: newtype unwrapping and Plba minting outside boundaries.

pub fn mint(block: u64) -> Plba {
    Plba(block)
}

pub fn unwrap_it(vlba: Vlba) -> u64 {
    vlba.0
}

pub fn guest_entry(block: u64) -> Vlba {
    Vlba(block)
}

// nesc-lint::allow(T2): wire serialization demo — re-wrapped on decode.
pub fn wire(slba: Vlba) -> u64 {
    slba.0
}
