//! D7/P2 fixture: a flight-recorder append path that allocates and
//! indexes per event instead of writing a fixed-size slot.

// nesc-lint: hot
pub fn append(&mut self, t_ns: u64, kind: u8, a: u64, b: u64) {
    let row = vec![t_ns, a, b];
    self.labels.push(kind.to_string());
    self.ring[self.head] = row;
    self.head = self.head.wrapping_add(1);
}

// The fixed-size contract the real recorder keeps: no allocation, no
// indexing, one `Cell` store into the preallocated ring.
// nesc-lint: hot
#[inline]
pub fn append_fixed(&self, ev: Event) {
    if let Some(slot) = self.buf.get(self.head.get()) {
        slot.set(ev);
    }
}
