//! G1 conforming example: the decode surface quarantines every
//! guest-controlled value in `Untrusted<T>`; only a bounds-proving
//! `validate_*` (or an allowlisted boundary `into_unchecked`) can
//! release them. The host-pointer field stays bare by design.

// nesc-lint: guest-input
pub struct WireSqe {
    pub nlb: Untrusted<u32>,
    pub slba: Untrusted<Vlba>,
    pub prp1: HostAddr,
}

// nesc-lint: guest-input
pub fn read_doorbell(value: u64) -> Untrusted<u32> {
    Untrusted::new(value as u32)
}
