//! G1 fixture: marked guest-decode surfaces leaking raw values.
//!
//! The struct leaks a raw integer (`nlb`) and a bare virtual address
//! (`slba`); the host-pointer field (`prp1`) is exempt — PRP/buffer
//! addresses are policed by the DMA layer, not the extent walk. The
//! decode fn returns a raw integer instead of quarantining.

// nesc-lint: guest-input
pub struct WireSqe {
    pub nlb: u32,
    pub slba: Vlba,
    pub prp1: HostAddr,
}

// nesc-lint: guest-input
pub fn read_doorbell(value: u64) -> u32 {
    value as u32
}
