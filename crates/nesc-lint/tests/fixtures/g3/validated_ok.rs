//! G3 conforming example: the bounds proof precedes the sink.
//!
//! `pump` launders the guest-read tail through `validate_tail` before
//! the DMA sink, so the taint is cleared on every path; the validator
//! itself unwraps under a justified directive (in the real workspace
//! validators live in an allowlisted boundary module instead).

// nesc-lint: guest-input
fn read_doorbell() -> Untrusted<u32> {
    Untrusted::new(7)
}

// nesc-lint::allow(G2): the comparison IS the bounds proof; the raw value dies here.
fn validate_tail(tail: Untrusted<u32>, entries: u32) -> Result<u32, GuestFault> {
    let t = tail.into_unchecked();
    if t < entries {
        Ok(t)
    } else {
        Err(GuestFault::TailOutOfRange { tail: t, entries })
    }
}

pub fn pump(mem: &HostMemory, entries: u32) {
    let tail = read_doorbell();
    let Ok(tail) = validate_tail(tail, entries) else {
        return;
    };
    mem.dma_read(u64::from(tail), 16);
}
