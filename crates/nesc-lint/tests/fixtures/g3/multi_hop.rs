//! G3 fixture: guest taint reaching sinks with no bounds proof.
//!
//! `pump` reads a marked source and hands the value down two hops;
//! `consume` unwraps it (a G2 as well — strict context is not a
//! boundary module) and drives a DMA read with it, so G3 reports the
//! full chain pump → advance → consume. The two signature-tainted
//! helpers exercise the indexing and ring-arithmetic sinks.

// nesc-lint: guest-input
fn read_doorbell() -> Untrusted<u32> {
    Untrusted::new(7)
}

pub fn pump(mem: &HostMemory) {
    let tail = read_doorbell();
    advance(mem, tail);
}

fn advance(mem: &HostMemory, ring_tail: Untrusted<u32>) {
    consume(mem, ring_tail);
}

fn consume(mem: &HostMemory, ring_tail: Untrusted<u32>) {
    let raw = ring_tail.into_unchecked();
    mem.dma_read(u64::from(raw), 16);
}

pub fn index_queue(heads: &[u64], ring_tail: u32) -> u64 {
    heads[ring_tail as usize]
}

pub fn head_math(ring_tail: u32, entries: u32) -> u32 {
    ring_tail % entries
}
