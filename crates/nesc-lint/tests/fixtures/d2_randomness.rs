//! D2 fixture: ambient randomness.

pub fn roll() -> u64 {
    let x = rand::random::<u64>();
    x
}

pub fn gen2() -> u32 {
    let mut _r = thread_rng();
    0
}

pub type FastMap = std::collections::HashMap<u64, u64, std::collections::hash_map::RandomState>;
