//! P1 fixture: panic sites on functions reachable from an entry point.

pub fn process_vf_request(x: Option<u64>) -> u64 {
    let v = x.unwrap();
    helper(v)
}

fn helper(v: u64) -> u64 {
    assert!(v > 0, "positive");
    if v == 7 {
        panic!("seven");
    }
    debug_assert!(v < 100, "bounded");
    sidecar(v)
}

fn sidecar(v: u64) -> u64 {
    // nesc-lint::allow(P1): fixture: a justified boundary-wrapper site.
    v.checked_add(1).expect("no overflow")
}

fn off_path(x: Option<u64>) -> u64 {
    x.expect("not reachable from any entry point")
}
