//! P3 fixture: stringly / opaque errors on reachable public API.

pub fn process_vf_request(v: u64) -> u64 {
    let a = lookup(v).unwrap_or(0);
    let b = parse(v).unwrap_or(0);
    let c = try_pick(v).unwrap_or(0);
    a + b + c + total(v).unwrap_or(0)
}

pub fn lookup(v: u64) -> Result<u64, String> {
    Err(format!("no {v}"))
}

pub fn parse(v: u64) -> Result<u64, ()> {
    if v > 0 {
        Ok(v)
    } else {
        Err(())
    }
}

pub fn try_pick(v: u64) -> Option<u64> {
    Some(v)
}

pub fn total(v: u64) -> Result<u64, FixtureError> {
    Ok(v)
}
