//! A-rule fixture: one directive covering a whole `impl` block, and one
//! covering a multi-line function signature.

// nesc-lint::allow(T2): serialization impl — every accessor unwraps.
impl Wire {
    pub fn a(slba: Vlba) -> u64 {
        slba.0
    }
    pub fn b(plba: Plba) -> u64 {
        plba.0
    }
}

// nesc-lint::allow(T1): transitional API kept for the trace replayer.
pub fn replay(
    dest_lba: u64,
    src_lba: u64,
) -> bool {
    dest_lba != src_lba
}

pub fn uncovered(raw_lba: Vlba) -> u64 {
    raw_lba.0
}
