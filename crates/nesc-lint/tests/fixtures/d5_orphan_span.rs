//! D5 fixture: spans fabricated outside the Tracer.

use nesc_sim::trace::{Span, SpanId};

pub fn fake(start: u64) -> SpanId {
    let _s = Span {
        id: SpanId(7),
        parent: SpanId::NONE,
    };
    SpanId(3)
}
