//! D3 fixture: default-hasher maps in simulation-state code.

use std::collections::{BTreeMap, HashMap, HashSet};

pub struct State {
    pub by_id: HashMap<u64, String>,
    pub seen: HashSet<u64>,
    pub ordered: BTreeMap<u64, String>,
}

pub fn build() -> HashMap<u64, u64> {
    HashMap::new()
}

pub fn sized() -> HashSet<u32> {
    HashSet::with_capacity(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn test_maps_are_fine() {
        let _m: HashMap<u64, u64> = HashMap::new();
    }
}
