//! Fixture corpus for the determinism, provenance, panic-freedom, and
//! layering rules.
//!
//! Each file under `tests/fixtures/` is bad on purpose; the linter must
//! report exactly the expected rule ids at exactly the expected line
//! numbers — no more, no fewer. (The fixtures live under `fixtures/`, a
//! path [`nesc_lint::classify`] excludes, so the workspace-wide run never
//! sees them.) The last test is the gate itself: the real workspace must
//! be lint-clean.

use std::path::Path;

use nesc_lint::{lint_source, LintContext, Rule};

fn lint_fixture(name: &str) -> Vec<(u32, Rule)> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    lint_source(&LintContext::strict(name), &src)
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn d1_flags_every_wall_clock_site() {
    assert_eq!(
        lint_fixture("d1_wall_clock.rs"),
        vec![(3, Rule::D1), (6, Rule::D1), (11, Rule::D1)]
    );
}

#[test]
fn d2_flags_every_randomness_site() {
    // Line 13's 3-argument HashMap names its hasher, so D3 stays quiet
    // and only the RandomState itself is reported.
    assert_eq!(
        lint_fixture("d2_randomness.rs"),
        vec![(4, Rule::D2), (9, Rule::D2), (13, Rule::D2)]
    );
}

#[test]
fn d3_flags_default_hashed_maps_but_not_tests() {
    // Lines 8 (BTreeMap) and 24 (inside #[cfg(test)]) must stay clean.
    assert_eq!(
        lint_fixture("d3_default_hash.rs"),
        vec![
            (6, Rule::D3),
            (7, Rule::D3),
            (11, Rule::D3),
            (12, Rule::D3),
            (15, Rule::D3),
            (16, Rule::D3),
        ]
    );
}

#[test]
fn d4_flags_float_types_and_literals() {
    // Line 4 carries both a `f64` type and a `1.5` literal — two reports.
    assert_eq!(
        lint_fixture("d4_floats.rs"),
        vec![(4, Rule::D4), (4, Rule::D4), (5, Rule::D4)]
    );
}

#[test]
fn d5_flags_orphan_spans_but_not_type_uses() {
    // Line 3 (import) and line 8 (`SpanId::NONE`) must stay clean.
    assert_eq!(
        lint_fixture("d5_orphan_span.rs"),
        vec![(6, Rule::D5), (7, Rule::D5), (10, Rule::D5)]
    );
}

#[test]
fn d6_flags_raw_interval_literals() {
    // Typed construction (line 6), the zero-arg getter (line 7) and a
    // non-literal argument (line 8) must stay clean; only the bare
    // integer intervals on lines 4-5 fire.
    assert_eq!(
        lint_fixture("d6_raw_interval.rs"),
        vec![(4, Rule::D6), (5, Rule::D6)]
    );
}

#[test]
fn d7_flags_hot_region_allocations_only() {
    // The five allocating calls inside `drain`'s hot region (lines 5-9)
    // fire; the identical `.to_vec()` in the unmarked `cold_rebuild`
    // (line 14) stays clean; the `#[inline]` between marker and fn
    // (line 18) does not break coverage, and `record`'s push to a
    // pre-sized ring is not an allocation site; the justified directive
    // (line 25) suppresses the warm-up `vec!` (line 26) without going
    // stale (no A3).
    assert_eq!(
        lint_fixture("d7_hot_alloc.rs"),
        vec![
            (5, Rule::D7),
            (6, Rule::D7),
            (7, Rule::D7),
            (8, Rule::D7),
            (9, Rule::D7),
        ]
    );
}

#[test]
fn d7_flags_allocating_flight_append_but_not_fixed_slot() {
    // The bad `append` allocates a fresh row (line 6), stringifies the
    // kind (line 7) and indexes the ring (line 8 — P2, the latent
    // panic); the fixed-slot `append_fixed` below it — the contract the
    // real recorder keeps — stays completely clean.
    assert_eq!(
        lint_fixture("d7_flight_append.rs"),
        vec![(6, Rule::D7), (7, Rule::D7), (8, Rule::P2)]
    );
}

#[test]
fn d7_applies_only_in_device_loop_modules() {
    let src = "// nesc-lint: hot\npub fn f(out: &mut O) { out.v = Vec::new(); }\n";
    let mut ctx = LintContext::strict("x.rs");
    assert_eq!(
        lint_source(&ctx, src)
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect::<Vec<_>>(),
        vec![(2, Rule::D7)]
    );
    ctx.device_loop = false;
    assert!(lint_source(&ctx, src).is_empty());
}

#[test]
fn suppression_hygiene_rules() {
    // The justified D1 directive (line 3) silently works; the unjustified
    // D2 one (line 9) still suppresses but earns an A2; the dead D5 one
    // (line 15) earns an A3; the bare #[allow] (line 20) earns an A1 and
    // the explained one (line 24) does not.
    assert_eq!(
        lint_fixture("suppressions.rs"),
        vec![(9, Rule::A2), (15, Rule::A3), (20, Rule::A1)]
    );
}

#[test]
fn t1_flags_raw_u64_lba_api_surface() {
    // Line 4 (`pub slba: u64`) and line 9 (`dest_lba: u64` parameter) are
    // API surface; the typed field (6), the local (10), the typed
    // parameter (14) and the private fn (18) must stay clean.
    assert_eq!(
        lint_fixture("t1_raw_lba_api.rs"),
        vec![(4, Rule::T1), (9, Rule::T1)]
    );
}

#[test]
fn t2_flags_minting_and_unwrapping_but_not_vlba_entry() {
    // `Plba(..)` (line 4) and `vlba.0` (line 8) fire; minting a *virtual*
    // address (line 12) is a guest entry point and stays clean; the
    // justified directive (line 15) suppresses the wire unwrap (line 17).
    assert_eq!(
        lint_fixture("t2_newtype_unwrap.rs"),
        vec![(4, Rule::T2), (8, Rule::T2)]
    );
}

#[test]
fn t3_flags_block_byte_mixing_both_orders() {
    // `lba.0 * BLOCK_SIZE` (line 4) is both an unwrap (T2) and an
    // open-coded conversion (T3) — two reports on one line. Both operand
    // orders fire (lines 9, 14); `n * BLOCK_SIZE` on a non-LBA name
    // (line 18) stays clean.
    assert_eq!(
        lint_fixture("t3_byte_block_mixing.rs"),
        vec![(4, Rule::T2), (4, Rule::T3), (9, Rule::T3), (14, Rule::T3),]
    );
}

#[test]
fn directives_cover_impl_blocks_and_multiline_signatures() {
    // One directive above `impl Wire` (line 4) suppresses the unwraps on
    // lines 7 and 10; one above the multi-line `replay` signature
    // (line 14) suppresses the T1s on its parameter lines 16-17. Both
    // count as used (no A3). Only the uncovered unwrap (line 23) remains.
    assert_eq!(lint_fixture("suppressions_items.rs"), vec![(23, Rule::T2)]);
}

#[test]
fn json_escaping_is_safe() {
    // The JSON emitter lives in the binary; this pins the library-side
    // contract it depends on: suppressed diagnostics are present in
    // `lint_source_all` output and flagged.
    let src = "// nesc-lint::allow(T2): demo.\npub fn wire(slba: Vlba) -> u64 { slba.0 }\n";
    let all = nesc_lint::lint_source_all(&LintContext::strict("x.rs"), src);
    assert_eq!(all.len(), 1);
    assert!(all[0].suppressed);
    assert!(lint_source(&LintContext::strict("x.rs"), src).is_empty());
}

#[test]
fn diagnostics_render_path_line_rule_and_hint() {
    let src = "use std::time::SystemTime;\n";
    let diags = lint_source(&LintContext::strict("x.rs"), src);
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("x.rs:1: [D1]") && rendered.contains("(fix:"),
        "unexpected rendering: {rendered}"
    );
}

/// Lints a fixture *set* through the whole-workspace pipeline, so the
/// call-graph rules (P1/P3) run. Suppressed diagnostics are dropped, as
/// the exit-code path does.
fn lint_fixture_set(names: &[&str]) -> Vec<(String, u32, Rule)> {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let files: Vec<_> = names
        .iter()
        .map(|n| {
            let src =
                std::fs::read_to_string(base.join(n)).unwrap_or_else(|e| panic!("read {n}: {e}"));
            (LintContext::strict(n), src)
        })
        .collect();
    nesc_lint::lint_files_all(&files)
        .diagnostics
        .into_iter()
        .filter(|d| !d.suppressed)
        .map(|d| (d.path, d.line, d.rule))
        .collect()
}

#[test]
fn p1_flags_reachable_panic_sites_only() {
    // The entry's own unwrap (line 4) and the transitively reached
    // helper's assert!/panic! (lines 9, 11) fire; the debug_assert!
    // (line 13) is a legal pure invariant; the justified directive
    // (line 18) suppresses sidecar's expect (line 19) without going
    // stale; off_path's expect (line 23) is unreachable and stays clean.
    let p = "p1/data_path.rs".to_string();
    assert_eq!(
        lint_fixture_set(&["p1/data_path.rs"]),
        vec![
            (p.clone(), 4, Rule::P1),
            (p.clone(), 9, Rule::P1),
            (p, 11, Rule::P1)
        ]
    );
}

#[test]
fn p1_reachability_counts_only_the_connected_component() {
    // process_vf_request -> helper -> sidecar are on the data path;
    // off_path is defined but never called from it.
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(base.join("p1/data_path.rs")).expect("fixture");
    let report = nesc_lint::lint_files_all(&[(LintContext::strict("p1/data_path.rs"), src)]);
    assert_eq!(report.reachable_functions, 3);
}

#[test]
fn p2_flags_hot_region_indexing_only() {
    // Direct indexing and range-slicing inside `fold`'s hot region
    // (lines 5-7) fire; the identical indexing in the unmarked `cold`
    // (line 11) stays clean.
    let p = "p2/hot_index.rs".to_string();
    assert_eq!(
        lint_fixture_set(&["p2/hot_index.rs"]),
        vec![
            (p.clone(), 5, Rule::P2),
            (p.clone(), 6, Rule::P2),
            (p, 7, Rule::P2)
        ]
    );
}

#[test]
fn p3_flags_stringly_errors_on_reachable_public_api() {
    // `Result<_, String>` (line 10), `Result<_, ()>` (line 14), and the
    // opaque `try_* -> Option` (line 22) fire; the typed-error `total`
    // (line 26) stays clean.
    let p = "p3/stringly.rs".to_string();
    assert_eq!(
        lint_fixture_set(&["p3/stringly.rs"]),
        vec![
            (p.clone(), 10, Rule::P3),
            (p.clone(), 14, Rule::P3),
            (p, 22, Rule::P3)
        ]
    );
}

#[test]
fn g1_flags_raw_values_on_marked_decode_surfaces() {
    // The marked struct's raw integer (line 10) and bare Vlba (line 11)
    // fire; the HostAddr field (line 12) is exempt; the marked fn's raw
    // return (line 16) fires. `slba: Vlba` is not a T1 (not `u64`).
    assert_eq!(
        lint_fixture("g1/raw_decode.rs"),
        vec![(10, Rule::G1), (11, Rule::G1), (16, Rule::G1)]
    );
}

#[test]
fn g1_accepts_quarantined_decode_surfaces() {
    assert_eq!(lint_fixture("g1/wrapped_ok.rs"), vec![]);
}

#[test]
fn g2_flags_unjustified_quarantine_escapes() {
    // The bare escape (line 8) fires; the justified directive (line 11)
    // suppresses its escape (line 13) without going stale; the dead
    // directive (line 16) earns an A3.
    assert_eq!(
        lint_fixture("g2/unwrap_escape.rs"),
        vec![(8, Rule::G2), (16, Rule::A3)]
    );
}

#[test]
fn g3_reports_the_full_multi_hop_taint_chain() {
    // `consume`'s unwrap (line 24, G2 in a non-boundary context) and DMA
    // sink (line 25) fire — the G3 message must carry the whole
    // pump → advance → consume chain; the signature-tainted indexing
    // (line 29) and ring-arithmetic (line 33) sinks fire standalone.
    let p = "g3/multi_hop.rs".to_string();
    assert_eq!(
        lint_fixture_set(&["g3/multi_hop.rs"]),
        vec![
            (p.clone(), 24, Rule::G2),
            (p.clone(), 25, Rule::G3),
            (p.clone(), 29, Rule::G3),
            (p, 33, Rule::G3),
        ]
    );
}

#[test]
fn g3_chain_rendering_names_every_hop() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(base.join("g3/multi_hop.rs")).expect("fixture");
    let report = nesc_lint::lint_files_all(&[(LintContext::strict("g3/multi_hop.rs"), src)]);
    let g3 = report
        .diagnostics
        .iter()
        .find(|d| d.rule == Rule::G3 && d.line == 25)
        .expect("the dma_read sink");
    assert!(
        g3.message.contains("pump → advance → consume"),
        "chain missing from: {}",
        g3.message
    );
}

#[test]
fn g3_accepts_a_validator_on_the_path() {
    // The validate_tail call between the guest-input source and the DMA
    // sink clears the taint; the validator's own unwrap is justified.
    assert_eq!(lint_fixture_set(&["g3/validated_ok.rs"]), vec![]);
}

#[test]
fn unresolved_method_calls_are_counted_not_dropped() {
    // The p1 fixture's method calls (`x.unwrap()`, `v.checked_add(1)`,
    // two `.expect(..)`s) resolve to no harvested fn, so the graph must
    // *count* them instead of silently dropping the edges. Exact pin:
    // growth here means the conservative analysis got blinder and
    // someone should look.
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let src = std::fs::read_to_string(base.join("p1/data_path.rs")).expect("fixture");
    let report = nesc_lint::lint_files_all(&[(LintContext::strict("p1/data_path.rs"), src)]);
    assert_eq!(report.unresolved_calls, 4);
}

#[test]
fn l1_flags_upward_imports_and_inline_paths() {
    // The strict context places the file in `nesc_sim`, the bottom layer
    // with no dependencies: both `use` imports (lines 3-4) and the
    // inline `nesc_hypervisor::` path (line 7) violate the DAG.
    assert_eq!(
        lint_fixture("l1/upward.rs"),
        vec![(3, Rule::L1), (4, Rule::L1), (7, Rule::L1)]
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = nesc_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("enclosing workspace");
    let diags = nesc_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "workspace must stay lint-clean; violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
