//! The conservative workspace call graph behind the panic-freedom rules.
//!
//! The P rules ("no panics on the data path") are *reachability* rules:
//! whether an `unwrap()` is a bug depends on whether the function holding
//! it can execute during request service. A per-file token pass cannot
//! answer that, so this module builds a whole-workspace call graph from
//! the same token scans the other rules use:
//!
//! 1. **Harvest** — [`crate::parser::parse_fns`] extracts every function
//!    definition (any visibility, free or in `impl`/`trait` blocks) with
//!    its body token range and enclosing `impl` type.
//! 2. **Collect** — each body is scanned for call-site shapes: free calls
//!    (`foo(`), method calls (`.foo(`), and path/UFCS calls
//!    (`Type::foo(`, `module::foo(`, `Self::foo(`).
//! 3. **Resolve** — names resolve *conservatively*, over-approximating on
//!    ambiguity (see the table below). A call may gain edges to functions
//!    it can never reach at runtime; it never silently loses one the
//!    scanner can see.
//! 4. **Reach** — BFS from the data-path entry points
//!    ([`ENTRY_POINTS`]): `System::run_open_loop`, `process_vf_request`,
//!    the device completion loop (`NescDevice::advance_into`), and
//!    `Scenario::run`.
//!
//! # The conservatism contract
//!
//! | call shape | resolves to |
//! |------------|-------------|
//! | `.foo(...)` | **every** workspace function named `foo` — method, trait default, or free. Trait objects (`dyn Workload`) therefore fall back to all impls of the method name. |
//! | `foo(...)` | every *free* function named `foo` (no enclosing `impl`) |
//! | `Self::foo(` | `foo` in the caller's own `impl` type |
//! | `Type::foo(` | `foo` in `impl Type` blocks, if `Type` is a workspace `impl` type; an unknown capitalized qualifier (`Vec`, `String`) contributes **no** edge |
//! | `module::foo(` | lowercase qualifier → every free function named `foo` |
//! | `<T as Trait>::foo(` | every workspace function named `foo` |
//!
//! Method calls whose name matches no workspace function (`.push(` on a
//! std `Vec`, `.unwrap(` on an `Option`) resolve to the empty target set
//! and are *dropped* — but counted: [`Graph::unresolved_calls`] surfaces
//! the drop count in `--format json`, so a growing blind spot is visible
//! instead of silent.
//!
//! Guaranteed false-negative shapes (documented, accepted): calls made
//! through operator overloads (`Add`, `Index`, `Deref`) and through
//! function pointers/closures passed as values are invisible to a token
//! scanner — there is no call-site *name* to resolve. The workspace keeps
//! arithmetic `impl`s panic-free by convention (they are pure integer
//! math), and the entry points' callback parameters are driven by
//! workspace code that is itself on the reachable set.
//!
//! Known false-positive shape: name collisions. A data-path call to
//! `.push(...)` reaches *every* workspace `fn push`, including ones on
//! types the caller never holds. That is the price of never missing a
//! trait-object dispatch; colliding functions must simply also be
//! panic-free (which the refactor this rule forced made true).
//!
//! Functions inside `#[cfg(test)]` regions, `tests/` trees, and the
//! tooling/harness crates (`nesc-lint` itself, `bench`, `examples/`) are
//! not graph nodes: they sit *above* the entry points and drive the data
//! path, never the reverse.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Scan, Tok, TokKind};
use crate::parser::{parse_fns, FnDef};
use crate::rules::{in_regions, test_regions, Diagnostic, LintContext, Rule};

/// The data-path entry points: `(impl type, fn name)`. `None` matches any
/// enclosing type (or a free function), so a scratch file defining a bare
/// `fn process_vf_request` still arms the analyzer — `scripts/check.sh`
/// relies on that for its injection self-test.
pub const ENTRY_POINTS: &[(Option<&str>, &str)] = &[
    (Some("System"), "run_open_loop"),
    (None, "process_vf_request"),
    (Some("NescDevice"), "advance_into"),
    (Some("Scenario"), "run"),
];

/// Keywords that can directly precede `(` without being a call.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "else"
            | "unsafe"
            | "box"
            | "dyn"
            | "where"
            | "impl"
            | "fn"
            | "let"
            | "use"
            | "pub"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "self"
            | "Self"
    )
}

/// Macros that abort instead of returning an error (P1). `debug_assert*`
/// is deliberately absent: pure invariants may keep debug-build teeth.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// One call-graph node.
pub(crate) struct Node {
    /// Index into the `files` slice.
    pub(crate) file: usize,
    /// The function definition this node stands for.
    pub(crate) def: FnDef,
}

impl Node {
    /// Display name: `Type::fn` or `fn`.
    pub(crate) fn label(&self) -> String {
        match &self.def.impl_type {
            Some(t) => format!("{t}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// Whether this file contributes graph nodes at all. Harness and tooling
/// code lives above the entry points; integration tests are exempt by
/// design (`test_file`).
fn in_graph(ctx: &LintContext) -> bool {
    !ctx.test_file
        && !ctx.path.starts_with("crates/nesc-lint/")
        && !ctx.path.starts_with("crates/bench/")
        && !ctx.path.starts_with("examples/")
}

/// The conservative whole-workspace call graph, built once per file set
/// and shared by the panic-freedom pass ([`check`]) and the guest-taint
/// pass ([`crate::guest::check_graph`]).
pub(crate) struct Graph {
    /// All harvested function definitions.
    pub(crate) nodes: Vec<Node>,
    /// Caller → callee adjacency, parallel to `nodes`.
    pub(crate) edges: Vec<BTreeSet<usize>>,
    /// Per-file node body ranges `(open, close, node)` for nested-fn
    /// skipping, parallel to the `files` slice the graph was built from.
    pub(crate) file_bodies: Vec<Vec<(usize, usize, usize)>>,
    /// Method-shape call sites (`.foo(`) whose name matches no workspace
    /// function — the calls the resolver *silently drops*. Published in
    /// `--format json` so the graph's conservatism stays auditable: a
    /// jump in this count means new code is invisible to P1/P3/G3.
    pub(crate) unresolved_calls: usize,
    by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    by_impl: BTreeMap<(String, String), Vec<usize>>,
    impl_types: BTreeSet<String>,
}

impl Graph {
    /// Harvests nodes, builds the name-resolution indexes, and collects
    /// the edge set (counting dropped method calls along the way).
    pub(crate) fn build(files: &[(LintContext, Scan)]) -> Graph {
        // ---- Harvest nodes. ----
        let mut nodes: Vec<Node> = Vec::new();
        for (fi, (ctx, scan)) in files.iter().enumerate() {
            if !in_graph(ctx) {
                continue;
            }
            let tests = test_regions(&scan.tokens);
            for def in parse_fns(scan) {
                if in_regions(&tests, def.line) {
                    continue; // test helpers are not data-path nodes
                }
                nodes.push(Node { file: fi, def });
            }
        }

        // ---- Name-resolution indexes. ----
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_impl: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut impl_types: BTreeSet<String> = BTreeSet::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.def.name.clone()).or_default().push(i);
            match &n.def.impl_type {
                Some(t) => {
                    by_impl
                        .entry((t.clone(), n.def.name.clone()))
                        .or_default()
                        .push(i);
                    impl_types.insert(t.clone());
                }
                None => free_by_name.entry(n.def.name.clone()).or_default().push(i),
            }
        }

        // Per-file list of node body ranges, for nested-fn skipping.
        let mut file_bodies: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); files.len()];
        for (i, n) in nodes.iter().enumerate() {
            if let Some((b, e)) = n.def.body {
                file_bodies[n.file].push((b, e, i));
            }
        }

        let mut g = Graph {
            edges: vec![BTreeSet::new(); nodes.len()],
            nodes,
            file_bodies,
            unresolved_calls: 0,
            by_name,
            free_by_name,
            by_impl,
            impl_types,
        };

        // ---- Collect edges. ----
        let mut edges = std::mem::take(&mut g.edges);
        for (i, n) in g.nodes.iter().enumerate() {
            let Some((b, e)) = n.def.body else { continue };
            let t = &files[n.file].1.tokens;
            let nested = g.nested_ranges(i);
            let mut idx = b + 1;
            while idx < e {
                if let Some(&(_, ne)) = nested.iter().find(|&&(nb, _)| nb == idx) {
                    idx = ne + 1; // a nested fn's calls belong to that fn
                    continue;
                }
                if let Some(targets) = g.resolve_call(t, idx, n) {
                    if targets.is_empty()
                        && matches!(
                            idx.checked_sub(1).map(|p| &t[p].kind),
                            Some(TokKind::Punct('.'))
                        )
                    {
                        // A method call whose name matches nothing in the
                        // workspace: dropped, but no longer silently.
                        g.unresolved_calls += 1;
                    }
                    edges[i].extend(targets);
                }
                idx += 1;
            }
        }
        g.edges = edges;
        g
    }

    /// Body ranges of other nodes nested inside node `i`'s body.
    pub(crate) fn nested_ranges(&self, i: usize) -> Vec<(usize, usize)> {
        let Some((b, e)) = self.nodes[i].def.body else {
            return Vec::new();
        };
        self.file_bodies[self.nodes[i].file]
            .iter()
            .filter(|&&(nb, ne, ni)| ni != i && nb > b && ne < e)
            .map(|&(nb, ne, _)| (nb, ne))
            .collect()
    }

    /// If tokens at `idx` form a call site, returns its resolved targets.
    pub(crate) fn resolve_call(&self, t: &[Tok], idx: usize, caller: &Node) -> Option<Vec<usize>> {
        let TokKind::Ident(name) = &t[idx].kind else {
            return None;
        };
        if is_keyword(name) {
            return None;
        }
        if !matches!(t.get(idx + 1).map(|x| &x.kind), Some(TokKind::Punct('('))) {
            return None;
        }
        let prev = idx.checked_sub(1).map(|p| &t[p].kind);
        match prev {
            // `.foo(` — method call: every workspace fn named foo (trait
            // objects resolve to all impls of the name).
            Some(TokKind::Punct('.')) => {
                Some(self.by_name.get(name.as_str()).cloned().unwrap_or_default())
            }
            // `fn foo(` — a definition, not a call.
            Some(TokKind::Ident(k)) if k == "fn" => None,
            // `A::foo(` — path-qualified call.
            Some(TokKind::Punct(':'))
                if idx >= 2 && matches!(t[idx - 2].kind, TokKind::Punct(':')) =>
            {
                match idx.checked_sub(3).map(|q| &t[q].kind) {
                    Some(TokKind::Ident(q)) if q == "Self" => {
                        let ty = caller.def.impl_type.as_deref()?;
                        Some(
                            self.by_impl
                                .get(&(ty.to_string(), name.clone()))
                                .cloned()
                                .unwrap_or_default(),
                        )
                    }
                    Some(TokKind::Ident(q)) if self.impl_types.contains(q.as_str()) => Some(
                        self.by_impl
                            .get(&(q.clone(), name.clone()))
                            .cloned()
                            .unwrap_or_default(),
                    ),
                    // Unknown capitalized qualifier: an external type
                    // (`Vec::new`) — no workspace edge.
                    Some(TokKind::Ident(q)) if q.chars().next().is_some_and(char::is_uppercase) => {
                        Some(Vec::new())
                    }
                    // Lowercase qualifier: a module path — free functions.
                    Some(TokKind::Ident(_)) => Some(
                        self.free_by_name
                            .get(name.as_str())
                            .cloned()
                            .unwrap_or_default(),
                    ),
                    // `<T as Trait>::foo(` and turbofish tails: conservative.
                    _ => Some(self.by_name.get(name.as_str()).cloned().unwrap_or_default()),
                }
            }
            // `foo(` — free call.
            _ => Some(
                self.free_by_name
                    .get(name.as_str())
                    .cloned()
                    .unwrap_or_default(),
            ),
        }
    }
}

/// The whole-workspace panic-freedom pass over a prebuilt [`Graph`].
/// `files` and `raw` are parallel; P1/P3 diagnostics are appended to the
/// offending file's raw bucket (pre-suppression, so `allow(P1)` directives
/// apply to them and count as used). Returns the number of reachable
/// functions.
pub(crate) fn check(
    graph: &Graph,
    files: &[(LintContext, Scan)],
    raw: &mut [Vec<Diagnostic>],
) -> usize {
    let nodes = &graph.nodes;

    // ---- Reach: BFS from the entry points, tracking one parent each. ----
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut reached: Vec<bool> = vec![false; nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        let is_entry = ENTRY_POINTS.iter().any(|(ty, name)| {
            n.def.name == *name && ty.is_none_or(|t| n.def.impl_type.as_deref() == Some(t))
        });
        if is_entry && !reached[i] {
            reached[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &graph.edges[i] {
            if !reached[j] {
                reached[j] = true;
                parent[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    let reachable = reached.iter().filter(|&&r| r).count();

    // ---- P1/P3 on the reachable set. ----
    for (i, n) in nodes.iter().enumerate() {
        if !reached[i] {
            continue;
        }
        let chain = render_chain(nodes, &parent, i);
        let (ctx, scan) = &files[n.file];
        if let Some((b, e)) = n.def.body {
            let t = &scan.tokens;
            let nested = graph.nested_ranges(i);
            let mut idx = b + 1;
            while idx < e {
                if let Some(&(_, ne)) = nested.iter().find(|&&(nb, _)| nb == idx) {
                    idx = ne + 1;
                    continue;
                }
                if let Some(what) = panic_site(t, idx) {
                    raw[n.file].push(Diagnostic {
                        path: ctx.path.clone(),
                        line: t[idx].line,
                        rule: Rule::P1,
                        message: format!("`{what}` on the data path ({chain})"),
                        hint: "return the crate's typed error (debug_assert! for pure invariants); the data path must degrade, not die",
                        suppressed: false,
                    });
                }
                idx += 1;
            }
        }
        // P3: stringly / unit errors on reachable public API.
        if n.def.is_pub {
            let ret = n.def.ret.as_str();
            let stringly = ret.starts_with("Result<")
                && (ret.ends_with(",String>") || ret.ends_with(",()>") || ret.ends_with(",&str>"));
            let opaque_option = n.def.name.starts_with("try_") && ret.starts_with("Option<");
            if stringly || opaque_option {
                raw[n.file].push(Diagnostic {
                    path: ctx.path.clone(),
                    line: n.def.line,
                    rule: Rule::P3,
                    message: format!(
                        "data-path `pub fn {}` returns `{ret}` ({chain})",
                        n.def.name
                    ),
                    hint: "return the crate's typed error enum so callers can route failures",
                    suppressed: false,
                });
            }
        }
    }
    reachable
}

/// If tokens at `idx` are a P1 panic site, returns its rendering.
fn panic_site(t: &[Tok], idx: usize) -> Option<String> {
    let TokKind::Ident(name) = &t[idx].kind else {
        return None;
    };
    let next =
        |k: usize, c: char| matches!(t.get(k).map(|x| &x.kind), Some(TokKind::Punct(p)) if *p == c);
    match name.as_str() {
        "unwrap" | "expect"
            if idx > 0 && matches!(t[idx - 1].kind, TokKind::Punct('.')) && next(idx + 1, '(') =>
        {
            Some(format!(".{name}()"))
        }
        m if PANIC_MACROS.contains(&m) && next(idx + 1, '!') => Some(format!("{m}!")),
        _ => None,
    }
}

/// Renders the BFS ancestry `entry → … → node`, eliding long middles.
pub(crate) fn render_chain(nodes: &[Node], parent: &[Option<usize>], mut i: usize) -> String {
    let mut labels = vec![nodes[i].label()];
    while let Some(p) = parent[i] {
        labels.push(nodes[p].label());
        i = p;
    }
    labels.reverse();
    let rendered: Vec<String> = if labels.len() > 6 {
        let tail = labels.len() - 2;
        labels[..3]
            .iter()
            .cloned()
            .chain(std::iter::once("…".to_string()))
            .chain(labels[tail..].iter().cloned())
            .collect()
    } else {
        labels
    };
    if rendered.len() == 1 {
        format!("entry point {}", rendered[0])
    } else {
        format!("reachable via {}", rendered.join(" → "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn graph_diags(srcs: &[(&str, &str)]) -> (Vec<(String, u32, Rule)>, usize) {
        let files: Vec<(LintContext, Scan)> = srcs
            .iter()
            .map(|(path, src)| {
                let mut ctx = LintContext::strict(path);
                ctx.test_file = false;
                (ctx, scan(src))
            })
            .collect();
        let mut raw: Vec<Vec<Diagnostic>> = vec![Vec::new(); files.len()];
        let graph = Graph::build(&files);
        let reachable = check(&graph, &files, &mut raw);
        let mut out: Vec<(String, u32, Rule)> = raw
            .into_iter()
            .flatten()
            .map(|d| (d.path, d.line, d.rule))
            .collect();
        out.sort();
        (out, reachable)
    }

    #[test]
    fn direct_call_chain_is_reachable() {
        let (diags, reachable) = graph_diags(&[(
            "a.rs",
            "pub fn process_vf_request(x: Option<u32>) -> u32 {\n    helper(x)\n}\nfn helper(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )]);
        assert_eq!(reachable, 2);
        assert_eq!(diags, vec![("a.rs".to_string(), 5, Rule::P1)]);
    }

    #[test]
    fn method_call_resolves_across_files() {
        let (diags, reachable) = graph_diags(&[
            (
                "a.rs",
                "impl Scenario {\n    pub fn run(&self, q: Queue) {\n        q.pop();\n    }\n}\n",
            ),
            (
                "b.rs",
                "impl Queue {\n    pub fn pop(&mut self) -> u64 {\n        self.items.pop_front().expect(\"non-empty\")\n    }\n}\n",
            ),
        ]);
        assert_eq!(reachable, 2);
        assert_eq!(diags, vec![("b.rs".to_string(), 3, Rule::P1)]);
    }

    #[test]
    fn trait_object_method_falls_back_to_every_impl() {
        // `.generate(` on a `dyn Workload` must reach every impl of the
        // name — both Oltp and Postmark, even though only one is held.
        let (diags, reachable) = graph_diags(&[(
            "w.rs",
            "impl Scenario {\n    pub fn run(&self, w: &mut dyn Workload) {\n        w.generate();\n    }\n}\nimpl Oltp {\n    fn generate(&mut self) {\n        panic!(\"oltp\");\n    }\n}\nimpl Postmark {\n    fn generate(&mut self) {\n        let _ = self.sizes.first().unwrap();\n    }\n}\n",
        )]);
        assert_eq!(reachable, 3);
        assert_eq!(
            diags,
            vec![
                ("w.rs".to_string(), 8, Rule::P1),
                ("w.rs".to_string(), 13, Rule::P1)
            ]
        );
    }

    #[test]
    fn unreachable_function_is_not_flagged() {
        let (diags, reachable) = graph_diags(&[(
            "a.rs",
            "pub fn process_vf_request(x: u32) -> u32 {\n    x + 1\n}\npub fn cold_debug_dump(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
        )]);
        assert_eq!(reachable, 1);
        assert!(
            diags.is_empty(),
            "unreachable unwrap must stay silent: {diags:?}"
        );
    }

    #[test]
    fn test_regions_and_harness_files_contribute_no_nodes() {
        let (diags, reachable) = graph_diags(&[(
            "a.rs",
            "pub fn process_vf_request(x: u32) -> u32 {\n    x\n}\n#[cfg(test)]\nmod tests {\n    fn process_vf_request(x: Option<u32>) -> u32 {\n        x.unwrap()\n    }\n}\n",
        )]);
        assert_eq!(reachable, 1);
        assert!(diags.is_empty());
    }

    #[test]
    fn p3_flags_stringly_results_on_reachable_pub_fns() {
        let (diags, _) = graph_diags(&[(
            "a.rs",
            "pub fn process_vf_request(x: u32) -> Result<u32, String> {\n    inner(x)\n}\nfn inner(x: u32) -> Result<u32, String> {\n    Ok(x)\n}\npub fn try_lookup(x: u32) -> Option<u32> {\n    Some(x)\n}\n",
        )]);
        // Only the two *pub* fns fire; `inner` is private, `try_lookup`
        // is unreachable (nothing calls it) — wait, nothing calls it, so
        // it must not fire either.
        assert_eq!(diags, vec![("a.rs".to_string(), 1, Rule::P3)]);
    }

    #[test]
    fn self_and_type_qualified_calls_resolve() {
        let (diags, reachable) = graph_diags(&[(
            "a.rs",
            "impl System {\n    pub fn run_open_loop(&mut self) {\n        Self::step();\n        Wheel::advance_all();\n    }\n    fn step() {\n        todo!()\n    }\n}\nimpl Wheel {\n    fn advance_all() {\n        unreachable!()\n    }\n}\nimpl Other {\n    fn step() {\n        panic!()\n    }\n}\n",
        )]);
        // Other::step shares a name but `Self::step` pins System.
        assert_eq!(reachable, 3);
        assert_eq!(
            diags,
            vec![
                ("a.rs".to_string(), 7, Rule::P1),
                ("a.rs".to_string(), 12, Rule::P1)
            ]
        );
    }
}
