//! A minimal Rust token scanner.
//!
//! The lint rules only need a line-accurate token stream with comments,
//! strings and character literals correctly skipped — not name resolution
//! or type inference. This scanner produces exactly that: identifiers,
//! single-character punctuation, numeric literals (classified integer vs
//! float, because rule D4 bans float literals in scheduling code), and the
//! comments themselves (rule suppressions live in comments).
//!
//! Handled Rust lexical subtleties:
//!
//! * line (`//`, `///`, `//!`) and nested block (`/* /* */ */`) comments;
//! * string, byte-string and raw-string literals (`r#"..."#` and
//!   `br#"..."#` with any number of hashes), with escape sequences;
//! * raw identifiers (`r#async`), which are *not* raw strings and lex as
//!   a single identifier keeping the `r#` prefix;
//! * character literals vs lifetimes (`'a'` vs `'a`);
//! * numeric literals with prefixes (`0x`, `0o`, `0b`), underscores,
//!   exponents (`1e9`) and type suffixes — `1.5`, `1e3` and `2f64` are
//!   floats, `0xE3` and `1..2` are not.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// One punctuation character (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// An integer literal.
    Int,
    /// A floating-point literal.
    Float,
    /// A string, byte-string or raw-string literal (contents opaque).
    Str,
    /// A character literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token itself.
    pub kind: TokKind,
}

/// One comment with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    /// Suppression directives are only honored in plain comments, so
    /// documentation *showing* the directive syntax never suppresses.
    pub doc: bool,
}

/// The scanner's output: tokens plus comments, both in source order.
#[derive(Debug, Default)]
pub struct Scan {
    /// All non-comment tokens.
    pub tokens: Vec<Tok>,
    /// All comments (line and block), one entry per comment.
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Malformed input (unterminated strings/comments) does
/// not panic — the scanner consumes to end-of-file, which is the right
/// degradation for a linter.
pub fn scan(src: &str) -> Scan {
    let b = src.as_bytes();
    let mut out = Scan::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances `i` over `n` bytes, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            let end = (i + $n).min(b.len());
            for &c in &b[i..end] {
                if c == b'\n' {
                    line += 1;
                }
            }
            i = end;
        }};
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' | b'\r' | b' ' | b'\t' => bump!(1),
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start_line = line;
                let mut j = i + 2;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                let doc = matches!(b.get(i + 2), Some(b'/') | Some(b'!'));
                let text = src[i + 2..j].trim_start_matches(['/', '!']).trim();
                out.comments.push(Comment {
                    line: start_line,
                    text: text.to_string(),
                    doc,
                });
                bump!(j - i);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if j + 1 < b.len() && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < b.len() && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let inner_end = j.saturating_sub(2).max(i + 2);
                let doc = matches!(b.get(i + 2), Some(b'*') | Some(b'!'));
                let text = src[i + 2..inner_end].trim_start_matches(['*', '!']).trim();
                out.comments.push(Comment {
                    line: start_line,
                    text: text.to_string(),
                    doc,
                });
                bump!(j - i);
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let start_line = line;
                let j = skip_raw_string(b, i);
                out.tokens.push(Tok {
                    line: start_line,
                    kind: TokKind::Str,
                });
                bump!(j - i);
            }
            b'r' if i + 2 < b.len()
                && b[i + 1] == b'#'
                && (b[i + 2] == b'_' || b[i + 2].is_ascii_alphabetic()) =>
            {
                // Raw identifier (`r#async`). Lexed as ONE identifier that
                // keeps the `r#` prefix, so name-matching rules see
                // `r#Instant`, not a bare `Instant`.
                let mut j = i + 2;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Ident(src[i..j].to_string()),
                });
                bump!(j - i);
            }
            b'"' => {
                let start_line = line;
                let j = skip_string(b, i);
                out.tokens.push(Tok {
                    line: start_line,
                    kind: TokKind::Str,
                });
                bump!(j - i);
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let start_line = line;
                let j = skip_string(b, i + 1);
                out.tokens.push(Tok {
                    line: start_line,
                    kind: TokKind::Str,
                });
                bump!(j - i);
            }
            b'\'' => {
                // Lifetime or char literal. `'a` / `'static` followed by
                // anything but a closing quote is a lifetime.
                let start_line = line;
                let (j, kind) = skip_quote(b, i);
                out.tokens.push(Tok {
                    line: start_line,
                    kind,
                });
                bump!(j - i);
            }
            _ if c.is_ascii_digit() => {
                let start_line = line;
                let (j, float) = skip_number(b, i);
                out.tokens.push(Tok {
                    line: start_line,
                    kind: if float { TokKind::Float } else { TokKind::Int },
                });
                bump!(j - i);
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Ident(src[i..j].to_string()),
                });
                bump!(j - i);
            }
            _ => {
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Punct(c as char),
                });
                bump!(1);
            }
        }
    }
    out
}

/// Whether `b[i..]` starts a raw (byte) string: `r"`, `br"`, or the same
/// with any number of hashes before the quote (`r#"`, `br##"`).
///
/// The quote after the hashes is mandatory: `r#SystemTime` is a *raw
/// identifier*, not a raw string, and treating it as one used to swallow
/// the `r#` and then report the remaining identifier as a phantom rule
/// hit.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let rest = &b[i..];
    let after_prefix = if rest.starts_with(b"br") {
        2
    } else if rest.starts_with(b"r") {
        1
    } else {
        return false;
    };
    let mut j = after_prefix;
    while j < rest.len() && rest[j] == b'#' {
        j += 1;
    }
    matches!(rest.get(j), Some(b'"'))
}

/// Skips a raw string starting at `i`; returns the index past it.
fn skip_raw_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return j; // not actually a raw string; treat prefix as consumed
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Skips a `"..."` string starting at the quote; returns the index past it.
fn skip_string(b: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) starting at the quote.
fn skip_quote(b: &[u8], i: usize) -> (usize, TokKind) {
    let mut j = i + 1;
    if j < b.len() && b[j] == b'\\' {
        // Escaped char literal: consume escape then closing quote.
        j += 2;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(b.len()), TokKind::Char);
    }
    // Identifier-shaped content: lifetime unless a quote follows one char.
    let mut k = j;
    while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
        k += 1;
    }
    if k < b.len() && b[k] == b'\'' && k > j {
        // 'x' — single char in quotes (multi-char would be invalid Rust,
        // but a linter need not reject it).
        (k + 1, TokKind::Char)
    } else if k > j {
        (k, TokKind::Lifetime)
    } else if j < b.len() && b[j] != b'\'' {
        // Some other single char like '.' followed by a quote.
        let mut m = j + 1;
        if m < b.len() && b[m] == b'\'' {
            m += 1;
        }
        (m, TokKind::Char)
    } else {
        (j + 1, TokKind::Char)
    }
}

/// Skips a numeric literal at `i`; returns `(end, is_float)`.
fn skip_number(b: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut float = false;
    let hex_or_bin = j + 1 < b.len()
        && b[j] == b'0'
        && matches!(b[j + 1], b'x' | b'X' | b'o' | b'O' | b'b' | b'B');
    if hex_or_bin {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, false);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part — but `1..2` is a range, not a float.
    if j + 1 < b.len() && b[j] == b'.' && b[j + 1].is_ascii_digit() {
        float = true;
        j += 1;
        while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
    } else if j < b.len()
        && b[j] == b'.'
        && (j + 1 >= b.len() || (b[j + 1] != b'.' && !b[j + 1].is_ascii_alphabetic()))
    {
        // Trailing-dot float like `1.` (not `1..` or `1.method()`).
        float = true;
        j += 1;
    }
    // Exponent: `1e9`, `2.5E-3`.
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix: `1f64` / `1.0f32` are floats; `1u64` is not.
    if b[j..].starts_with(b"f32") || b[j..].starts_with(b"f64") {
        float = true;
        j += 3;
    } else {
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
    }
    (j, float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let s = scan(r##"let x = "Instant::now"; // Instant::now in a comment"##);
        assert!(idents(r##"let x = "Instant::now";"##) == vec!["let", "x"]);
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("Instant::now"));
    }

    #[test]
    fn raw_strings_skip_contents() {
        let got = idents(r###"let x = r#"HashMap::new()"#; after"###);
        assert_eq!(got, vec!["let", "x", "after"]);
    }

    #[test]
    fn nested_block_comments() {
        let s = scan("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(
            idents("/* outer /* inner */ still */ fn f() {}"),
            vec!["fn", "f"]
        );
        assert_eq!(s.comments.len(), 1);
    }

    #[test]
    fn float_classification() {
        let kinds: Vec<TokKind> = scan("1.5 1e3 2f64 0xE3 17 1..2")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Float,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Punct('.'),
                TokKind::Punct('.'),
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let kinds: Vec<TokKind> = scan("'a 'x' '\\n'")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, vec![TokKind::Lifetime, TokKind::Char, TokKind::Char]);
    }

    #[test]
    fn byte_strings_are_opaque() {
        // Identifier-looking contents of a byte string must not leak into
        // the token stream as identifiers.
        let got = idents(r##"let x = b"Instant::now() lba"; after"##);
        assert_eq!(got, vec!["let", "x", "after"]);
        let kinds: Vec<TokKind> = scan(r##"b"payload""##)
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, vec![TokKind::Str]);
    }

    #[test]
    fn raw_byte_strings_are_opaque() {
        let got = idents(r###"let x = br#"HashMap::new() slba: u64"#; after"###);
        assert_eq!(got, vec!["let", "x", "after"]);
        // Multiple hashes and embedded quotes.
        let got = idents("let x = br##\"inner \"# quote\"##; after");
        assert_eq!(got, vec!["let", "x", "after"]);
    }

    #[test]
    fn raw_identifiers_are_single_idents() {
        // `r#ident` is a raw identifier, not a raw string: it must lex as
        // one identifier (keeping the prefix) and must not swallow the rest
        // of the line the way a misdetected raw string would.
        let got = idents("fn r#async(r#type: u64) {} tail");
        assert_eq!(got, vec!["fn", "r#async", "r#type", "u64", "tail"]);
        // Regression: `r#` followed by a name used to be treated as a raw
        // string opener, emitting a phantom Str token and then re-lexing
        // the name bare.
        let kinds: Vec<TokKind> = scan("r#SystemTime")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds, vec![TokKind::Ident("r#SystemTime".into())]);
    }

    #[test]
    fn lines_are_tracked() {
        let s = scan("a\nb\n\nc");
        let lines: Vec<u32> = s.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
