#![warn(missing_docs)]

//! `nesc-lint` — the workspace determinism/invariant linter.
//!
//! Every number this reproduction publishes — the regenerated paper
//! figures, the byte-stable `results/golden_trace.json`, the span trees
//! that exactly partition end-to-end latency — depends on the simulator
//! being *bit-reproducible from a seed*. Runtime tests catch determinism
//! regressions only on the paths they exercise; this crate catches the
//! standard ways of breaking determinism statically, at the source level,
//! on every line of every workspace crate:
//!
//! | rule | forbids |
//! |------|---------|
//! | D1 | wall-clock reads (`Instant::now`, `SystemTime`) in simulated code |
//! | D2 | ambient randomness (`rand::`, `thread_rng`, `RandomState`, OS RNGs) |
//! | D3 | default-hasher `HashMap`/`HashSet` in simulation-state code |
//! | D4 | float types/literals in the event-timestamp/scheduling core |
//! | D5 | `Span`/`SpanId` fabricated outside the `Tracer` |
//! | D6 | raw integer literals where a sampling interval (`SimDuration`) is expected |
//! | D7 | heap-allocating calls inside `// nesc-lint: hot` regions of device-loop modules |
//! | T1 | raw `u64` LBAs in public APIs of address-carrying crates |
//! | T2 | `Plba` minted / newtype `.0` unwrapped outside boundary modules |
//! | T3 | open-coded `* BLOCK_SIZE` block↔byte conversion on LBA values |
//! | G1 | `// nesc-lint: guest-input` decode surfaces producing raw integers instead of `Untrusted<T>` |
//! | G2 | `Untrusted::into_unchecked` escapes outside boundary modules |
//! | G3 | guest-taint source→sink call-graph paths with no `validate_*` bounds proof |
//! | A1 | `#[allow(...)]` attributes without an adjacent rationale comment |
//! | A2 | suppression directives without a justification |
//! | A3 | suppression directives that suppress nothing |
//! | P1 | panic sites (`unwrap`/`expect`/`panic!`/`assert!`/…) on the reachable data path |
//! | P2 | direct slice indexing inside `// nesc-lint: hot` regions |
//! | P3 | data-path `pub fn` returning stringly/unit errors instead of a typed enum |
//! | L1 | `use nesc_*` edges off the declared crate-layering DAG |
//!
//! The T rules are the *address-provenance* family ([`provenance`]): they
//! statically enforce the NeSC isolation boundary that guest-virtual LBAs
//! are translated to physical LBAs exactly once, inside the allowlisted
//! boundary modules, and travel as `Vlba`/`Plba` newtypes everywhere
//! else.
//!
//! The G rules are the *guest-taint* family ([`guest`]), the mirror image
//! of T: values decoded *from* the guest (SQE fields, ring descriptors,
//! virtio headers, doorbells) travel as `Untrusted<T>` until a
//! `nesc_extent::validate_*` bounds proof releases them, and the call
//! graph is walked from every annotated decode surface to the
//! translation/DMA/indexing sinks to prove a validator sits on the path.
//!
//! The P rules are the *panic-freedom* family ([`callgraph`]): a
//! conservative whole-workspace call graph computes the set of functions
//! reachable from the data-path entry points (`System::run_open_loop`,
//! `process_vf_request`, the device completion loop, `Scenario::run`) and
//! forbids aborting on it — failures must travel as the per-crate typed
//! error enums (`From`-converted into `nesc_hypervisor::NescError`) so
//! injected faults degrade service instead of killing the simulation.
//! L1 pins the crate DAG those error conversions (and everything else)
//! must follow.
//!
//! Run it with `cargo run -p nesc-lint` (non-zero exit on any violation,
//! `--format json` for machine-readable output); `scripts/check.sh` gates
//! CI on it. Violations that are genuinely intended (the one wall-clock
//! harness, the reporting-only float helpers, the wire-serialization
//! unwraps) carry an inline justification the linter verifies — see
//! [`rules`] for the directive syntax.
//!
//! # Why not `syn`?
//!
//! The build environment is offline (no registry), so the checker parses
//! with an in-tree token scanner ([`lexer`]) instead of a full AST. For
//! these rules that is not a practical loss: each is a local token
//! pattern, line-accurate, with strings/comments correctly skipped. The
//! trade-off is documented per rule where it bites (e.g. D5 cannot
//! distinguish struct construction from struct *patterns*, so it is
//! conservative and suppressible).

pub mod callgraph;
pub mod guest;
pub mod lexer;
pub mod parser;
pub mod provenance;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{Diagnostic, LintContext, Rule};

/// Classifies a workspace-relative `.rs` path; `None` means the file is
/// out of scope (shims, build outputs, the linter's own bad-on-purpose
/// fixtures).
pub fn classify(rel: &Path) -> Option<LintContext> {
    let s = rel.to_string_lossy().replace('\\', "/");
    // Shims stand in for external crates (criterion needs wall-clock by
    // nature); target/ is build output; the fixture corpus is deliberately
    // violating.
    if s.starts_with("shims/") || s.starts_with("target/") || s.contains("/fixtures/") {
        return None;
    }
    if !s.ends_with(".rs") {
        return None;
    }
    // The owning crate, as its `nesc_*` import name, for the L1 layering
    // rule. Files outside `crates/` (integration tests, examples) are not
    // layered — they may drive any crate — so they get no name.
    let crate_name = s
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|dir| {
            let base = dir.strip_prefix("nesc-").unwrap_or(dir);
            format!("nesc_{}", base.replace('-', "_"))
        })
        .unwrap_or_default();
    Some(LintContext {
        path: s.clone(),
        scheduling_core: matches!(
            s.as_str(),
            "crates/sim/src/queue.rs" | "crates/sim/src/time.rs" | "crates/sim/src/sched.rs"
        ),
        trace_impl: s == "crates/sim/src/trace.rs",
        time_impl: s == "crates/sim/src/time.rs",
        // Device-loop modules: the per-request completion path whose
        // steady state must stay allocation-free (D7 hot regions). The
        // bench alloc harness proves it dynamically; D7 keeps new code
        // from regressing it between bench runs.
        device_loop: matches!(
            s.as_str(),
            "crates/core/src/device.rs"
                | "crates/core/src/btlb.rs"
                | "crates/core/src/function.rs"
                | "crates/sim/src/queue.rs"
                | "crates/sim/src/flight.rs"
                | "crates/hypervisor/src/system.rs"
                | "crates/hypervisor/src/telemetry.rs"
        ),
        // Integration-test trees: still covered by D1/D2 (nondeterministic
        // tests are flaky tests), exempt from state-shape rules.
        test_file: s.starts_with("tests/tests/") || s.contains("/tests/"),
        // Address-carrying crates: everything that moves vLBAs/pLBAs.
        // Bench harnesses and examples drive the device through the same
        // typed APIs but are measurement/demo code, not the boundary.
        address_crate: [
            "crates/extent/src/",
            "crates/storage/src/",
            "crates/core/src/",
            "crates/fs/src/",
            "crates/nvme/src/",
            "crates/virtio/src/",
            "crates/pcie/src/",
            "crates/accel/src/",
            "crates/hypervisor/src/",
        ]
        .iter()
        .any(|p| s.starts_with(p)),
        // Where translation/serialization legitimately unwraps the
        // newtypes — see DESIGN.md §8 for the per-module rationale.
        // `guest.rs` and `blk.rs` joined the allowlist with the G rules:
        // the quarantine type's own module and the virtio wire parser are
        // where `into_unchecked` legitimately touches raw representations
        // (DESIGN.md §13 has the per-module rationale).
        boundary_module: matches!(
            s.as_str(),
            "crates/extent/src/types.rs"
                | "crates/extent/src/walk.rs"
                | "crates/extent/src/tree.rs"
                | "crates/extent/src/layout.rs"
                | "crates/extent/src/guest.rs"
                | "crates/fs/src/alloc.rs"
                | "crates/core/src/ring.rs"
                | "crates/nvme/src/command.rs"
                | "crates/virtio/src/blk.rs"
        ),
        crate_name,
    })
}

/// Lints one source string under the given context.
pub fn lint_source(ctx: &LintContext, src: &str) -> Vec<Diagnostic> {
    rules::check(ctx, &lexer::scan(src))
}

/// Like [`lint_source`], but keeps directive-suppressed diagnostics in
/// the output with [`Diagnostic::suppressed`] set.
pub fn lint_source_all(ctx: &LintContext, src: &str) -> Vec<Diagnostic> {
    rules::check_all(ctx, &lexer::scan(src))
}

/// The result of a whole-file-set lint: the diagnostics plus the size of
/// the conservative data-path reachable set (what `--format json`
/// publishes as `reachable_functions`).
#[derive(Debug)]
pub struct LintReport {
    /// All diagnostics, sorted by `(path, line, rule)`, including
    /// directive-suppressed ones (flagged).
    pub diagnostics: Vec<Diagnostic>,
    /// Functions reachable from the data-path entry points
    /// ([`callgraph::ENTRY_POINTS`]) in the conservative call graph.
    pub reachable_functions: usize,
    /// Method-shape call sites the call-graph resolver dropped because no
    /// workspace function bears the name — the graph's audited blind spot.
    pub unresolved_calls: usize,
}

/// Lints a set of files *together*: the per-file token/provenance rules
/// plus the workspace call-graph rules (P1/P3), which need every file's
/// function table at once. Suppression directives apply uniformly — an
/// `// nesc-lint::allow(P1): why` on the offending item both suppresses
/// the call-graph diagnostic and counts as used (no A3).
pub fn lint_files_all(files: &[(LintContext, String)]) -> LintReport {
    let scans: Vec<(LintContext, lexer::Scan)> = files
        .iter()
        .map(|(ctx, src)| (ctx.clone(), lexer::scan(src)))
        .collect();
    let mut raw: Vec<Vec<Diagnostic>> = scans
        .iter()
        .map(|(ctx, scan)| rules::raw_diags(ctx, scan))
        .collect();
    let graph = callgraph::Graph::build(&scans);
    let reachable_functions = callgraph::check(&graph, &scans, &mut raw);
    guest::check_graph(&graph, &scans, &mut raw);
    let mut diagnostics: Vec<Diagnostic> = scans
        .iter()
        .zip(raw)
        .flat_map(|((ctx, scan), file_raw)| rules::finish(ctx, scan, file_raw))
        .collect();
    diagnostics
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    LintReport {
        diagnostics,
        reachable_functions,
        unresolved_calls: graph.unresolved_calls,
    }
}

/// Recursively collects workspace `.rs` files under `root`, sorted, so
/// the linter's own output order is deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') {
            continue;
        }
        if p.is_dir() {
            if matches!(name, "target" | "shims" | "results") {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints every in-scope `.rs` file under the workspace `root`. Diagnostics
/// come back sorted by `(path, line, rule)`.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_workspace_all(root)?
        .into_iter()
        .filter(|d| !d.suppressed)
        .collect())
}

/// Like [`lint_workspace`], but keeps directive-suppressed diagnostics in
/// the output with [`Diagnostic::suppressed`] set — the data set behind
/// `--format json`.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace_all(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_workspace_report(root)?.diagnostics)
}

/// The full workspace lint — per-file rules plus the call-graph pass —
/// with the reachable-function count ([`LintReport`]).
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_workspace_report(root: &Path) -> io::Result<LintReport> {
    let mut paths = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::new();
    for f in paths {
        let rel = f.strip_prefix(root).unwrap_or(&f);
        let Some(ctx) = classify(rel) else {
            continue;
        };
        files.push((ctx, fs::read_to_string(&f)?));
    }
    Ok(lint_files_all(&files))
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes_files() {
        assert!(classify(Path::new("shims/criterion/src/lib.rs")).is_none());
        assert!(classify(Path::new("crates/nesc-lint/tests/fixtures/d1.rs")).is_none());
        assert!(classify(Path::new("crates/sim/src/lib.rs")).is_some());
        let q = classify(Path::new("crates/sim/src/queue.rs")).unwrap();
        assert!(q.scheduling_core);
        let t = classify(Path::new("crates/sim/src/trace.rs")).unwrap();
        assert!(t.trace_impl && !t.scheduling_core);
        let ti = classify(Path::new("crates/sim/src/time.rs")).unwrap();
        assert!(ti.time_impl && ti.scheduling_core);
        let dev = classify(Path::new("crates/core/src/device.rs")).unwrap();
        assert!(dev.device_loop);
        let fl = classify(Path::new("crates/sim/src/flight.rs")).unwrap();
        assert!(fl.device_loop && !fl.scheduling_core);
        let rep = classify(Path::new("crates/hypervisor/src/report.rs"));
        assert!(rep.is_none_or(|c| !c.device_loop));
        let it = classify(Path::new("tests/tests/determinism.rs")).unwrap();
        assert!(it.test_file);
    }

    #[test]
    fn classify_scopes_address_crates_and_boundaries() {
        let w = classify(Path::new("crates/extent/src/walk.rs")).unwrap();
        assert!(w.address_crate && w.boundary_module);
        let d = classify(Path::new("crates/core/src/device.rs")).unwrap();
        assert!(d.address_crate && !d.boundary_module);
        let r = classify(Path::new("crates/core/src/ring.rs")).unwrap();
        assert!(r.boundary_module);
        // G-rule additions: the quarantine module and the virtio wire
        // parser are boundary; the engines consuming them are not.
        let g = classify(Path::new("crates/extent/src/guest.rs")).unwrap();
        assert!(g.address_crate && g.boundary_module);
        let v = classify(Path::new("crates/virtio/src/blk.rs")).unwrap();
        assert!(v.address_crate && v.boundary_module);
        let h = classify(Path::new("crates/hypervisor/src/system.rs")).unwrap();
        assert!(h.address_crate && !h.boundary_module);
        // Bench harnesses and the sim core move no addresses.
        let b = classify(Path::new("crates/bench/src/hotpath.rs")).unwrap();
        assert!(!b.address_crate);
        let s = classify(Path::new("crates/sim/src/queue.rs")).unwrap();
        assert!(!s.address_crate);
    }

    #[test]
    fn workspace_root_is_found() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates").is_dir());
    }
}
