//! CLI driver: `cargo run -p nesc-lint [-- [--format text|json] <paths...>]`.
//!
//! With no path arguments, lints every in-scope `.rs` file of the
//! enclosing workspace and exits non-zero if any rule fires. With paths,
//! lints just those files (classified by their workspace-relative
//! location).
//!
//! `--format json` emits one sorted JSON object (schema_version 2):
//! per-rule active/suppressed counts, the data-path reachable-set and
//! unresolved-method-call sizes, and every diagnostic — including
//! directive-suppressed ones, flagged `"suppressed": true` — so
//! downstream tooling can audit the suppression set. Suppressed
//! diagnostics never affect the exit code.
//!
//! `--explain <RULE>` prints one rule's rationale plus a minimal
//! violating and conforming example; the G-family examples are the
//! fixture corpus itself, compiled in, so they cannot drift from what
//! the tests pin.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nesc_lint::{Diagnostic, Rule};

const HELP: &str = "\
nesc-lint — NeSC workspace determinism + address-provenance linter

USAGE:
    cargo run -p nesc-lint [-- [OPTIONS] [PATHS...]]

With no PATHS, lints every in-scope .rs file of the enclosing workspace.

OPTIONS:
    --format text    human-readable lines (default)
    --format json    one sorted JSON object (schema_version 2): per-rule
                     active/suppressed counts plus all diagnostics,
                     including directive-suppressed ones
                     (\"suppressed\": true); suppressed entries do not
                     affect the exit code
    --explain RULE   print RULE's rationale and a minimal violating +
                     conforming example, then exit (e.g. --explain G3)
    -h, --help       print this help

RULES:
    D1-D7  determinism (wall-clock, randomness, hashers, floats, spans,
           intervals, hot-region allocations)
    T1-T3  address provenance (raw u64 LBAs, newtype unwraps, BLOCK_SIZE
           arithmetic outside boundary modules)
    G1-G3  guest-taint quarantine (annotated decode surfaces produce
           Untrusted<T>, into_unchecked stays in boundary modules, and
           every source→sink call-graph path crosses a validate_*
           bounds proof)
    A1-A3  suppression hygiene
    P1-P3  panic freedom on the conservative data-path call graph
           (no unwrap/expect/panic!/assert!, no hot-region slice
           indexing, no stringly errors on reachable pub fns)
    L1     crate layering (use nesc_* edges must follow the declared DAG)

EXIT CODES:
    0      clean — no active violations
    1      at least one active (unsuppressed) violation
    2      i/o or usage error
";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

/// One rule's `--explain` entry: `(rationale, violating, conforming)`.
/// The G-family examples are `include_str!`s of the fixture corpus under
/// `tests/fixtures/`, so the explanation is exactly the code the pin
/// tests lint; the rest are minimal inline sketches.
fn explain(rule: Rule) -> (&'static str, &'static str, &'static str) {
    match rule {
        Rule::D1 => (
            "Simulated code must read the engine's clock. A wall-clock read\n\
             (Instant/SystemTime) makes same-seed runs diverge and breaks every\n\
             byte-stable golden.",
            "let started = std::time::Instant::now();",
            "let started = ctx.now; // simulated Time owned by the engine",
        ),
        Rule::D2 => (
            "Ambient randomness (thread_rng, RandomState, OS entropy) cannot be\n\
             replayed from a seed; all randomness flows from the scenario's\n\
             seeded SimRng.",
            "let jitter = rand::thread_rng().gen_range(0..10);",
            "let jitter = rng.next_u64() % 10; // SimRng seeded by the scenario",
        ),
        Rule::D3 => (
            "The default SipHash hasher is randomly keyed per process, so\n\
             HashMap/HashSet iteration order differs between runs; ordered maps\n\
             keep event order reproducible.",
            "let mut vfs: HashMap<u16, VfState> = HashMap::new();",
            "let mut vfs: BTreeMap<u16, VfState> = BTreeMap::new();",
        ),
        Rule::D4 => (
            "Floats accumulate platform- and ordering-dependent rounding in\n\
             timestamps and scheduling state; fixed-point integers replay\n\
             bit-identically.",
            "pub service_credit: f64,",
            "pub service_credit_micros: u64,",
        ),
        Rule::D5 => (
            "A Span/SpanId fabricated outside the Tracer breaks the parent\n\
             links that let the span tree exactly partition end-to-end latency.",
            "let span = Span { id: SpanId(7), parent: SpanId::NONE, .. };",
            "let span = tracer.start_span(parent); // ids allocated by the Tracer",
        ),
        Rule::D6 => (
            "A bare integer where a sampling interval is expected hides its\n\
             unit; SimDuration makes the nanoseconds explicit and conversions\n\
             checked.",
            "sampler.set_interval(50_000);",
            "sampler.set_interval(SimDuration::from_micros(50));",
        ),
        Rule::D7 => (
            "Allocations inside a `// nesc-lint: hot` region stall the device\n\
             loop the throughput gate measures; buffers are sized once at\n\
             setup and reused.",
            "// nesc-lint: hot\npub fn drain(&mut self) {\n    self.scratch = Vec::new();\n}",
            "pub fn drain(&mut self) {\n    self.scratch.clear(); // reuses the setup-time allocation\n}",
        ),
        Rule::T1 => (
            "A raw u64 LBA in a public API erases whether the address is\n\
             guest-virtual or physical — the exact confusion NeSC's per-VF\n\
             translation exists to prevent.",
            "pub fn submit(&mut self, slba: u64, blocks: u64) { /* .. */ }",
            "pub fn submit(&mut self, slba: Vlba, blocks: u64) { /* .. */ }",
        ),
        Rule::T2 => (
            "Minting a Plba or unwrapping a newtype outside a boundary module\n\
             lets an address skip the single translation step; boundary modules\n\
             are where wire forms legitimately live.",
            "let p = Plba(slab_base + off); // hand-translated",
            "let p = table.translate(vlba)?; // the one translation site",
        ),
        Rule::T3 => (
            "Open-coded `* BLOCK_SIZE` scatters the block↔byte convention\n\
             across the workspace; the newtype helpers keep the conversion in\n\
             one audited place.",
            "let byte = lba.0 * BLOCK_SIZE;",
            "let byte = lba.byte_offset();",
        ),
        Rule::G1 => (
            "A decode surface annotated `// nesc-lint: guest-input` reads\n\
             attacker-controlled bytes; G1 makes it produce Untrusted<T>-\n\
             quarantined values so nothing downstream can consume them without\n\
             a validate_* bounds proof. In the paper the controller's private\n\
             mapping table makes out-of-range guest addresses unrepresentable;\n\
             here the type system plays that role.",
            include_str!("../tests/fixtures/g1/raw_decode.rs"),
            include_str!("../tests/fixtures/g1/wrapped_ok.rs"),
        ),
        Rule::G2 => (
            "`into_unchecked` releases a quarantined value without a bounds\n\
             proof, so it is confined to the allowlisted boundary modules (wire\n\
             encode/decode and the validators themselves); anywhere else needs\n\
             a justified `// nesc-lint::allow(G2): <why>`, and directives that\n\
             stop suppressing rot into A3s.",
            include_str!("../tests/fixtures/g2/unwrap_escape.rs"),
            "let blocks = validate_nlb(sqe.nlb, ns.size_blocks)?; // proof, not escape",
        ),
        Rule::G3 => (
            "Typing alone cannot catch a raw value routed around the wrappers,\n\
             so G3 walks the same conservative call graph P1 uses, from every\n\
             guest-input source to the translation/DMA/indexing sinks, and\n\
             demands a validate_* call on the path — reporting the full taint\n\
             chain when one is missing.",
            include_str!("../tests/fixtures/g3/multi_hop.rs"),
            include_str!("../tests/fixtures/g3/validated_ok.rs"),
        ),
        Rule::A1 => (
            "An #[allow] without an adjacent rationale comment hides why a\n\
             compiler lint was waived.",
            "#[allow(dead_code)]\nfn staged() {}",
            "// Kept until the B-side path lands.\n#[allow(dead_code)]\nfn staged() {}",
        ),
        Rule::A2 => (
            "A suppression directive with no justification defeats the audit\n\
             trail the directive system exists to provide.",
            "// nesc-lint::allow(T2)\nlet raw = vlba.0;",
            "// nesc-lint::allow(T2): wire encode needs the raw form.\nlet raw = vlba.0;",
        ),
        Rule::A3 => (
            "A directive that no longer suppresses anything is stale\n\
             documentation; deleting it keeps the suppression inventory honest.",
            "// nesc-lint::allow(D1): overhead probe. (nothing below reads a clock)",
            "(delete the directive once the violation it excused is gone)",
        ),
        Rule::P1 => (
            "An unwrap/panic on the data path means one malformed request kills\n\
             the whole simulated device instead of failing that request; faults\n\
             must travel as typed errors to the completion path.",
            "pub fn process_vf_request(x: Option<u64>) -> u64 {\n    x.unwrap()\n}",
            "pub fn process_vf_request(x: Option<u64>) -> Result<u64, DeviceError> {\n    x.ok_or(DeviceError::MissingPayload)\n}",
        ),
        Rule::P2 => (
            "Direct indexing in a hot region is a latent panic on the busiest\n\
             loop; get()/iterators make the miss case explicit.",
            "// nesc-lint: hot\nfn fold(&self, xs: &[u64]) -> u64 {\n    xs[self.cursor]\n}",
            "fn fold(&self, xs: &[u64]) -> u64 {\n    xs.get(self.cursor).copied().unwrap_or(0)\n}",
        ),
        Rule::P3 => (
            "A reachable pub fn returning Result<_, String> (or unit/opaque\n\
             Option) gives callers nothing to match on; per-crate error enums\n\
             keep fault handling total.",
            "pub fn translate(&self, v: Vlba) -> Result<Plba, String> { /* .. */ }",
            "pub fn translate(&self, v: Vlba) -> Result<Plba, ExtentError> { /* .. */ }",
        ),
        Rule::L1 => (
            "Crate imports must follow the declared layering DAG so low layers\n\
             never reach upward; one stray `use` makes the layering\n\
             unenforceable.",
            "use nesc_hypervisor::NescError; // from inside nesc-core",
            "// convert at the boundary instead:\nimpl From<CoreError> for NescError { /* .. */ }",
        ),
    }
}

fn print_explain(rule: Rule) {
    let (why, bad, good) = explain(rule);
    println!("{}", rule.id());
    for line in why.lines() {
        println!("  {}", line.trim_start());
    }
    println!("\nVIOLATES:");
    for line in bad.lines() {
        println!("    {line}");
    }
    println!("\nCONFORMS:");
    for line in good.lines() {
        println!("    {line}");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the build is offline, so no serde.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &nesc_lint::LintReport) {
    let diags = &report.diagnostics;
    println!("{{");
    println!("  \"schema_version\": 2,");
    println!("  \"reachable_functions\": {},", report.reachable_functions);
    println!("  \"unresolved_calls\": {},", report.unresolved_calls);
    println!("  \"rule_counts\": {{");
    for (i, r) in Rule::ALL.into_iter().enumerate() {
        let active = diags
            .iter()
            .filter(|d| d.rule == r && !d.suppressed)
            .count();
        let suppressed = diags.iter().filter(|d| d.rule == r && d.suppressed).count();
        let comma = if i + 1 == Rule::ALL.len() { "" } else { "," };
        println!(
            "    \"{}\": {{\"active\": {active}, \"suppressed\": {suppressed}}}{comma}",
            r.id()
        );
    }
    println!("  }},");
    println!("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 == diags.len() { "" } else { "," };
        println!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\", \"suppressed\": {}}}{}",
            esc(&d.path),
            d.line,
            d.rule,
            esc(&d.message),
            esc(d.hint),
            d.suppressed,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut paths: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "nesc-lint: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next().as_deref().and_then(Rule::parse) {
                Some(rule) => {
                    print_explain(rule);
                    return ExitCode::SUCCESS;
                }
                None => {
                    eprintln!(
                        "nesc-lint: --explain expects a rule id ({})",
                        Rule::ALL.map(Rule::id).join(", ")
                    );
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("nesc-lint: unknown option `{flag}` (see --help)");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }

    let cwd = env::current_dir().expect("cwd");
    let root = nesc_lint::find_workspace_root(&cwd)
        .or_else(|| nesc_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))))
        .expect("no enclosing cargo workspace found");

    let report = if paths.is_empty() {
        match nesc_lint::lint_workspace_report(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("nesc-lint: i/o error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // Explicit paths are linted as one file *set*, so the call-graph
        // rules run over exactly these files (an entry point defined in
        // the set arms P1 — what the check.sh injection self-test uses).
        let mut files = Vec::new();
        for a in &paths {
            let p = PathBuf::from(a);
            let abs = if p.is_absolute() { p } else { cwd.join(p) };
            let rel = abs.strip_prefix(&root).unwrap_or(&abs);
            let Some(ctx) = nesc_lint::classify(rel) else {
                eprintln!("nesc-lint: {a}: out of scope, skipped");
                continue;
            };
            match std::fs::read_to_string(&abs) {
                Ok(src) => files.push((ctx, src)),
                Err(e) => {
                    eprintln!("nesc-lint: {a}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        nesc_lint::lint_files_all(&files)
    };

    let active: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed)
        .collect();
    match format {
        Format::Json => print_json(&report),
        Format::Text => {
            for d in &active {
                println!("{d}");
            }
            if active.is_empty() {
                println!(
                    "nesc-lint: clean (rules D1-D7, T1-T3, G1-G3, A1-A3, P1-P3, L1; {} data-path fns)",
                    report.reachable_functions
                );
            } else {
                println!("nesc-lint: {} violation(s)", active.len());
            }
        }
    }
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
