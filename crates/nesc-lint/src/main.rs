//! CLI driver: `cargo run -p nesc-lint [-- <paths...>]`.
//!
//! With no arguments, lints every in-scope `.rs` file of the enclosing
//! workspace and exits non-zero if any rule fires. With paths, lints just
//! those files (classified by their workspace-relative location).

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let cwd = env::current_dir().expect("cwd");
    let root = nesc_lint::find_workspace_root(&cwd)
        .or_else(|| nesc_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))))
        .expect("no enclosing cargo workspace found");

    let diags = if args.is_empty() {
        match nesc_lint::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("nesc-lint: i/o error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for a in &args {
            let p = PathBuf::from(a);
            let abs = if p.is_absolute() { p } else { cwd.join(p) };
            let rel = abs.strip_prefix(&root).unwrap_or(&abs);
            let Some(ctx) = nesc_lint::classify(rel) else {
                eprintln!("nesc-lint: {a}: out of scope, skipped");
                continue;
            };
            match std::fs::read_to_string(&abs) {
                Ok(src) => out.extend(nesc_lint::lint_source(&ctx, &src)),
                Err(e) => {
                    eprintln!("nesc-lint: {a}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        out
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("nesc-lint: clean (rules D1-D5, A1-A3)");
        ExitCode::SUCCESS
    } else {
        println!("nesc-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
