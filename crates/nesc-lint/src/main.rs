//! CLI driver: `cargo run -p nesc-lint [-- [--format text|json] <paths...>]`.
//!
//! With no path arguments, lints every in-scope `.rs` file of the
//! enclosing workspace and exits non-zero if any rule fires. With paths,
//! lints just those files (classified by their workspace-relative
//! location).
//!
//! `--format json` emits one sorted JSON array of diagnostic objects —
//! including directive-suppressed ones, flagged `"suppressed": true` —
//! so downstream tooling can audit the suppression set. Suppressed
//! diagnostics never affect the exit code.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use nesc_lint::Diagnostic;

const HELP: &str = "\
nesc-lint — NeSC workspace determinism + address-provenance linter

USAGE:
    cargo run -p nesc-lint [-- [OPTIONS] [PATHS...]]

With no PATHS, lints every in-scope .rs file of the enclosing workspace.

OPTIONS:
    --format text    human-readable lines (default)
    --format json    sorted JSON array of all diagnostics, including
                     directive-suppressed ones (\"suppressed\": true);
                     suppressed entries do not affect the exit code
    -h, --help       print this help

RULES:
    D1-D7  determinism (wall-clock, randomness, hashers, floats, spans,
           intervals, hot-region allocations)
    T1-T3  address provenance (raw u64 LBAs, newtype unwraps, BLOCK_SIZE
           arithmetic outside boundary modules)
    A1-A3  suppression hygiene
    P1-P3  panic freedom on the conservative data-path call graph
           (no unwrap/expect/panic!/assert!, no hot-region slice
           indexing, no stringly errors on reachable pub fns)
    L1     crate layering (use nesc_* edges must follow the declared DAG)

EXIT CODES:
    0      clean — no active violations
    1      at least one active (unsuppressed) violation
    2      i/o or usage error
";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// the build is offline, so no serde.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &nesc_lint::LintReport) {
    let diags = &report.diagnostics;
    println!("{{");
    println!("  \"reachable_functions\": {},", report.reachable_functions);
    println!("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        let comma = if i + 1 == diags.len() { "" } else { "," };
        println!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\", \"suppressed\": {}}}{}",
            esc(&d.path),
            d.line,
            d.rule,
            esc(&d.message),
            esc(d.hint),
            d.suppressed,
            comma
        );
    }
    println!("  ]");
    println!("}}");
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut paths: Vec<String> = Vec::new();
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "nesc-lint: --format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("nesc-lint: unknown option `{flag}` (see --help)");
                return ExitCode::from(2);
            }
            p => paths.push(p.to_string()),
        }
    }

    let cwd = env::current_dir().expect("cwd");
    let root = nesc_lint::find_workspace_root(&cwd)
        .or_else(|| nesc_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))))
        .expect("no enclosing cargo workspace found");

    let report = if paths.is_empty() {
        match nesc_lint::lint_workspace_report(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("nesc-lint: i/o error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // Explicit paths are linted as one file *set*, so the call-graph
        // rules run over exactly these files (an entry point defined in
        // the set arms P1 — what the check.sh injection self-test uses).
        let mut files = Vec::new();
        for a in &paths {
            let p = PathBuf::from(a);
            let abs = if p.is_absolute() { p } else { cwd.join(p) };
            let rel = abs.strip_prefix(&root).unwrap_or(&abs);
            let Some(ctx) = nesc_lint::classify(rel) else {
                eprintln!("nesc-lint: {a}: out of scope, skipped");
                continue;
            };
            match std::fs::read_to_string(&abs) {
                Ok(src) => files.push((ctx, src)),
                Err(e) => {
                    eprintln!("nesc-lint: {a}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        nesc_lint::lint_files_all(&files)
    };

    let active: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed)
        .collect();
    match format {
        Format::Json => print_json(&report),
        Format::Text => {
            for d in &active {
                println!("{d}");
            }
            if active.is_empty() {
                println!(
                    "nesc-lint: clean (rules D1-D7, T1-T3, A1-A3, P1-P3, L1; {} data-path fns)",
                    report.reachable_functions
                );
            } else {
                println!("nesc-lint: {} violation(s)", active.len());
            }
        }
    }
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
