//! Guest-taint rules (G1-G3).
//!
//! The T rules police the *translated* side of NeSC's isolation boundary
//! (a `Plba` never leaks back toward the guest untyped); these rules
//! police the *untranslated* side: raw integers decoded from
//! guest-controlled memory — SQE fields, ring descriptors, virtio request
//! headers, doorbell writes — must be proven in bounds before they drive
//! an extent walk, a DMA length, or ring-index arithmetic. The paper's
//! controller enforces this in hardware (a VF simply cannot name a block
//! outside its private mapping table); the reproduction enforces it in
//! the type system, and this pass keeps the type system honest:
//!
//! * **G1** — a decode surface annotated `// nesc-lint: guest-input`
//!   (struct or function) must produce `Untrusted<T>`-quarantined values,
//!   never raw integers or bare `Vlba`s;
//! * **G2** — `Untrusted::into_unchecked`, the unproven escape hatch, is
//!   confined to the allowlisted boundary modules (where values go
//!   straight back onto the wire); anywhere else needs a justified
//!   `// nesc-lint::allow(G2)` directive;
//! * **G3** — interprocedurally, on the same conservative call graph P1
//!   uses ([`crate::callgraph`]), every function holding guest taint must
//!   cross a `validate_*` bounds proof before any taint-relevant sink:
//!   `walk_run(..)`, `Plba(..)` minting, `.dma_read(`/`.dma_write(` byte
//!   counts, `%` ring arithmetic or slice indexing on guest-named values.
//!
//! # Taint model (deliberately coarse)
//!
//! A function holds taint if (a) a parameter type mentions `Untrusted` or
//! a marked struct, (b) a raw-integer parameter has a guest-conventional
//! name ([`GUEST_NAMES`]), or (c) its body calls a marked source function
//! — taint then starts at that call site. One taint bit covers the whole
//! function: any `validate_*(..)` call clears it for the remainder of the
//! body. That is imprecise in both directions, and both gaps are covered
//! by the *typing* rules rather than the flow analysis: a raw value can
//! only leave `Untrusted<T>` through a validator (total by construction)
//! or `into_unchecked` (G2 fires), so a G3 false negative requires an
//! already-flagged escape. Values returned by non-source callees never
//! re-taint — the callee's own body was checked under the same rules.
//!
//! Like the T rules, all three apply only in address-carrying crates and
//! skip test code; G3 additionally skips sinks inside boundary modules,
//! where decode/encode legitimately touches raw representations next to
//! the quarantine wrappers.

use std::collections::{BTreeSet, VecDeque};

use crate::callgraph::Graph;
use crate::lexer::{Scan, Tok, TokKind};
use crate::parser;
use crate::rules::{in_regions, marker_regions, Diagnostic, LintContext, Rule};

/// The guest-input marker: a plain comment whose whole text is exactly
/// this, governing the struct or fn item that begins on the next code
/// line — the same region machinery `// nesc-lint: hot` uses.
pub(crate) const GUEST_MARKER: &str = "nesc-lint: guest-input";

/// Raw integer types that must not leave a guest-decode surface bare.
const RAW_INTS: &[&str] = &["u8", "u16", "u32", "u64", "usize"];

/// Parameter names that conventionally carry guest-controlled values in
/// this workspace. `tail`/`head` are deliberately absent: device-internal
/// ring cursors share those names, and guest-supplied cursors travel as
/// `Untrusted<u32>` (which taints by type, not by name).
const GUEST_NAMES: &[&str] = &[
    "slba",
    "nlb",
    "sector",
    "doorbell",
    "ring_tail",
    "guest_lba",
];

const G1_HINT: &str = "carry guest-decoded values as Untrusted<T> (nesc_extent) until a validate_* proof releases them";
const G2_HINT: &str = "exit the quarantine through a nesc_extent validate_* bounds proof, or justify with `// nesc-lint::allow(G2): <why>`";
const G3_HINT: &str =
    "launder the value through a bounds-proving validate_* before translation, DMA, or indexing";

/// Whether a rendered type is one G1 refuses on a decode surface: a raw
/// integer or a bare (unquarantined) virtual block address.
fn raw_guest_ty(ty: &str) -> bool {
    RAW_INTS.contains(&ty) || ty == "Vlba"
}

/// A marked struct: its name plus the marker region it sits in.
type MarkedStruct = (String, (u32, u32));

/// The marked items of one file: `(struct names, fn regions)`. Each
/// marker region is classified by the first `struct`/`fn` keyword inside
/// it.
fn marked_items(scan: &Scan) -> (Vec<MarkedStruct>, Vec<(u32, u32)>) {
    let tokens = &scan.tokens;
    let mut structs = Vec::new();
    let mut fns = Vec::new();
    for (start, end) in marker_regions(&scan.comments, tokens, GUEST_MARKER) {
        let Some(kw) = tokens.iter().position(|t| {
            t.line >= start
                && t.line <= end
                && matches!(&t.kind, TokKind::Ident(s) if s == "struct" || s == "fn")
        }) else {
            continue;
        };
        if matches!(&tokens[kw].kind, TokKind::Ident(s) if s == "struct") {
            if let Some(TokKind::Ident(n)) = tokens.get(kw + 1).map(|t| &t.kind) {
                structs.push((n.clone(), (start, end)));
            }
        } else {
            fns.push((start, end));
        }
    }
    (structs, fns)
}

/// The per-file guest-taint rules: G1 on marked decode surfaces, G2 on
/// unchecked quarantine escapes. Appends raw (pre-suppression)
/// diagnostics, like the provenance pass.
pub(crate) fn check_file(
    ctx: &LintContext,
    scan: &Scan,
    tests: &[(u32, u32)],
    raw: &mut Vec<Diagnostic>,
) {
    if !ctx.address_crate || ctx.test_file {
        return;
    }
    let tokens = &scan.tokens;

    // ---- G2: into_unchecked outside boundary modules ------------------
    if !ctx.boundary_module {
        for (i, tok) in tokens.iter().enumerate() {
            if matches!(&tok.kind, TokKind::Ident(s) if s == "into_unchecked")
                && i > 0
                && matches!(tokens[i - 1].kind, TokKind::Punct('.'))
                && matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokKind::Punct('('))
                )
                && !in_regions(tests, tok.line)
            {
                raw.push(Diagnostic {
                    path: ctx.path.clone(),
                    line: tok.line,
                    rule: Rule::G2,
                    message:
                        "unproven quarantine escape outside a boundary module: `.into_unchecked()`"
                            .into(),
                    hint: G2_HINT,
                    suppressed: false,
                });
            }
        }
    }

    // ---- G1: marked decode surfaces must produce quarantined values ---
    let (structs, fn_regions) = marked_items(scan);
    if structs.is_empty() && fn_regions.is_empty() {
        return;
    }
    if !structs.is_empty() {
        let items = parser::parse_items(scan);
        for (name, (start, end)) in &structs {
            for fld in items
                .fields
                .iter()
                .filter(|f| &f.struct_name == name && f.line >= *start && f.line <= *end)
            {
                if raw_guest_ty(&fld.ty) && !in_regions(tests, fld.line) {
                    raw.push(Diagnostic {
                        path: ctx.path.clone(),
                        line: fld.line,
                        rule: Rule::G1,
                        message: format!(
                            "guest-decoded field `{}.{}` carried as raw `{}`",
                            fld.struct_name, fld.name, fld.ty
                        ),
                        hint: G1_HINT,
                        suppressed: false,
                    });
                }
            }
        }
    }
    if !fn_regions.is_empty() {
        let fns = parser::parse_fns(scan);
        for (start, end) in &fn_regions {
            let Some(def) = fns.iter().find(|d| d.line >= *start && d.line <= *end) else {
                continue;
            };
            if in_regions(tests, def.line) {
                continue;
            }
            // A decode fn may return the quarantine wrapper directly or a
            // marked struct (whose own fields G1 already polices).
            let ok = def.ret.contains("Untrusted")
                || structs.iter().any(|(n, _)| def.ret.contains(n.as_str()));
            if !ok {
                let shown = if def.ret.is_empty() { "()" } else { &def.ret };
                raw.push(Diagnostic {
                    path: ctx.path.clone(),
                    line: def.line,
                    rule: Rule::G1,
                    message: format!(
                        "guest-input fn `{}` returns `{shown}` instead of quarantined values",
                        def.name
                    ),
                    hint: G1_HINT,
                    suppressed: false,
                });
            }
        }
    }
}

/// How a function came to hold guest taint, for chain rendering.
enum TaintKind {
    /// The body calls this marked source node directly.
    Source(usize),
    /// An `Untrusted`/marked-struct/guest-named parameter.
    Signature,
}

/// The interprocedural G3 pass over a prebuilt call graph. `files` and
/// `raw` are parallel, as in [`crate::callgraph::check`]; diagnostics
/// join each file's raw bucket pre-suppression so `allow(G3)` directives
/// apply and count as used.
pub(crate) fn check_graph(
    graph: &Graph,
    files: &[(LintContext, Scan)],
    raw: &mut [Vec<Diagnostic>],
) {
    // ---- Marked sources: per-file regions, global struct-name set. ----
    let regions: Vec<Vec<(u32, u32)>> = files
        .iter()
        .map(|(_, scan)| marker_regions(&scan.comments, &scan.tokens, GUEST_MARKER))
        .collect();
    let mut marked_structs: BTreeSet<String> = BTreeSet::new();
    for (_, scan) in files {
        for (name, _) in marked_items(scan).0 {
            marked_structs.insert(name);
        }
    }
    let marked_fn: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| in_regions(&regions[n.file], n.def.line))
        .collect();

    // ---- Per-node taint, and the sink/validator scan. ----
    let sig_tainted: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| {
            n.def.params.iter().any(|p| {
                p.ty.contains("Untrusted")
                    || marked_structs.iter().any(|s| p.ty.contains(s.as_str()))
                    || (GUEST_NAMES.contains(&p.name.as_str()) && RAW_INTS.contains(&p.ty.as_str()))
            })
        })
        .collect();

    // First body pass: which nodes directly call a marked source (and
    // where) — these are the taint roots the chain rendering grows from.
    let mut source_call: Vec<Option<(usize, usize)>> = vec![None; graph.nodes.len()];
    for (i, n) in graph.nodes.iter().enumerate() {
        let (ctx, scan) = &files[n.file];
        if !ctx.address_crate {
            continue;
        }
        let Some((b, e)) = n.def.body else { continue };
        let t = &scan.tokens;
        let nested = graph.nested_ranges(i);
        let mut idx = b + 1;
        while idx < e {
            if let Some(&(_, ne)) = nested.iter().find(|&&(nb, _)| nb == idx) {
                idx = ne + 1;
                continue;
            }
            if let Some(targets) = graph.resolve_call(t, idx, n) {
                if let Some(&s) = targets.iter().find(|&&s| marked_fn[s]) {
                    source_call[i] = Some((idx, s));
                    break;
                }
            }
            idx += 1;
        }
    }

    // Taint-propagation BFS from the roots, for chain rendering only (the
    // taint *decision* per node is local: signature or direct source).
    let mut parent: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut reached: Vec<bool> = vec![false; graph.nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, sc) in source_call.iter().enumerate() {
        if sc.is_some() {
            reached[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        for &j in &graph.edges[i] {
            if !reached[j] {
                reached[j] = true;
                parent[j] = Some(i);
                queue.push_back(j);
            }
        }
    }

    // ---- Second body pass: sinks vs validators on tainted nodes. ----
    for (i, n) in graph.nodes.iter().enumerate() {
        let (ctx, scan) = &files[n.file];
        if !ctx.address_crate || ctx.boundary_module {
            continue; // boundary modules are where raw wire forms live
        }
        let (taint_start, kind) = match source_call[i] {
            _ if sig_tainted[i] => {
                let Some((b, _)) = n.def.body else { continue };
                (b, TaintKind::Signature)
            }
            Some((at, src)) => (at, TaintKind::Source(src)),
            None => continue,
        };
        let Some((_, e)) = n.def.body else { continue };
        let t = &scan.tokens;
        let nested = graph.nested_ranges(i);
        let mut validated = false;
        let mut chain: Option<String> = None;
        let mut idx = taint_start + 1;
        while idx < e {
            if let Some(&(_, ne)) = nested.iter().find(|&&(nb, _)| nb == idx) {
                idx = ne + 1;
                continue;
            }
            if is_validator_call(t, idx) {
                validated = true;
                idx += 1;
                continue;
            }
            if !validated {
                if let Some(what) = sink_at(t, idx) {
                    let chain = chain
                        .get_or_insert_with(|| render_taint(graph, &kind, &parent, &reached, i));
                    raw[n.file].push(Diagnostic {
                        path: ctx.path.clone(),
                        line: t[idx].line,
                        rule: Rule::G3,
                        message: format!(
                            "guest-tainted value reaches `{what}` with no validator on the path ({chain})"
                        ),
                        hint: G3_HINT,
                        suppressed: false,
                    });
                }
            }
            idx += 1;
        }
    }
}

/// `validate_*(` with the previous token not `fn` — a call to a bounds
/// proof, not its definition.
fn is_validator_call(t: &[Tok], idx: usize) -> bool {
    let TokKind::Ident(name) = &t[idx].kind else {
        return false;
    };
    name.starts_with("validate_")
        && matches!(t.get(idx + 1).map(|x| &x.kind), Some(TokKind::Punct('(')))
        && !matches!(idx.checked_sub(1).map(|p| &t[p].kind), Some(TokKind::Ident(k)) if k == "fn")
}

/// If tokens at `idx` are a G3 sink, returns its rendering. The sinks are
/// the operations whose arguments become physical effects: extent-walk
/// entry, `Plba` minting, DMA byte counts, and ring arithmetic/indexing
/// on guest-named values.
fn sink_at(t: &[Tok], idx: usize) -> Option<String> {
    let next =
        |k: usize, c: char| matches!(t.get(k).map(|x| &x.kind), Some(TokKind::Punct(p)) if *p == c);
    match &t[idx].kind {
        TokKind::Ident(name) => {
            let prev_fn = matches!(idx.checked_sub(1).map(|p| &t[p].kind), Some(TokKind::Ident(k)) if k == "fn");
            match name.as_str() {
                "walk_run" | "Plba" if next(idx + 1, '(') && !prev_fn => {
                    Some(format!("{name}(..)"))
                }
                "dma_read" | "dma_write"
                    if idx > 0
                        && matches!(t[idx - 1].kind, TokKind::Punct('.'))
                        && next(idx + 1, '(') =>
                {
                    Some(format!(".{name}(..)"))
                }
                n if GUEST_NAMES.contains(&n) && next(idx + 1, '%') => {
                    Some(format!("{n} % ..")) // queue-head arithmetic
                }
                _ => None,
            }
        }
        // `base[<guest-named> ...]` — indexing driven by a guest value.
        TokKind::Punct('[')
            if idx > 0
                && match &t[idx - 1].kind {
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    TokKind::Ident(base) => !crate::rules::nonindex_keyword(base),
                    _ => false,
                } =>
        {
            match t.get(idx + 1).map(|x| &x.kind) {
                Some(TokKind::Ident(n)) if GUEST_NAMES.contains(&n.as_str()) => {
                    Some(format!("[{n} ..] indexing"))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Renders how the taint got here, in the same spirit as P1's discovery
/// chains.
fn render_taint(
    graph: &Graph,
    kind: &TaintKind,
    parent: &[Option<usize>],
    reached: &[bool],
    i: usize,
) -> String {
    match kind {
        TaintKind::Source(src) => {
            format!("guest input from `{}`", graph.nodes[*src].label())
        }
        TaintKind::Signature if reached[i] => {
            // Walk the propagation tree back to a root that names a source.
            let mut labels = vec![graph.nodes[i].label()];
            let mut at = i;
            while let Some(p) = parent[at] {
                labels.push(graph.nodes[p].label());
                at = p;
            }
            labels.reverse();
            let src = graph.nodes[at].label();
            format!("guest input via `{src}`: {}", labels.join(" → "))
        }
        TaintKind::Signature => "tainted by signature".to_string(),
    }
}
