//! An item-level view over the token stream.
//!
//! The provenance rules (T1) reason about *signatures*, not token
//! neighborhoods: "does any public function take an LBA-named parameter
//! typed as a raw `u64`?" cannot be asked of a flat token stream without
//! constant false positives from locals and arithmetic. This module walks
//! the scan once and extracts exactly the two item shapes T1 needs —
//! public function parameter lists and public struct fields — with line
//! numbers and a rendered type string per entry.
//!
//! Deliberately *not* a Rust parser: no expressions, no bodies, no name
//! resolution. Generic parameter lists, `where` clauses, visibility
//! qualifiers (`pub(crate)`, `pub(in ...)`) and attributes are skipped
//! structurally; function bodies are never entered (parameter extraction
//! stops at the matching `)`), so nothing inside a body can masquerade as
//! a signature.

use crate::lexer::{Scan, Tok, TokKind};

/// One parameter of a public function.
#[derive(Debug, Clone)]
pub struct PubFnParam {
    /// Binding name (the last identifier of the pattern, so `mut x` → `x`).
    pub name: String,
    /// Rendered type text, e.g. `u64`, `&mut u64`, `Option<Vlba>`.
    pub ty: String,
    /// 1-based line the parameter name sits on (multi-line signatures get
    /// per-parameter lines).
    pub line: u32,
}

/// One public function signature.
#[derive(Debug, Clone)]
pub struct PubFn {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters, in order; `self` receivers are omitted.
    pub params: Vec<PubFnParam>,
}

/// One public field of a public struct.
#[derive(Debug, Clone)]
pub struct PubField {
    /// The struct the field belongs to.
    pub struct_name: String,
    /// Field name.
    pub name: String,
    /// Rendered type text.
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// Everything the item-level pass extracts.
#[derive(Debug, Default)]
pub struct Items {
    /// All `pub` / `pub(..)` functions.
    pub fns: Vec<PubFn>,
    /// All `pub` / `pub(..)` fields of `pub` structs.
    pub fields: Vec<PubField>,
}

/// One function definition, any visibility — the call-graph node shape.
///
/// Unlike [`PubFn`] (the T1 signature view), this carries enough position
/// information to attribute call sites to their enclosing function: the
/// token index of the `fn` keyword and the token range of the body braces.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `Self` type of the innermost enclosing `impl` block, if any
    /// (`impl Trait for Type` records `Type`).
    pub impl_type: Option<String>,
    /// Whether the function is `pub` / `pub(..)`.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Rendered return type (`""` for unit).
    pub ret: String,
    /// Parameters, in order; `self` receivers are omitted. The guest-taint
    /// pass ([`crate::guest`]) reads these to decide whether a function's
    /// signature imports taint (`Untrusted<_>`/marked-struct/guest-named
    /// raw-integer parameters).
    pub params: Vec<PubFnParam>,
    /// Token indices of the body's `{` and its matching `}`; `None` for
    /// bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
}

/// `impl` block body ranges with their `Self` type name: `(open_brace,
/// close_brace, type_name)`. `impl Trait for Type` records `Type`; the
/// last path segment wins (`impl fmt::Display for NescError` → `NescError`).
fn impl_regions(t: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if ident_at(t, i) != Some("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if punct_at(t, j, '<') {
            j = skip_generics(t, j);
        }
        // Walk the header up to the body brace, tracking the last path
        // segment; a `for` resets it so the implementing type (not the
        // trait) is recorded.
        let mut last: Option<String> = None;
        while j < t.len() && !punct_at(t, j, '{') {
            match &t[j].kind {
                TokKind::Ident(s) if s == "for" => {
                    last = None;
                    j += 1;
                }
                TokKind::Ident(s) if s == "where" => break,
                TokKind::Ident(s) => {
                    last = Some(s.clone());
                    j += 1;
                }
                TokKind::Punct('<') => j = skip_generics(t, j),
                TokKind::Punct('(') => j = skip_parens(t, j),
                _ => j += 1,
            }
        }
        while j < t.len() && !punct_at(t, j, '{') {
            j += 1;
        }
        let (Some(name), true) = (last, j < t.len()) else {
            i = j.max(i + 1);
            continue;
        };
        // Find the matching close brace.
        let mut depth = 0i32;
        let mut e = j;
        while e < t.len() {
            match t[e].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            e += 1;
        }
        out.push((j, e, name));
        // Continue scanning *inside* the impl body (nested impls are rare
        // but legal), so step just past the open brace.
        i = j + 1;
    }
    out
}

/// Whether the tokens directly before `fn_idx` carry a `pub` visibility,
/// scanning back over qualifiers (`const`, `unsafe`, `async`, `extern
/// "C"`) and the parenthesized part of `pub(crate)` / `pub(in foo)`.
fn pub_before(t: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        j -= 1;
        match &t[j].kind {
            TokKind::Ident(s)
                if matches!(
                    s.as_str(),
                    "const" | "unsafe" | "async" | "crate" | "super" | "in" | "self"
                ) => {}
            TokKind::Ident(s) if s == "extern" => {}
            TokKind::Ident(s) if s == "pub" => return true,
            TokKind::Str => {}
            TokKind::Punct('(') | TokKind::Punct(')') => {}
            _ => return false,
        }
    }
    false
}

/// Harvests *every* function definition in the scan — any visibility,
/// free or inside `impl`/`trait` blocks, including functions nested in
/// other functions' bodies. This is the node set of the conservative
/// call graph ([`crate::callgraph`]).
pub fn parse_fns(scan: &Scan) -> Vec<FnDef> {
    let t = &scan.tokens;
    let impls = impl_regions(t);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if ident_at(t, i) != Some("fn") {
            i += 1;
            continue;
        }
        // `fn(u64) -> u64` function-pointer types have no name ident.
        let Some(name) = ident_at(t, i + 1) else {
            i += 1;
            continue;
        };
        let fn_tok = i;
        let line = t[i].line;
        let is_pub = pub_before(t, i);
        let mut k = i + 2;
        if punct_at(t, k, '<') {
            k = skip_generics(t, k);
        }
        if !punct_at(t, k, '(') {
            i += 1;
            continue;
        }
        let after_params = skip_parens(t, k);
        // Return type: tokens between `->` and the body/`;`/`where`, with
        // bracket tracking so `-> [u8; 4]` does not stop at the `;`.
        let mut ret = String::new();
        let mut m = after_params;
        if punct_at(t, m, '-') && punct_at(t, m + 1, '>') {
            let start = m + 2;
            let (mut angle, mut round, mut square) = (0i32, 0i32, 0i32);
            m = start;
            while m < t.len() {
                match t[m].kind {
                    TokKind::Punct('<') => angle += 1,
                    TokKind::Punct('>') if m > 0 && !punct_at(t, m - 1, '-') => angle -= 1,
                    TokKind::Punct('(') => round += 1,
                    TokKind::Punct(')') => round -= 1,
                    TokKind::Punct('[') => square += 1,
                    TokKind::Punct(']') => square -= 1,
                    TokKind::Punct('{') | TokKind::Punct(';')
                        if angle <= 0 && round <= 0 && square <= 0 =>
                    {
                        break;
                    }
                    TokKind::Ident(ref s)
                        if s == "where" && angle <= 0 && round <= 0 && square <= 0 =>
                    {
                        break;
                    }
                    _ => {}
                }
                m += 1;
            }
            ret = render_ty(&t[start..m]);
        }
        // Body: first top-level `{` (or `;` for bodyless declarations)
        // after the signature / `where` clause.
        let mut b = m;
        while b < t.len() && !punct_at(t, b, '{') && !punct_at(t, b, ';') {
            b += 1;
        }
        let body = if punct_at(t, b, '{') {
            let mut depth = 0i32;
            let mut e = b;
            while e < t.len() {
                match t[e].kind {
                    TokKind::Punct('{') => depth += 1,
                    TokKind::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                e += 1;
            }
            Some((b, e))
        } else {
            None
        };
        let impl_type = impls
            .iter()
            .filter(|&&(open, close, _)| open < fn_tok && fn_tok < close)
            .max_by_key(|&&(open, _, _)| open)
            .map(|(_, _, name)| name.clone());
        out.push(FnDef {
            name: name.to_string(),
            impl_type,
            is_pub,
            line,
            fn_tok,
            ret,
            params: parse_params(&t[k + 1..after_params.saturating_sub(1)]),
            body,
        });
        // Keep scanning from just past the parameter list so functions
        // nested inside this body are harvested too.
        i = after_params;
    }
    out
}

fn ident_at(t: &[Tok], i: usize) -> Option<&str> {
    match t.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(t: &[Tok], i: usize, c: char) -> bool {
    matches!(t.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

/// Skips a balanced `( ... )` group starting at `i` (which must be `(`);
/// returns the index past the closing paren.
fn skip_parens(t: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < t.len() {
        match t[j].kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Skips a generic parameter list starting at `i` (which must be `<`);
/// returns the index past the matching `>`. The `>` of a `->` arrow (which
/// lexes as `-` then `>`) does not close the list.
fn skip_generics(t: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < t.len() {
        match t[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') if j == 0 || !punct_at(t, j - 1, '-') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Renders a type token slice back to compact text: identifiers are
/// space-separated from a preceding identifier (`mut u64`), punctuation
/// attaches directly (`&u64`, `Option<Vlba>`). Exact enough for equality
/// tests against `u64`.
fn render_ty(t: &[Tok]) -> String {
    let mut out = String::new();
    let mut prev_word = false;
    for tok in t {
        match &tok.kind {
            TokKind::Ident(s) => {
                if prev_word {
                    out.push(' ');
                }
                out.push_str(s);
                prev_word = true;
            }
            TokKind::Punct(c) => {
                out.push(*c);
                prev_word = false;
            }
            TokKind::Int => {
                if prev_word {
                    out.push(' ');
                }
                out.push('N');
                prev_word = true;
            }
            TokKind::Lifetime => {
                if prev_word {
                    out.push(' ');
                }
                out.push('\'');
                prev_word = false;
            }
            _ => prev_word = false,
        }
    }
    out
}

/// Whether the token at `i` is `pub`; returns the index past the whole
/// visibility qualifier (`pub`, `pub(crate)`, `pub(in foo)`), or `None`.
fn skip_visibility(t: &[Tok], i: usize) -> Option<usize> {
    if ident_at(t, i) != Some("pub") {
        return None;
    }
    if punct_at(t, i + 1, '(') {
        Some(skip_parens(t, i + 1))
    } else {
        Some(i + 1)
    }
}

/// Extracts public function signatures and public struct fields from a
/// scan. Items inside function bodies are not visited (rustc rejects
/// `pub` on locals anyway); nested public items inside `mod` blocks are.
pub fn parse_items(scan: &Scan) -> Items {
    let t = &scan.tokens;
    let mut items = Items::default();
    let mut i = 0usize;
    while i < t.len() {
        let Some(mut j) = skip_visibility(t, i) else {
            i += 1;
            continue;
        };
        // Function qualifiers: `pub const unsafe extern "C" fn`.
        loop {
            match t.get(j).map(|t| &t.kind) {
                Some(TokKind::Ident(s)) if matches!(s.as_str(), "const" | "unsafe" | "async") => {
                    j += 1;
                }
                Some(TokKind::Ident(s)) if s == "extern" => {
                    j += 1;
                    if matches!(t.get(j).map(|t| &t.kind), Some(TokKind::Str)) {
                        j += 1;
                    }
                }
                _ => break,
            }
        }
        match ident_at(t, j) {
            Some("fn") => {
                let fn_line = t[j].line;
                let Some(name) = ident_at(t, j + 1) else {
                    i = j + 1;
                    continue;
                };
                let mut k = j + 2;
                if punct_at(t, k, '<') {
                    k = skip_generics(t, k);
                }
                if !punct_at(t, k, '(') {
                    i = k;
                    continue;
                }
                let close = skip_parens(t, k);
                items.fns.push(PubFn {
                    name: name.to_string(),
                    line: fn_line,
                    params: parse_params(&t[k + 1..close.saturating_sub(1)]),
                });
                i = close;
            }
            Some("struct") => {
                let Some(name) = ident_at(t, j + 1) else {
                    i = j + 1;
                    continue;
                };
                let mut k = j + 2;
                if punct_at(t, k, '<') {
                    k = skip_generics(t, k);
                }
                // Scan past any `where` clause to the body. Tuple structs
                // (`(`) are skipped: their fields are unnamed, and T1 keys
                // on names.
                while k < t.len() && !punct_at(t, k, '{') && !punct_at(t, k, ';') {
                    if punct_at(t, k, '(') {
                        k = skip_parens(t, k);
                    } else {
                        k += 1;
                    }
                }
                if punct_at(t, k, '{') {
                    let end = parse_fields(t, k, name, &mut items.fields);
                    i = end;
                } else {
                    i = k + 1;
                }
            }
            _ => i = j.max(i + 1),
        }
    }
    items
}

/// Parses a parameter list (the tokens strictly between the signature's
/// parens) into named parameters. Receivers (`self`, `&mut self`) have no
/// `name: type` split and are dropped.
fn parse_params(t: &[Tok]) -> Vec<PubFnParam> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut round = 0i32;
    let mut square = 0i32;
    let mut angle = 0i32;
    for j in 0..=t.len() {
        let at_end = j == t.len();
        if !at_end {
            match t[j].kind {
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if j > 0 && !matches!(t[j - 1].kind, TokKind::Punct('-')) => {
                    angle -= 1;
                }
                _ => {}
            }
        }
        let top_comma = !at_end && round == 0 && square == 0 && angle == 0 && punct_at(t, j, ',');
        if top_comma || at_end {
            if let Some(p) = parse_one_param(&t[start..j]) {
                out.push(p);
            }
            start = j + 1;
        }
    }
    out
}

/// One parameter slice → `name: type`, or `None` for receivers/attrs-only.
fn parse_one_param(t: &[Tok]) -> Option<PubFnParam> {
    // Skip leading attributes (`#[...]`).
    let mut s = 0usize;
    while punct_at(t, s, '#') && punct_at(t, s + 1, '[') {
        let mut depth = 0i32;
        let mut j = s + 1;
        while j < t.len() {
            match t[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        s = j;
    }
    let t = &t[s..];
    // The first top-level single `:` (not part of `::`) splits pattern
    // from type; receivers have none.
    let mut colon = None;
    let mut j = 0usize;
    while j < t.len() {
        if punct_at(t, j, ':') {
            if punct_at(t, j + 1, ':') {
                j += 2;
                continue;
            }
            colon = Some(j);
            break;
        }
        j += 1;
    }
    let colon = colon?;
    let (pat, ty) = t.split_at(colon);
    let name_tok = pat.iter().rev().find_map(|tok| match &tok.kind {
        TokKind::Ident(s) if s != "mut" && s != "ref" => Some((s.clone(), tok.line)),
        _ => None,
    })?;
    Some(PubFnParam {
        name: name_tok.0,
        ty: render_ty(&ty[1..]),
        line: name_tok.1,
    })
}

/// Parses named struct fields from the brace group opening at `open`
/// (which must be `{`); pushes public fields and returns the index past
/// the closing brace.
fn parse_fields(t: &[Tok], open: usize, struct_name: &str, out: &mut Vec<PubField>) -> usize {
    // Collect the body slice.
    let mut depth = 0i32;
    let mut close = open;
    while close < t.len() {
        match t[close].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        close += 1;
    }
    let body = &t[open + 1..close];
    // Split the body at top-level commas; each piece is one field decl.
    let mut start = 0usize;
    let (mut round, mut square, mut angle, mut brace) = (0i32, 0i32, 0i32, 0i32);
    for j in 0..=body.len() {
        let at_end = j == body.len();
        if !at_end {
            match body[j].kind {
                TokKind::Punct('(') => round += 1,
                TokKind::Punct(')') => round -= 1,
                TokKind::Punct('[') => square += 1,
                TokKind::Punct(']') => square -= 1,
                TokKind::Punct('{') => brace += 1,
                TokKind::Punct('}') => brace -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>')
                    if j > 0 && !matches!(body[j - 1].kind, TokKind::Punct('-')) =>
                {
                    angle -= 1;
                }
                _ => {}
            }
        }
        let top_comma = !at_end
            && round == 0
            && square == 0
            && angle == 0
            && brace == 0
            && punct_at(body, j, ',');
        if top_comma || at_end {
            parse_one_field(&body[start..j], struct_name, out);
            start = j + 1;
        }
    }
    close + 1
}

/// One field slice → a `PubField` if the field is `pub`-visible.
fn parse_one_field(t: &[Tok], struct_name: &str, out: &mut Vec<PubField>) {
    // Skip attributes.
    let mut s = 0usize;
    while punct_at(t, s, '#') && punct_at(t, s + 1, '[') {
        let mut depth = 0i32;
        let mut j = s + 1;
        while j < t.len() {
            match t[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        s = j;
    }
    let t = &t[s..];
    let Some(after_vis) = skip_visibility(t, 0) else {
        return; // private field — not part of the public API surface
    };
    let (Some(name), true) = (ident_at(t, after_vis), punct_at(t, after_vis + 1, ':')) else {
        return;
    };
    out.push(PubField {
        struct_name: struct_name.to_string(),
        name: name.to_string(),
        ty: render_ty(&t[after_vis + 2..]),
        line: t[after_vis].line,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn items(src: &str) -> Items {
        parse_items(&scan(src))
    }

    #[test]
    fn extracts_pub_fn_params() {
        let it = items("pub fn submit(&mut self, now: SimTime, lba: u64, n: u64) -> bool {}");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "submit");
        let p: Vec<(&str, &str)> = it.fns[0]
            .params
            .iter()
            .map(|p| (p.name.as_str(), p.ty.as_str()))
            .collect();
        assert_eq!(p, vec![("now", "SimTime"), ("lba", "u64"), ("n", "u64")]);
    }

    #[test]
    fn private_fns_and_locals_are_invisible() {
        let it = items("fn helper(lba: u64) {} pub fn f(&self) { let start_lba: u64 = 0; }");
        assert_eq!(it.fns.len(), 1);
        assert!(it.fns[0].params.is_empty());
    }

    #[test]
    fn generics_and_qualifiers_are_skipped() {
        let it = items(
            "pub(crate) const unsafe fn g<T: Into<u64>, const N: usize>(mut slba: T, x: &mut u64) {}",
        );
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "g");
        assert_eq!(it.fns[0].params[0].name, "slba");
        assert_eq!(it.fns[0].params[0].ty, "T");
        assert_eq!(it.fns[0].params[1].ty, "&mut u64");
    }

    #[test]
    fn multi_line_signatures_track_param_lines() {
        let it = items("pub fn f(\n    a: u64,\n    dest_lba: u64,\n) {}");
        assert_eq!(it.fns[0].params[1].name, "dest_lba");
        assert_eq!(it.fns[0].params[1].line, 3);
    }

    #[test]
    fn extracts_pub_struct_fields() {
        let it = items(
            "pub struct Cmd {\n    pub slba: u64,\n    nblocks: u64,\n    pub(crate) id: RequestId,\n}",
        );
        let f: Vec<(&str, &str)> = it
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str()))
            .collect();
        assert_eq!(f, vec![("slba", "u64"), ("id", "RequestId")]);
        assert_eq!(it.fields[0].struct_name, "Cmd");
        assert_eq!(it.fields[0].line, 2);
    }

    #[test]
    fn tuple_and_unit_structs_yield_no_fields() {
        let it = items("pub struct Vlba(pub u64); pub struct Marker; pub struct G<T>(T);");
        assert!(it.fields.is_empty());
    }

    #[test]
    fn fn_types_in_generics_do_not_derail() {
        let it = items("pub fn h<F: Fn(u64) -> u64>(cb: F, lba: u64) {}");
        assert_eq!(it.fns[0].params.len(), 2);
        assert_eq!(it.fns[0].params[1].ty, "u64");
    }

    #[test]
    fn parse_fns_harvests_private_and_impl_fns() {
        let src = "\
fn free(x: u64) -> u64 { x }
pub struct Dev;
impl Dev {
    pub fn submit(&mut self) -> Result<(), ()> { self.tick() }
    fn tick(&mut self) -> Result<(), ()> { Ok(()) }
}
impl std::fmt::Display for Dev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
";
        let fns = parse_fns(&scan(src));
        let v: Vec<(&str, Option<&str>, bool)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.is_pub))
            .collect();
        assert_eq!(
            v,
            vec![
                ("free", None, false),
                ("submit", Some("Dev"), true),
                ("tick", Some("Dev"), false),
                ("fmt", Some("Dev"), false),
            ]
        );
        assert_eq!(fns[1].ret, "Result<(),()>");
        assert!(fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn parse_fns_finds_nested_fns_and_bodyless_decls() {
        let src = "\
pub trait W {
    fn run(&mut self);
    fn name(&self) -> &'static str { \"w\" }
}
fn outer() {
    fn inner(v: u64) -> u64 { v }
    inner(3);
}
";
        let fns = parse_fns(&scan(src));
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["run", "name", "outer", "inner"]);
        assert!(fns[0].body.is_none(), "trait decl has no body");
        assert!(fns[3].body.is_some());
        // `inner`'s body nests inside `outer`'s.
        let (ob, oe) = fns[2].body.unwrap();
        let (ib, ie) = fns[3].body.unwrap();
        assert!(ob < ib && ie < oe);
    }
}
