//! Address-provenance rules (T1-T3).
//!
//! NeSC's isolation argument is that a guest-supplied virtual LBA is
//! translated to a physical LBA *exactly once*, at the extent-tree walk,
//! and that nothing downstream of the walk can be handed an untranslated
//! address. The `Vlba`/`Plba` newtypes in `nesc-extent` carry that
//! provenance in the type system; these rules keep the newtypes honest by
//! flagging the three ways provenance historically leaks:
//!
//! * **T1** — a public API carries an LBA as a raw `u64` (the newtype was
//!   stripped at a crate boundary, so callers can pass either space);
//! * **T2** — a `Plba` is minted (`Plba(..)`) or a newtype is unwrapped
//!   (`.0`) outside the allowlisted boundary modules, i.e. somewhere that
//!   is *not* supposed to be doing translation or wire serialization;
//! * **T3** — byte/block arithmetic is open-coded (`* BLOCK_SIZE` on an
//!   LBA-named value) instead of going through `byte_offset()` /
//!   `from_byte_offset()`, which is how off-by-one-space bugs hide.
//!
//! All three apply only in address-carrying crates
//! ([`LintContext::address_crate`]); T2/T3 are additionally off in
//! boundary modules ([`LintContext::boundary_module`]), where unwrapping
//! is the module's job. Violations elsewhere need a justified
//! `// nesc-lint::allow(T2): <why>` directive, which rule A2/A3 hygiene
//! keeps honest.

use crate::lexer::{Scan, TokKind};
use crate::parser;
use crate::rules::{in_regions, Diagnostic, LintContext, Rule};

/// Whether an identifier names an LBA-carrying value (`lba`, `slba`,
/// `first_lba`, `Vlba`, ...).
fn lba_named(name: &str) -> bool {
    name.to_lowercase().contains("lba")
}

const T1_HINT: &str =
    "type the parameter/field as Vlba or Plba (nesc-extent) so address provenance survives the API boundary";
const T2_HINT: &str =
    "use the newtype helpers (offset/byte_offset/distance_from/translate), or move the conversion into a boundary module, or justify with `// nesc-lint::allow(T2): <why>`";
const T3_HINT: &str =
    "use Vlba/Plba::byte_offset() or Vlba::from_byte_offset() so block↔byte conversion lives in the newtype";

/// Runs T1-T3 over one file, appending raw (pre-suppression) diagnostics.
pub(crate) fn check(
    ctx: &LintContext,
    scan: &Scan,
    tests: &[(u32, u32)],
    raw: &mut Vec<Diagnostic>,
) {
    if !ctx.address_crate || ctx.test_file {
        return;
    }
    let push = |raw: &mut Vec<Diagnostic>, line: u32, rule: Rule, message: String| {
        let hint = match rule {
            Rule::T1 => T1_HINT,
            Rule::T2 => T2_HINT,
            _ => T3_HINT,
        };
        raw.push(Diagnostic {
            path: ctx.path.clone(),
            line,
            rule,
            message,
            hint,
            suppressed: false,
        });
    };

    // ---- T1: raw u64 LBAs in public APIs (item-level) -----------------
    let items = parser::parse_items(scan);
    for f in &items.fns {
        for p in &f.params {
            if lba_named(&p.name) && p.ty == "u64" && !in_regions(tests, p.line) {
                push(
                    raw,
                    p.line,
                    Rule::T1,
                    format!(
                        "raw `u64` carries an LBA across a public API: parameter `{}` of fn `{}`",
                        p.name, f.name
                    ),
                );
            }
        }
    }
    for fld in &items.fields {
        if lba_named(&fld.name) && fld.ty == "u64" && !in_regions(tests, fld.line) {
            push(
                raw,
                fld.line,
                Rule::T1,
                format!(
                    "raw `u64` carries an LBA across a public API: field `{}.{}`",
                    fld.struct_name, fld.name
                ),
            );
        }
    }

    // ---- T2/T3: token-level unwrap / arithmetic patterns --------------
    if ctx.boundary_module {
        return;
    }
    let tokens = &scan.tokens;
    let ident = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize, c: char| -> bool {
        matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    };
    let int = |i: usize| -> bool { matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Int)) };

    for (i, tok) in tokens.iter().enumerate() {
        let line = tok.line;
        if in_regions(tests, line) {
            continue;
        }
        let Some(name) = ident(i) else { continue };

        // T2: minting a physical address outside a boundary module.
        // (`Vlba(..)` is fine — guest-facing entry points create virtual
        // addresses; only the *translated* space is restricted.)
        if name == "Plba" && punct(i + 1, '(') {
            push(
                raw,
                line,
                Rule::T2,
                "physical address minted outside a boundary module: `Plba(..)`".into(),
            );
        }

        // T2: unwrapping the newtype (`vlba.0`, `req.slba.0`).
        if lba_named(name) && name != "Plba" && name != "Vlba" && punct(i + 1, '.') && int(i + 2) {
            push(
                raw,
                line,
                Rule::T2,
                format!("address newtype unwrapped outside a boundary module: `{name}.0`"),
            );
            // T3 tail of the same expression: `lba.0 * BLOCK_SIZE`.
            if punct(i + 3, '*') && ident(i + 4) == Some("BLOCK_SIZE") {
                push(
                    raw,
                    line,
                    Rule::T3,
                    format!("open-coded block→byte conversion: `{name}.0 * BLOCK_SIZE`"),
                );
            }
        }

        // T3: `lba * BLOCK_SIZE` / `BLOCK_SIZE * lba` on a bare value.
        if lba_named(name) && punct(i + 1, '*') && ident(i + 2) == Some("BLOCK_SIZE") {
            push(
                raw,
                line,
                Rule::T3,
                format!("open-coded block→byte conversion: `{name} * BLOCK_SIZE`"),
            );
        }
        if name == "BLOCK_SIZE" && punct(i + 1, '*') {
            if let Some(rhs) = ident(i + 2) {
                if lba_named(rhs) {
                    push(
                        raw,
                        line,
                        Rule::T3,
                        format!("open-coded block→byte conversion: `BLOCK_SIZE * {rhs}`"),
                    );
                }
            }
        }
    }
}
