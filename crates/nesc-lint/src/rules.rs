//! The NeSC determinism rules (D1-D7), address-provenance rules (T1-T3)
//! and suppression hygiene (A1-A3).
//!
//! Every rule is a pattern over the token stream produced by
//! [`crate::lexer`] — the T rules additionally use the item-level view
//! from [`crate::parser`]. See DESIGN.md ("Determinism invariants and how
//! they are enforced" and "Address provenance") for the rationale behind
//! each rule; the short version is that the whole evaluation rests on the
//! simulator being bit-reproducible from a seed and on guest-virtual
//! addresses never crossing the translation boundary untyped, and these
//! are the ways PRs have historically broken those properties in
//! comparable codebases.
//!
//! # Suppressions
//!
//! A violation is suppressed by a comment directive on the same line or on
//! the line(s) directly above:
//!
//! ```text
//! // nesc-lint::allow(D4): reporting-only conversion; never feeds the queue
//! pub fn as_secs_f64(self) -> f64 { ... }
//! ```
//!
//! A directive covers the statement or braced item that begins on the
//! line it governs (one directive above a reporting helper's signature
//! covers the whole helper) — keep directives directly on the offending
//! item, never above a `mod` or `impl` wider than intended.
//!
//! The justification after the `:` is mandatory (rule A2) and a directive
//! that suppresses nothing is itself reported (rule A3), so stale
//! suppressions cannot accumulate.

use std::fmt;

use crate::lexer::{Comment, Scan, Tok, TokKind};

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock time (`Instant::now`, `SystemTime`) in simulated code.
    D1,
    /// Ambient randomness (`rand::`, `thread_rng`, `RandomState`, OS RNGs).
    D2,
    /// Default-hasher `HashMap`/`HashSet` in simulation-state crates.
    D3,
    /// Float types/literals in event-timestamp / scheduling core files.
    D4,
    /// Span/SpanId fabricated outside the `Tracer` implementation.
    D5,
    /// Raw integer literal passed where a sampling interval
    /// (`SimDuration`) is expected, outside the time implementation.
    D6,
    /// Heap-allocating call (`Box::new`, `Vec::new`, `collect()`,
    /// `format!`, `to_vec()`, ...) inside a `// nesc-lint: hot` region of
    /// a device-loop module.
    D7,
    /// Raw `u64` carrying an LBA across a public API in address crates.
    T1,
    /// `Vlba`/`Plba` unwrapped (`.0`) or `Plba` minted outside a boundary
    /// module.
    T2,
    /// Byte/block arithmetic mixing (`* BLOCK_SIZE` on an LBA) outside the
    /// conversion helpers.
    T3,
    /// A `// nesc-lint: guest-input` decode surface producing raw integers
    /// (or bare `Vlba`s) instead of `Untrusted<T>`-quarantined values.
    G1,
    /// `Untrusted::into_unchecked` escaping the quarantine outside a
    /// boundary module (the sanctioned exits are the `validate_*` proofs).
    G2,
    /// A guest-tainted value reaching a translation/DMA/indexing sink with
    /// no bounds-proving validator on the interprocedural path
    /// ([`crate::guest`]).
    G3,
    /// `#[allow(...)]` attribute without an adjacent `// allow:` rationale.
    A1,
    /// `nesc-lint::allow` directive without a justification.
    A2,
    /// `nesc-lint::allow` directive that suppresses nothing (dead).
    A3,
    /// Panic site (`unwrap()`, `expect()`, `panic!`, `unreachable!`,
    /// `todo!`, `assert!`) on the data path — a function reachable from a
    /// data-path entry point in the conservative call graph
    /// ([`crate::callgraph`]).
    P1,
    /// Direct slice indexing (`x[i]`, `&buf[a..b]`) inside a
    /// `// nesc-lint: hot` region of a device-loop module — a latent
    /// panic D7's allocation scan cannot see.
    P2,
    /// Data-path `pub fn` returning `Result<_, String>` / `Result<_, ()>`
    /// / `Result<_, &str>` (or `try_*` returning bare `Option`) where the
    /// crate's typed error enum should travel instead.
    P3,
    /// `use nesc_*` / `nesc_*::` edge that violates the declared crate
    /// layering DAG ([`LAYERING`]).
    L1,
}

impl Rule {
    /// All rules, for iteration and parsing.
    pub const ALL: [Rule; 20] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::D6,
        Rule::D7,
        Rule::T1,
        Rule::T2,
        Rule::T3,
        Rule::G1,
        Rule::G2,
        Rule::G3,
        Rule::A1,
        Rule::A2,
        Rule::A3,
        Rule::P1,
        Rule::P2,
        Rule::P3,
        Rule::L1,
    ];

    /// The rule's id string (`"D1"`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::T1 => "T1",
            Rule::T2 => "T2",
            Rule::T3 => "T3",
            Rule::G1 => "G1",
            Rule::G2 => "G2",
            Rule::G3 => "G3",
            Rule::A1 => "A1",
            Rule::A2 => "A2",
            Rule::A3 => "A3",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::P3 => "P3",
            Rule::L1 => "L1",
        }
    }

    /// Parses `"D1"` etc.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path label (workspace-relative when produced by the driver).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
    /// Whether a justified `nesc-lint::allow` directive suppressed this
    /// diagnostic. [`check`] never returns suppressed entries;
    /// [`check_all`] returns them flagged, for `--format json` consumers
    /// that want the suppression state visible.
    pub suppressed: bool,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (fix: {})",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct LintContext {
    /// Path label used in diagnostics.
    pub path: String,
    /// D4 applies: this file is part of the event-scheduling core
    /// (`nesc-sim`'s `time.rs`, `queue.rs`, `sched.rs`).
    pub scheduling_core: bool,
    /// D5 exempt: this file *is* the tracer implementation.
    pub trace_impl: bool,
    /// D6 exempt: this file *is* the time implementation (`sim/time.rs`),
    /// where `SimDuration` constructors legitimately take raw integers.
    pub time_impl: bool,
    /// D7 applies: this file is part of the device loop (the completion
    /// path that runs once per simulated block), where `// nesc-lint: hot`
    /// markers pin allocation-free regions.
    pub device_loop: bool,
    /// D3/D5/A1 exempt everywhere: the file is test-only (integration
    /// tests, examples are still covered — only `tests/` tree files).
    pub test_file: bool,
    /// T1-T3 apply: the file belongs to an address-carrying crate (one
    /// whose types move vLBAs or pLBAs around).
    pub address_crate: bool,
    /// T2/T3 exempt: the file is an allowlisted boundary module where the
    /// vLBA→pLBA translation (and the newtype plumbing it needs) is
    /// *supposed* to happen.
    pub boundary_module: bool,
    /// L1 applies: the crate this file belongs to, as its `nesc_*`
    /// import name (`"nesc_core"`). Empty for files outside the layered
    /// crate set (tests, examples), where L1 is skipped.
    pub crate_name: String,
}

impl LintContext {
    /// A context with every rule enabled — what fixtures use. The crate
    /// name is `nesc_sim` (the DAG's bottom), so *any* `nesc_*` edge in a
    /// fixture is an upward edge.
    pub fn strict(path: &str) -> Self {
        LintContext {
            path: path.to_string(),
            scheduling_core: true,
            trace_impl: false,
            time_impl: false,
            device_loop: true,
            test_file: false,
            address_crate: true,
            boundary_module: false,
            crate_name: "nesc_sim".to_string(),
        }
    }
}

/// The crate-layering DAG rule L1 enforces: each crate may import (`use
/// nesc_*` or an inline `nesc_*::` path) only the crates listed as its
/// dependencies here. The table mirrors the workspace `Cargo.toml` edges
/// on purpose — `sim` and `pcie`/`extent` sit at the bottom, `hypervisor`
/// and `workloads` at the top, and the harness crates (`bench`) see
/// everything — so an upward or cyclic `use` fails the lint even before
/// Cargo would reject the dependency edge it implies.
pub const LAYERING: &[(&str, &[&str])] = &[
    ("nesc_sim", &[]),
    ("nesc_pcie", &["nesc_sim"]),
    ("nesc_extent", &["nesc_pcie"]),
    ("nesc_storage", &["nesc_sim", "nesc_extent"]),
    ("nesc_virtio", &["nesc_sim", "nesc_pcie", "nesc_extent"]),
    (
        "nesc_core",
        &["nesc_sim", "nesc_pcie", "nesc_storage", "nesc_extent"],
    ),
    (
        "nesc_fs",
        &["nesc_extent", "nesc_pcie", "nesc_storage", "nesc_sim"],
    ),
    (
        "nesc_nvme",
        &[
            "nesc_sim",
            "nesc_pcie",
            "nesc_core",
            "nesc_storage",
            "nesc_extent",
        ],
    ),
    (
        "nesc_accel",
        &[
            "nesc_sim",
            "nesc_pcie",
            "nesc_core",
            "nesc_storage",
            "nesc_extent",
        ],
    ),
    (
        "nesc_hypervisor",
        &[
            "nesc_sim",
            "nesc_pcie",
            "nesc_storage",
            "nesc_extent",
            "nesc_fs",
            "nesc_core",
            "nesc_virtio",
        ],
    ),
    (
        "nesc_workloads",
        &[
            "nesc_sim",
            "nesc_hypervisor",
            "nesc_storage",
            "nesc_fs",
            "nesc_core",
        ],
    ),
    (
        "nesc_bench",
        &[
            "nesc_sim",
            "nesc_pcie",
            "nesc_storage",
            "nesc_extent",
            "nesc_fs",
            "nesc_core",
            "nesc_virtio",
            "nesc_hypervisor",
            "nesc_workloads",
            "nesc_nvme",
            "nesc_accel",
        ],
    ),
    ("nesc_lint", &[]),
];

/// The crates `who` may import under the layering DAG; `None` if `who` is
/// not a layered crate (L1 then stays silent).
pub fn allowed_imports(who: &str) -> Option<&'static [&'static str]> {
    LAYERING
        .iter()
        .find(|(name, _)| *name == who)
        .map(|(_, deps)| *deps)
}

/// A parsed `nesc-lint::allow(...)` directive.
#[derive(Debug)]
struct Directive {
    /// Line the comment sits on.
    comment_line: u32,
    /// First line of code the directive governs.
    target_line: u32,
    /// Last covered line: the governed line itself for a plain statement,
    /// or the closing brace of the item that opens on the governed line
    /// (so one directive above `pub fn as_secs_f64(...) -> f64 {` covers
    /// the whole reporting helper, not just its signature).
    end_line: u32,
    /// Rules it suppresses.
    rules: Vec<Rule>,
    /// Whether a non-empty justification followed the rule list.
    justified: bool,
    /// How many diagnostics it actually suppressed.
    used: u32,
}

/// The last line of the statement or braced item starting at `from_line`:
/// the matching `}` of the first `{` encountered, or `from_line` itself if
/// a top-level `;` (or nothing) comes first.
fn item_end_line(tokens: &[Tok], from_line: u32) -> u32 {
    let Some(start) = tokens.iter().position(|t| t.line >= from_line) else {
        return from_line;
    };
    let mut depth = 0i32;
    for t in &tokens[start..] {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth <= 0 {
                    return t.line;
                }
            }
            TokKind::Punct(';') if depth == 0 => return t.line,
            _ => {}
        }
    }
    tokens.last().map(|t| t.line).unwrap_or(from_line)
}

const DIRECTIVE: &str = "nesc-lint::allow(";

/// The hot-region marker: a plain comment whose whole text is exactly
/// `nesc-lint: hot`. It governs the statement or braced item that begins
/// on the next code line (attributes like `#[inline]` between the marker
/// and the `fn` are part of the item), through that item's closing brace
/// — the same coverage rule suppression directives use.
const HOT_MARKER: &str = "nesc-lint: hot";

/// Line ranges `(first, last)` governed by a plain-comment marker whose
/// whole text is exactly `marker` — the region-pinning machinery shared
/// by `// nesc-lint: hot` (D7/P2) and `// nesc-lint: guest-input` (the G
/// rules, [`crate::guest`]). Doc comments never open a region, so
/// documentation *showing* a marker does not arm anything.
pub(crate) fn marker_regions(
    comments: &[Comment],
    tokens: &[Tok],
    marker: &str,
) -> Vec<(u32, u32)> {
    let mut code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    code_lines.dedup();
    let mut out = Vec::new();
    for c in comments {
        if c.doc || c.text != marker {
            continue;
        }
        let start = match code_lines.binary_search(&(c.line + 1)) {
            Ok(i) => code_lines[i],
            Err(i) => match code_lines.get(i) {
                Some(&l) => l,
                None => continue, // trailing marker with no item after it
            },
        };
        out.push((start, item_end_line(tokens, start)));
    }
    out
}

/// Line ranges pinned allocation-free by `// nesc-lint: hot` markers.
fn hot_regions(comments: &[Comment], tokens: &[Tok]) -> Vec<(u32, u32)> {
    marker_regions(comments, tokens, HOT_MARKER)
}

/// Parses suppression directives out of the comment list. `line_has_code`
/// maps a line number to whether any token sits on it — a trailing
/// directive governs its own line, a standalone one governs the next line
/// that has code.
fn parse_directives(comments: &[Comment], tokens: &[Tok]) -> Vec<Directive> {
    let mut code_lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
    code_lines.dedup();
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find(DIRECTIVE) else {
            continue;
        };
        let rest = &c.text[at + DIRECTIVE.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<Rule> = rest[..close]
            .split(',')
            .filter_map(|s| Rule::parse(s.trim()))
            .collect();
        if rules.is_empty() {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let justified = after
            .strip_prefix(':')
            .map(|j| !j.trim().is_empty())
            .unwrap_or(false);
        let target_line = if code_lines.binary_search(&c.line).is_ok() {
            c.line
        } else {
            match code_lines.binary_search(&(c.line + 1)) {
                Ok(i) => code_lines[i],
                Err(i) => code_lines.get(i).copied().unwrap_or(c.line),
            }
        };
        out.push(Directive {
            comment_line: c.line,
            target_line,
            end_line: item_end_line(tokens, target_line),
            rules,
            justified,
            used: 0,
        });
    }
    out
}

/// Line ranges covered by `#[cfg(test)]` items (and the item after a bare
/// `#[test]` attribute): `(first_line, last_line)` inclusive.
pub(crate) fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_attr_start(tokens, i, &["cfg", "(", "test"])
            || is_attr_start(tokens, i, &["test", "]"])
        {
            let start_line = tokens[i].line;
            // Find the end of the annotated item: the matching `}` of its
            // first brace, or the first top-level `;` before any brace.
            let mut j = i;
            // Skip past this attribute's closing bracket first.
            let mut bracket = 0;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => bracket += 1,
                    TokKind::Punct(']') => {
                        bracket -= 1;
                        if bracket == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let mut brace = 0i32;
            let mut end_line = start_line;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('{') => brace += 1,
                    TokKind::Punct('}') => {
                        brace -= 1;
                        if brace == 0 {
                            end_line = tokens[j].line;
                            break;
                        }
                    }
                    TokKind::Punct(';') if brace == 0 => {
                        end_line = tokens[j].line;
                        break;
                    }
                    _ => {}
                }
                end_line = tokens[j].line;
                j += 1;
            }
            regions.push((start_line, end_line));
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    regions
}

/// Whether tokens at `i` begin `#[` followed by the given ident/punct
/// sequence (e.g. `#[cfg(test` or `#[test]`); `#![...]` also matches.
fn is_attr_start(tokens: &[Tok], i: usize, pat: &[&str]) -> bool {
    let TokKind::Punct('#') = tokens[i].kind else {
        return false;
    };
    let mut j = i + 1;
    if matches!(tokens.get(j).map(|t| &t.kind), Some(TokKind::Punct('!'))) {
        j += 1;
    }
    if !matches!(tokens.get(j).map(|t| &t.kind), Some(TokKind::Punct('['))) {
        return false;
    }
    j += 1;
    for p in pat {
        let ok = match tokens.get(j).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => s == p,
            Some(TokKind::Punct(c)) => p.len() == 1 && p.starts_with(*c),
            _ => false,
        };
        if !ok {
            return false;
        }
        j += 1;
    }
    true
}

pub(crate) fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Keywords that, directly before a `[`, make it a non-expression context
/// (array literal, type, slice pattern) rather than an index — shared by
/// the P2 hot-indexing rule and the G3 guest-index sink.
pub(crate) fn nonindex_keyword(base: &str) -> bool {
    matches!(
        base,
        "let"
            | "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "as"
            | "move"
            | "for"
            | "while"
            | "loop"
            | "dyn"
            | "impl"
            | "fn"
            | "use"
            | "pub"
            | "const"
            | "static"
            | "type"
            | "enum"
            | "struct"
            | "trait"
            | "mod"
            | "unsafe"
            | "where"
            | "box"
    )
}

/// Counts top-level generic arguments after an opening `<` at `tokens[i]`.
/// Returns `(arg_count, index_past_closing)`; `None` if no `<` at `i`.
fn generic_arg_count(tokens: &[Tok], i: usize) -> Option<(usize, usize)> {
    if !matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        return None;
    }
    let mut depth = 1i32;
    let mut round = 0i32;
    let mut square = 0i32;
    let mut commas = 0usize;
    let mut saw_any = false;
    let mut j = i + 1;
    while j < tokens.len() && depth > 0 {
        match tokens[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => depth -= 1,
            TokKind::Punct('(') => round += 1,
            TokKind::Punct(')') => round -= 1,
            TokKind::Punct('[') => square += 1,
            TokKind::Punct(']') => square -= 1,
            TokKind::Punct(',') if depth == 1 && round == 0 && square == 0 => commas += 1,
            TokKind::Punct(';') | TokKind::Punct('{') if depth == 1 => {
                // `a < b;` — this was a comparison, not generics.
                return None;
            }
            _ => saw_any = true,
        }
        j += 1;
    }
    if depth != 0 || !saw_any {
        return None;
    }
    Some((commas + 1, j))
}

/// Runs every applicable rule over one file's scan, returning only the
/// *active* diagnostics (directive-suppressed ones are dropped).
pub fn check(ctx: &LintContext, scan: &Scan) -> Vec<Diagnostic> {
    check_all(ctx, scan)
        .into_iter()
        .filter(|d| !d.suppressed)
        .collect()
}

/// Like [`check`], but keeps directive-suppressed diagnostics in the
/// output with [`Diagnostic::suppressed`] set — what `--format json`
/// reports, so suppression state is auditable downstream.
///
/// Single-file entry point: the call-graph rules (P1/P3) need the whole
/// workspace and run only through [`crate::lint_files_all`].
pub fn check_all(ctx: &LintContext, scan: &Scan) -> Vec<Diagnostic> {
    finish(ctx, scan, raw_diags(ctx, scan))
}

/// Token-pattern + provenance diagnostics, pre-suppression. The
/// workspace driver appends call-graph (P1/P3) diagnostics to this list
/// before [`finish`] applies directives, so `allow(P1)` suppresses and
/// counts as used like every other rule.
pub(crate) fn raw_diags(ctx: &LintContext, scan: &Scan) -> Vec<Diagnostic> {
    let tokens = &scan.tokens;
    let tests = test_regions(tokens);
    let hot = hot_regions(&scan.comments, tokens);
    let mut raw: Vec<Diagnostic> = Vec::new();

    let push =
        |raw: &mut Vec<Diagnostic>, line: u32, rule: Rule, message: String, hint: &'static str| {
            raw.push(Diagnostic {
                path: ctx.path.clone(),
                line,
                rule,
                message,
                hint,
                suppressed: false,
            });
        };

    let ident = |i: usize| -> Option<&str> {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize, c: char| -> bool {
        matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    };

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        let exempt_nontiming = ctx.test_file || in_regions(&tests, line);
        match &tokens[i].kind {
            TokKind::Ident(name) => match name.as_str() {
                // ---- D1: wall-clock time ------------------------------
                "Instant"
                    if punct(i + 1, ':') && punct(i + 2, ':') && ident(i + 3) == Some("now") =>
                {
                    push(
                        &mut raw,
                        line,
                        Rule::D1,
                        "wall-clock read: `Instant::now()` in simulated code".into(),
                        "derive timing from SimTime; wall-clock belongs only in annotated bench harness sites",
                    );
                }
                "SystemTime" | "UNIX_EPOCH" => {
                    push(
                        &mut raw,
                        line,
                        Rule::D1,
                        format!("wall-clock source `{name}` in simulated code"),
                        "derive timing from SimTime; wall-clock belongs only in annotated bench harness sites",
                    );
                }
                // ---- D2: ambient randomness ---------------------------
                "rand" if punct(i + 1, ':') && punct(i + 2, ':') => {
                    push(
                        &mut raw,
                        line,
                        Rule::D2,
                        "ambient randomness: `rand::` path".into(),
                        "route all randomness through nesc-sim's seeded SimRng",
                    );
                }
                "thread_rng" | "OsRng" | "getrandom" | "from_entropy" => {
                    push(
                        &mut raw,
                        line,
                        Rule::D2,
                        format!("ambient randomness: `{name}`"),
                        "route all randomness through nesc-sim's seeded SimRng",
                    );
                }
                "RandomState" => {
                    push(
                        &mut raw,
                        line,
                        Rule::D2,
                        "per-process random hasher state: `RandomState`".into(),
                        "use BTreeMap or the workspace IntHasher (nesc_sim::IntHashBuilder)",
                    );
                }
                // ---- D3: default-hasher maps --------------------------
                "HashMap" | "HashSet" if !exempt_nontiming => {
                    let want = if name == "HashMap" { 3 } else { 2 };
                    let mut j = i + 1;
                    // `HashMap::<...>::new` turbofish or `HashMap::new`.
                    let turbofish = punct(j, ':') && punct(j + 1, ':') && punct(j + 2, '<');
                    if turbofish {
                        j += 2;
                    }
                    if let Some((args, _)) = generic_arg_count(tokens, j) {
                        if args < want {
                            push(
                                &mut raw,
                                line,
                                Rule::D3,
                                format!(
                                    "default-hasher `{name}` ({args} generic arg{}) in simulation-state code",
                                    if args == 1 { "" } else { "s" }
                                ),
                                "use BTreeMap/BTreeSet, or name a deterministic hasher (nesc_sim::IntHashBuilder) and iterate sorted",
                            );
                        }
                    } else if punct(j, ':') && punct(j + 1, ':') {
                        // std only defines `new`/`with_capacity` for the
                        // RandomState hasher, so these constructors prove a
                        // default-hashed map. `default()` is NOT flagged: it
                        // is how explicit-hasher maps are built, and the
                        // binding's 2-arg type annotation is caught above.
                        if let Some(ctor) = ident(j + 2) {
                            if matches!(ctor, "new" | "with_capacity") {
                                push(
                                    &mut raw,
                                    line,
                                    Rule::D3,
                                    format!("default-hasher `{name}::{ctor}` in simulation-state code"),
                                    "use BTreeMap/BTreeSet, or name a deterministic hasher (nesc_sim::IntHashBuilder) and iterate sorted",
                                );
                            }
                        }
                    }
                }
                // ---- D4: floats in scheduling core --------------------
                "f64" | "f32" if ctx.scheduling_core && !exempt_nontiming => {
                    push(
                        &mut raw,
                        line,
                        Rule::D4,
                        format!("float type `{name}` in event-timestamp/scheduling code"),
                        "keep simulated time in integer nanoseconds; floats are for annotated reporting helpers only",
                    );
                }
                // ---- D5: orphan span construction ---------------------
                "Span" if !ctx.trace_impl && !exempt_nontiming && punct(i + 1, '{') => {
                    push(
                        &mut raw,
                        line,
                        Rule::D5,
                        "orphan span: `Span { .. }` constructed outside the Tracer".into(),
                        "emit spans via Tracer::start/span so ids stay sequential and trees stay golden-stable",
                    );
                }
                "SpanId" if !ctx.trace_impl && !exempt_nontiming && punct(i + 1, '(') => {
                    // `SpanId(0)` / `SpanId(7)` fabricate ids; `SpanId::NONE`
                    // and plain type uses are fine.
                    if matches!(
                        tokens.get(i + 2).map(|t| &t.kind),
                        Some(TokKind::Int) | Some(TokKind::Float)
                    ) {
                        push(
                            &mut raw,
                            line,
                            Rule::D5,
                            "orphan span id: `SpanId(<literal>)` fabricated outside the Tracer"
                                .into(),
                            "use ids returned by Tracer::start (or SpanId::NONE for 'no span')",
                        );
                    }
                }
                // ---- D7: heap allocation in hot regions ---------------
                // Constructor paths that allocate (or exist to be grown):
                // `Box::new`, `Vec::with_capacity`, `Vec::<T>::new`
                // turbofish included, `String::from`, ...
                "Box" | "Vec" | "VecDeque" | "String" | "BTreeMap" | "BTreeSet"
                    if ctx.device_loop
                        && !exempt_nontiming
                        && in_regions(&hot, line)
                        && punct(i + 1, ':')
                        && punct(i + 2, ':') =>
                {
                    let j = match generic_arg_count(tokens, i + 3) {
                        Some((_, past)) if punct(past, ':') && punct(past + 1, ':') => past + 2,
                        _ => i + 3,
                    };
                    if matches!(ident(j), Some("new" | "with_capacity" | "from"))
                        && punct(j + 1, '(')
                    {
                        push(
                            &mut raw,
                            line,
                            Rule::D7,
                            format!(
                                "heap allocation in hot region: `{name}::{}`",
                                ident(j).unwrap_or("?")
                            ),
                            "hoist the buffer out of the device loop and reuse it; the alloc_steady harness asserts the steady state allocates nothing",
                        );
                    }
                }
                // Allocating macros.
                "vec" | "format"
                    if ctx.device_loop
                        && !exempt_nontiming
                        && in_regions(&hot, line)
                        && punct(i + 1, '!') =>
                {
                    push(
                        &mut raw,
                        line,
                        Rule::D7,
                        format!("heap allocation in hot region: `{name}!`"),
                        "hoist the buffer out of the device loop and reuse it; the alloc_steady harness asserts the steady state allocates nothing",
                    );
                }
                // Allocating method calls: `.collect()` into a fresh
                // container (turbofish included), owned copies.
                "collect" | "to_vec" | "to_owned" | "to_string"
                    if ctx.device_loop
                        && !exempt_nontiming
                        && in_regions(&hot, line)
                        && i > 0
                        && matches!(tokens[i - 1].kind, TokKind::Punct('.'))
                        && (punct(i + 1, '(') || (punct(i + 1, ':') && punct(i + 2, ':'))) =>
                {
                    push(
                        &mut raw,
                        line,
                        Rule::D7,
                        format!("heap allocation in hot region: `.{name}()`"),
                        "hoist the buffer out of the device loop and reuse it; the alloc_steady harness asserts the steady state allocates nothing",
                    );
                }
                // ---- D6: raw interval literals ------------------------
                // Any call whose name mentions "interval" taking a bare
                // integer literal — `.interval(50)`, `set_interval(1000)`,
                // `windowed_interval(25)` — hides the unit. Like D1/D2 it
                // applies in tests too: a mis-scaled interval makes a test
                // silently sample nothing.
                n if !ctx.time_impl
                    && n.to_ascii_lowercase().contains("interval")
                    && punct(i + 1, '(')
                    && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(TokKind::Int)) =>
                {
                    push(
                        &mut raw,
                        line,
                        Rule::D6,
                        format!(
                            "raw integer literal passed to `{n}(...)` where a sampling interval is expected"
                        ),
                        "pass a SimDuration (from_nanos/from_micros/from_millis) so the unit is explicit",
                    );
                }
                // ---- L1: crate-layering violations ---------------------
                // Any `use nesc_x` import or inline `nesc_x::` path is a
                // dependency edge; it must exist in the declared DAG.
                n if n.starts_with("nesc_")
                    && !ctx.crate_name.is_empty()
                    && *n != ctx.crate_name
                    && !exempt_nontiming
                    && ((punct(i + 1, ':') && punct(i + 2, ':'))
                        || (i > 0
                            && matches!(&tokens[i - 1].kind, TokKind::Ident(k) if k == "use"))) =>
                {
                    if let Some(deps) = allowed_imports(&ctx.crate_name) {
                        if !deps.contains(&n) {
                            push(
                                &mut raw,
                                line,
                                Rule::L1,
                                format!(
                                    "layering violation: `{}` must not depend on `{n}`",
                                    ctx.crate_name
                                ),
                                "keep crate edges on the declared DAG (rules.rs LAYERING); move the shared type down a layer instead",
                            );
                        }
                    }
                }
                _ => {}
            },
            TokKind::Float if ctx.scheduling_core && !exempt_nontiming => {
                push(
                    &mut raw,
                    line,
                    Rule::D4,
                    "float literal in event-timestamp/scheduling code".into(),
                    "keep simulated time in integer nanoseconds; floats are for annotated reporting helpers only",
                );
            }
            // ---- P2: direct slice indexing in hot regions -------------
            // `x[i]` / `&buf[a..b]` after an identifier or a closing
            // bracket is an index expression — a latent panic the D7
            // allocation scan cannot see. Array literals (`= [0; 4]`),
            // types (`: [u8; 4]`), attributes (`#[..]`) and slice
            // patterns (`for [a, b] in`) have non-expression contexts
            // before the `[` and stay clean.
            TokKind::Punct('[')
                if ctx.device_loop
                    && !exempt_nontiming
                    && in_regions(&hot, line)
                    && i > 0
                    && match &tokens[i - 1].kind {
                        TokKind::Punct(')') | TokKind::Punct(']') => true,
                        TokKind::Ident(base) => !nonindex_keyword(base),
                        _ => false,
                    } =>
            {
                push(
                    &mut raw,
                    line,
                    Rule::P2,
                    "direct slice indexing in a hot region".into(),
                    "index with .get()/.get_mut() or iterate; a hot-path out-of-bounds must surface as an error, not a panic",
                );
            }
            // ---- A1: unexplained #[allow] attributes ------------------
            TokKind::Punct('#') if !exempt_nontiming && is_attr_start(tokens, i, &["allow"]) => {
                let explained = scan.comments.iter().any(|c| {
                    let t = c.text.trim();
                    !c.doc
                        && (t.starts_with("allow:") || t.contains(DIRECTIVE))
                        && (c.line == line || (c.line < line && line - c.line <= 3))
                });
                if !explained {
                    push(
                        &mut raw,
                        line,
                        Rule::A1,
                        "`#[allow(...)]` without an adjacent `// allow: <why>` rationale".into(),
                        "add `// allow: <reason>` directly above the attribute, or remove a stale allow",
                    );
                }
            }
            _ => {}
        }
    }

    // The provenance (T1-T3) and guest-taint (G1/G2) passes contribute raw
    // diagnostics *before* suppression is applied, so boundary-justified
    // `allow(T2)` / `allow(G2)` directives both suppress them and count as
    // used. (G3 is interprocedural and joins through the workspace driver,
    // like P1/P3.)
    crate::provenance::check(ctx, scan, &tests, &mut raw);
    crate::guest::check_file(ctx, scan, &tests, &mut raw);
    raw
}

/// Applies suppression directives to `raw`, emits the A2/A3 hygiene
/// diagnostics, and sorts by `(line, rule, suppressed)`.
pub(crate) fn finish(ctx: &LintContext, scan: &Scan, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let tokens = &scan.tokens;
    let mut directives = parse_directives(&scan.comments, tokens);

    // Apply suppressions: a directive marks same-rule diagnostics on its
    // target line (and on its own comment line, for trailing directives)
    // as suppressed.
    let mut out: Vec<Diagnostic> = Vec::new();
    for mut d in raw {
        let suppressed = directives.iter_mut().find(|dir| {
            dir.rules.contains(&d.rule)
                && d.line >= dir.target_line.min(dir.comment_line)
                && d.line <= dir.end_line
        });
        if let Some(dir) = suppressed {
            dir.used += 1;
            d.suppressed = true;
        }
        out.push(d);
    }

    // A2/A3: directive hygiene.
    for dir in &directives {
        if !dir.justified {
            out.push(Diagnostic {
                path: ctx.path.clone(),
                line: dir.comment_line,
                rule: Rule::A2,
                message: "suppression without a justification".into(),
                hint: "write `// nesc-lint::allow(Dx): <non-empty reason>`",
                suppressed: false,
            });
        }
        if dir.used == 0 {
            out.push(Diagnostic {
                path: ctx.path.clone(),
                line: dir.comment_line,
                rule: Rule::A3,
                message: format!(
                    "dead suppression: nothing on line {} violates {}",
                    dir.target_line,
                    dir.rules
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                hint: "delete the stale directive",
                suppressed: false,
            });
        }
    }

    out.sort_by_key(|a| (a.line, a.rule, a.suppressed));
    out
}
