//! Media timing models.
//!
//! A media model answers one question: a transfer of `bytes` arriving at
//! `now` occupies the medium during which interval? Three models are
//! provided:
//!
//! * [`RamMedia`] — the prototype's DDR3: a fixed access latency plus a
//!   bandwidth-limited channel, optionally *throttled* to a lower target
//!   bandwidth exactly like the ramdisk throttling used for the paper's
//!   Fig. 2 device-speed sweep.
//! * [`FlashMedia`] — a multi-channel NAND model (page-granular latencies,
//!   channel striping) used by the extension studies.
//! * [`Media`] — an enum over the two so devices can hold either.

use nesc_sim::{ServiceUnit, SimDuration, SimTime};

use crate::request::BlockOp;

/// Service interval on the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaService {
    /// When the medium started the transfer.
    pub start: SimTime,
    /// When the data is on the medium (write) or in the device buffer (read).
    pub end: SimTime,
}

/// DRAM-backed medium (the VC707's 1 GB DDR3), optionally throttled.
///
/// # Example
///
/// ```
/// use nesc_storage::{RamMedia, BlockOp};
/// use nesc_sim::SimTime;
///
/// let mut ram = RamMedia::vc707_ddr3();
/// let svc = ram.access(SimTime::ZERO, BlockOp::Read, 0, 4096);
/// assert!(svc.end > svc.start);
///
/// // Fig. 2 style throttling to 500 MB/s:
/// ram.set_throttle(Some(500_000_000));
/// let slow = ram.access(svc.end, BlockOp::Read, 0, 4096);
/// assert!((slow.end - slow.start) > (svc.end - svc.start));
/// ```
#[derive(Debug, Clone)]
pub struct RamMedia {
    access_latency: SimDuration,
    peak_bytes_per_sec: u64,
    throttle_bytes_per_sec: Option<u64>,
    channel: ServiceUnit,
}

impl RamMedia {
    /// Creates a DRAM medium. A zero bandwidth (a contract violation) is
    /// treated as 1 B/s.
    pub fn new(access_latency: SimDuration, peak_bytes_per_sec: u64) -> Self {
        debug_assert!(peak_bytes_per_sec > 0, "bandwidth must be positive");
        RamMedia {
            access_latency,
            peak_bytes_per_sec: peak_bytes_per_sec.max(1),
            throttle_bytes_per_sec: None,
            channel: ServiceUnit::new(),
        }
    }

    /// The prototype's medium: DDR3-800 on the VC707 (~6.4 GB/s peak,
    /// ~60 ns access).
    pub fn vc707_ddr3() -> Self {
        RamMedia::new(SimDuration::from_nanos(60), 6_400_000_000)
    }

    /// A host ramdisk as used in Fig. 2 (system DDR3-1333, ~10.6 GB/s).
    pub fn host_ramdisk() -> Self {
        RamMedia::new(SimDuration::from_nanos(50), 10_600_000_000)
    }

    /// Sets (or clears) a bandwidth throttle in bytes/second, emulating a
    /// device of that speed — the method behind the paper's Fig. 2. A zero
    /// throttle (a contract violation) is treated as 1 B/s.
    pub fn set_throttle(&mut self, bytes_per_sec: Option<u64>) {
        debug_assert!(
            bytes_per_sec.is_none_or(|b| b > 0),
            "throttle bandwidth must be positive"
        );
        self.throttle_bytes_per_sec = bytes_per_sec.map(|b| b.max(1));
    }

    /// The effective bandwidth after throttling.
    pub fn effective_bandwidth(&self) -> u64 {
        match self.throttle_bytes_per_sec {
            Some(t) => t.min(self.peak_bytes_per_sec),
            None => self.peak_bytes_per_sec,
        }
    }

    /// Serves a transfer of `bytes` at byte address `addr` (DRAM has no
    /// locality structure, so the address is ignored); reads and writes
    /// cost the same.
    pub fn access(&mut self, now: SimTime, _op: BlockOp, _addr: u64, bytes: u64) -> MediaService {
        let dur = self.access_latency + SimDuration::for_bytes(bytes, self.effective_bandwidth());
        let svc = self.channel.serve(now, dur);
        MediaService {
            start: svc.start,
            end: svc.end,
        }
    }

    /// Serves a run of equal-size transfers in arrival order: `times[j]` is
    /// the `j`-th arrival time on entry and its completion time on return.
    /// Identical to calling [`access`] per element (DRAM timing depends on
    /// neither op nor address, so the duration is computed once).
    ///
    /// [`access`]: RamMedia::access
    pub fn access_run(&mut self, _op: BlockOp, bytes_each: u64, times: &mut [SimTime]) {
        let dur =
            self.access_latency + SimDuration::for_bytes(bytes_each, self.effective_bandwidth());
        self.channel.serve_run(dur, times);
    }

    /// Cumulative busy time of the medium.
    pub fn busy_time(&self) -> SimDuration {
        self.channel.busy_time()
    }
}

/// Multi-channel NAND flash medium.
///
/// Transfers are striped over channels at page granularity; each page pays
/// the array read/program latency on its channel, plus transfer time on the
/// channel bus. This is intentionally first-order (no FTL, no GC): the
/// extension studies only need a medium with flash-like asymmetry and
/// internal parallelism.
#[derive(Debug, Clone)]
pub struct FlashMedia {
    page_bytes: u64,
    read_latency: SimDuration,
    program_latency: SimDuration,
    channel_bytes_per_sec: u64,
    channels: Vec<ServiceUnit>,
    /// Recently buffered page ids (controller page buffers): sub-page
    /// accesses to a buffered page skip the array latency. FIFO.
    page_buffer: std::collections::VecDeque<u64>,
    page_buffer_entries: usize,
}

impl FlashMedia {
    /// Creates a flash medium with `channels` independent channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero, `page_bytes` is zero, or the channel
    /// bandwidth is zero.
    pub fn new(
        channels: usize,
        page_bytes: u64,
        read_latency: SimDuration,
        program_latency: SimDuration,
        channel_bytes_per_sec: u64,
    ) -> Self {
        assert!(channels > 0, "flash needs at least one channel");
        assert!(page_bytes > 0, "page size must be positive");
        assert!(
            channel_bytes_per_sec > 0,
            "channel bandwidth must be positive"
        );
        FlashMedia {
            page_bytes,
            read_latency,
            program_latency,
            channel_bytes_per_sec,
            channels: vec![ServiceUnit::new(); channels],
            page_buffer: std::collections::VecDeque::new(),
            page_buffer_entries: 2 * channels,
        }
    }

    /// A multi-GB/s PCIe SSD in the spirit of the devices the paper cites
    /// (refs \[6\], \[7\]): 16 channels, 4 KiB pages, 25 µs read / 200 µs program,
    /// 800 MB/s per channel — roughly a 2 GB/s-class enterprise drive.
    pub fn pcie_ssd() -> Self {
        FlashMedia::new(
            16,
            4096,
            SimDuration::from_micros(25),
            SimDuration::from_micros(200),
            800_000_000,
        )
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Cumulative busy time summed over all channels.
    pub fn busy_time(&self) -> SimDuration {
        self.channels.iter().map(|c| c.busy_time()).sum()
    }

    /// Serves a transfer of `bytes` at byte address `addr`, striping pages
    /// across channels by address; the returned interval ends when the
    /// *last* page completes. Sub-page accesses that hit the controller's
    /// page buffer skip the array latency (how real SSDs serve a run of
    /// 1 KiB blocks out of one 4 KiB page read).
    pub fn access(&mut self, now: SimTime, op: BlockOp, addr: u64, bytes: u64) -> MediaService {
        let array_latency = match op {
            BlockOp::Read => self.read_latency,
            BlockOp::Write => self.program_latency,
        };
        let first_page = addr / self.page_bytes;
        let last_page = (addr + bytes.max(1) - 1) / self.page_bytes;
        let mut first_start = SimTime::MAX;
        let mut last_end = SimTime::ZERO;
        for page in first_page..=last_page {
            let ch = (page % self.channels.len() as u64) as usize;
            let transfer = SimDuration::for_bytes(self.page_bytes, self.channel_bytes_per_sec);
            let buffered = self.page_buffer.contains(&page);
            let dur = if buffered {
                transfer
            } else {
                array_latency + transfer
            };
            if !buffered {
                if self.page_buffer.len() == self.page_buffer_entries {
                    self.page_buffer.pop_front();
                }
                self.page_buffer.push_back(page);
            }
            let svc = self.channels[ch].serve(now, dur);
            first_start = first_start.min(svc.start);
            last_end = last_end.max(svc.end);
        }
        MediaService {
            start: first_start,
            end: last_end,
        }
    }
}

/// Any supported medium.
#[derive(Debug, Clone)]
pub enum Media {
    /// DRAM (optionally throttled).
    Ram(RamMedia),
    /// Multi-channel NAND flash.
    Flash(FlashMedia),
}

impl Media {
    /// Serves a transfer of `bytes` at byte address `addr`.
    pub fn access(&mut self, now: SimTime, op: BlockOp, addr: u64, bytes: u64) -> MediaService {
        match self {
            Media::Ram(m) => m.access(now, op, addr, bytes),
            Media::Flash(m) => m.access(now, op, addr, bytes),
        }
    }

    /// Serves a run of equal-size transfers at consecutive addresses
    /// (`addr + j * addr_stride`): `times[j]` is the `j`-th arrival time on
    /// entry and its completion time on return. Exactly equivalent to one
    /// [`access`] per element in the same order — DRAM takes a batched fast
    /// path (its timing is address-independent), flash replays the per-page
    /// state machine element by element.
    ///
    /// [`access`]: Media::access
    pub fn access_run(
        &mut self,
        op: BlockOp,
        addr: u64,
        addr_stride: u64,
        bytes_each: u64,
        times: &mut [SimTime],
    ) {
        match self {
            Media::Ram(m) => m.access_run(op, bytes_each, times),
            Media::Flash(m) => {
                for (j, t) in times.iter_mut().enumerate() {
                    *t = m
                        .access(*t, op, addr + j as u64 * addr_stride, bytes_each)
                        .end;
                }
            }
        }
    }

    /// Sets the Fig. 2-style throttle; no-op on flash.
    pub fn set_throttle(&mut self, bytes_per_sec: Option<u64>) {
        if let Media::Ram(m) = self {
            m.set_throttle(bytes_per_sec);
        }
    }

    /// Cumulative busy time of the medium (summed over channels for
    /// flash) — the raw value behind the perfmon media-utilization probe.
    pub fn busy_time(&self) -> SimDuration {
        match self {
            Media::Ram(m) => m.busy_time(),
            Media::Flash(m) => m.busy_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_bandwidth_dominates_large_transfers() {
        let mut ram = RamMedia::new(SimDuration::from_nanos(60), 1_000_000_000);
        let svc = ram.access(SimTime::ZERO, BlockOp::Read, 0, 1_000_000);
        // ~1 ms of transfer + 60 ns latency.
        let dur = (svc.end - svc.start).as_nanos();
        assert!((1_000_000..1_001_000).contains(&dur), "dur {dur}");
    }

    #[test]
    fn throttle_caps_at_peak() {
        let mut ram = RamMedia::new(SimDuration::ZERO, 1_000_000_000);
        ram.set_throttle(Some(5_000_000_000)); // above peak: peak wins
        assert_eq!(ram.effective_bandwidth(), 1_000_000_000);
        ram.set_throttle(Some(100_000_000));
        assert_eq!(ram.effective_bandwidth(), 100_000_000);
        ram.set_throttle(None);
        assert_eq!(ram.effective_bandwidth(), 1_000_000_000);
    }

    #[test]
    fn ram_serializes_accesses() {
        let mut ram = RamMedia::new(SimDuration::from_nanos(100), 1_000_000_000);
        let a = ram.access(SimTime::ZERO, BlockOp::Write, 0, 1000);
        let b = ram.access(SimTime::ZERO, BlockOp::Write, 0, 1000);
        assert_eq!(b.start, a.end);
        assert_eq!(ram.busy_time().as_nanos(), 2 * 1100);
    }

    #[test]
    fn flash_write_slower_than_read() {
        let mut f1 = FlashMedia::pcie_ssd();
        let mut f2 = FlashMedia::pcie_ssd();
        let r = f1.access(SimTime::ZERO, BlockOp::Read, 1 << 20, 4096);
        let w = f2.access(SimTime::ZERO, BlockOp::Write, 1 << 20, 4096);
        assert!(w.end - w.start > r.end - r.start);
    }

    #[test]
    fn flash_stripes_across_channels() {
        let mut f = FlashMedia::new(
            4,
            4096,
            SimDuration::from_micros(60),
            SimDuration::from_micros(500),
            400_000_000,
        );
        // 4 pages across 4 channels complete in ~1 page time, not 4.
        let four_pages = f.access(SimTime::ZERO, BlockOp::Read, 0, 4 * 4096);
        let one_page_time =
            SimDuration::from_micros(60) + SimDuration::for_bytes(4096, 400_000_000);
        assert_eq!(four_pages.end - four_pages.start, one_page_time);
        // A sub-page re-read of a buffered page skips the array latency.
        let hit = f.access(four_pages.end, BlockOp::Read, 0, 1024);
        assert_eq!(
            hit.end - hit.start,
            SimDuration::for_bytes(4096, 400_000_000)
        );
    }

    #[test]
    fn flash_page_buffer_evicts_fifo() {
        // 1-channel flash with a 2-entry buffer: touching 3 distinct pages
        // evicts the first, so re-reading it pays the array latency again.
        let mut f = FlashMedia::new(
            1,
            4096,
            SimDuration::from_micros(50),
            SimDuration::from_micros(200),
            400_000_000,
        );
        let transfer = SimDuration::for_bytes(4096, 400_000_000);
        let full = SimDuration::from_micros(50) + transfer;
        let a = f.access(SimTime::ZERO, BlockOp::Read, 0, 1024);
        assert_eq!(a.end - a.start, full);
        let hit = f.access(a.end, BlockOp::Read, 512, 512);
        assert_eq!(hit.end - hit.start, transfer, "buffered page skips array");
        // Touch two more pages -> page 0 evicted.
        let b = f.access(hit.end, BlockOp::Read, 4096, 1024);
        let c = f.access(b.end, BlockOp::Read, 8192, 1024);
        let again = f.access(c.end, BlockOp::Read, 0, 1024);
        assert_eq!(again.end - again.start, full, "evicted page re-reads array");
    }

    #[test]
    fn media_enum_dispatch() {
        let mut m = Media::Ram(RamMedia::vc707_ddr3());
        let svc = m.access(SimTime::ZERO, BlockOp::Read, 0, 1024);
        assert!(svc.end > SimTime::ZERO);
        m.set_throttle(Some(1_000_000));
        let mut fl = Media::Flash(FlashMedia::pcie_ssd());
        fl.set_throttle(Some(1)); // no-op, must not panic
        let svc2 = fl.access(SimTime::ZERO, BlockOp::Write, 0, 1024);
        assert!(svc2.end > SimTime::ZERO);
    }
}
