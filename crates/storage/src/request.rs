//! Block-request vocabulary shared by all storage paths.

use std::fmt;

use nesc_extent::{BlockAddr, Plba, Vlba};

pub use nesc_extent::BLOCK_SIZE;

/// Direction of a block operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOp {
    /// Transfer blocks from the device to host memory.
    Read,
    /// Transfer blocks from host memory to the device.
    Write,
}

impl BlockOp {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, BlockOp::Read)
    }
}

impl fmt::Display for BlockOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockOp::Read => write!(f, "read"),
            BlockOp::Write => write!(f, "write"),
        }
    }
}

/// Monotonic request identifier, unique within one simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One block-granular storage request: operate on `block_count` blocks
/// starting at `lba`. The address-space parameter `A` records *which* space
/// the address lives in — a request submitted to a virtual function carries
/// [`Vlba`]s (the default), a request addressed to the physical function
/// carries [`Plba`]s — so an untranslated address can no longer cross a
/// layer boundary by decaying to `u64`.
///
/// # Example
///
/// ```
/// use nesc_storage::{BlockRequest, BlockOp, RequestId, BLOCK_SIZE};
/// use nesc_extent::Vlba;
/// let r = BlockRequest::new(RequestId(1), BlockOp::Read, Vlba(10), 4);
/// assert_eq!(r.bytes(), 4 * BLOCK_SIZE);
/// assert_eq!(r.end_lba(), Vlba(14));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest<A = Vlba> {
    /// Request identity (for completion matching).
    pub id: RequestId,
    /// Read or write.
    pub op: BlockOp,
    /// First logical block, in the address space of the target function.
    pub lba: A,
    /// Number of contiguous blocks.
    pub block_count: u64,
}

/// A request addressed to the physical function: its blocks are physical.
pub type PfBlockRequest = BlockRequest<Plba>;

impl<A: BlockAddr> BlockRequest<A> {
    /// Creates a request. A zero block count (a contract violation: the
    /// I/O paths round byte ranges up to covering blocks) is widened to
    /// one block.
    pub fn new(id: RequestId, op: BlockOp, lba: A, block_count: u64) -> Self {
        debug_assert!(block_count > 0, "requests must cover at least one block");
        BlockRequest {
            id,
            op,
            lba,
            block_count: block_count.max(1),
        }
    }

    /// Size of the request in bytes.
    pub fn bytes(&self) -> u64 {
        self.block_count * BLOCK_SIZE
    }

    /// One past the last block touched.
    pub fn end_lba(&self) -> A {
        self.lba.offset(self.block_count)
    }

    /// Splits the request into per-block sub-requests, the granularity at
    /// which NeSC translates addresses.
    pub fn split_blocks(&self) -> impl Iterator<Item = BlockRequest<A>> + '_ {
        let (id, op, lba) = (self.id, self.op, self.lba);
        (0..self.block_count).map(move |i| BlockRequest {
            id,
            op,
            lba: lba.offset(i),
            block_count: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_range_exactly() {
        let r = BlockRequest::new(RequestId(7), BlockOp::Write, Vlba(100), 5);
        let parts: Vec<_> = r.split_blocks().collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[0].lba, Vlba(100));
        assert_eq!(parts[4].lba, Vlba(104));
        assert!(parts.iter().all(|p| p.block_count == 1 && p.id == r.id));
    }

    #[test]
    fn physical_requests_carry_plbas() {
        let r = BlockRequest::new(RequestId(9), BlockOp::Read, Plba(40), 2);
        assert_eq!(r.end_lba(), Plba(42));
        assert_eq!(r.bytes(), 2 * BLOCK_SIZE);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        BlockRequest::new(RequestId(0), BlockOp::Read, Vlba(0), 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(BlockOp::Read.to_string(), "read");
        assert_eq!(RequestId(3).to_string(), "req#3");
        assert!(BlockOp::Read.is_read());
        assert!(!BlockOp::Write.is_read());
    }
}
