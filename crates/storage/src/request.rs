//! Block-request vocabulary shared by all storage paths.

use std::fmt;

/// NeSC's translation granularity: 1 KiB, "the smallest block size supported
/// by ext4" (paper §IV-C).
pub const BLOCK_SIZE: u64 = 1024;

/// Direction of a block operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockOp {
    /// Transfer blocks from the device to host memory.
    Read,
    /// Transfer blocks from host memory to the device.
    Write,
}

impl BlockOp {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, BlockOp::Read)
    }
}

impl fmt::Display for BlockOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockOp::Read => write!(f, "read"),
            BlockOp::Write => write!(f, "write"),
        }
    }
}

/// Monotonic request identifier, unique within one simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// One block-granular storage request as seen by a device: operate on
/// `block_count` blocks starting at logical block `lba` of whatever address
/// space the target exposes (virtual blocks for a VF, physical for the PF).
///
/// # Example
///
/// ```
/// use nesc_storage::{BlockRequest, BlockOp, RequestId, BLOCK_SIZE};
/// let r = BlockRequest::new(RequestId(1), BlockOp::Read, 10, 4);
/// assert_eq!(r.bytes(), 4 * BLOCK_SIZE);
/// assert_eq!(r.end_lba(), 14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// Request identity (for completion matching).
    pub id: RequestId,
    /// Read or write.
    pub op: BlockOp,
    /// First logical block.
    pub lba: u64,
    /// Number of contiguous blocks.
    pub block_count: u64,
}

impl BlockRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `block_count` is zero.
    pub fn new(id: RequestId, op: BlockOp, lba: u64, block_count: u64) -> Self {
        assert!(block_count > 0, "requests must cover at least one block");
        BlockRequest {
            id,
            op,
            lba,
            block_count,
        }
    }

    /// Size of the request in bytes.
    pub fn bytes(&self) -> u64 {
        self.block_count * BLOCK_SIZE
    }

    /// One past the last block touched.
    pub fn end_lba(&self) -> u64 {
        self.lba + self.block_count
    }

    /// Splits the request into per-block sub-requests, the granularity at
    /// which NeSC translates addresses.
    pub fn split_blocks(&self) -> impl Iterator<Item = BlockRequest> + '_ {
        let (id, op) = (self.id, self.op);
        (self.lba..self.end_lba()).map(move |lba| BlockRequest {
            id,
            op,
            lba,
            block_count: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_range_exactly() {
        let r = BlockRequest::new(RequestId(7), BlockOp::Write, 100, 5);
        let parts: Vec<_> = r.split_blocks().collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[0].lba, 100);
        assert_eq!(parts[4].lba, 104);
        assert!(parts.iter().all(|p| p.block_count == 1 && p.id == r.id));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        BlockRequest::new(RequestId(0), BlockOp::Read, 0, 0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(BlockOp::Read.to_string(), "read");
        assert_eq!(RequestId(3).to_string(), "req#3");
        assert!(BlockOp::Read.is_read());
        assert!(!BlockOp::Write.is_read());
    }
}
