#![warn(missing_docs)]

//! Storage media models for the NeSC reproduction.
//!
//! The NeSC prototype stores data in the 1 GB of DDR3 on the VC707 board and
//! "does not emulate a specific access latency technology ... we simply use
//! direct DRAM read and write latencies" (paper §VI). The paper's Fig. 2
//! additionally sweeps an *emulated* device bandwidth by throttling a
//! ramdisk. This crate provides:
//!
//! * [`BlockStore`] — the device's persistent contents as real bytes, sparse
//!   so multi-gigabyte devices cost only what is touched;
//! * [`Media`] — timing models: [`RamMedia`] (DRAM, optionally throttled to
//!   a target bandwidth for the Fig. 2 sweep) and [`FlashMedia`] (a
//!   multi-channel NAND model used by the extension studies, since the paper
//!   positions NeSC for multi-GB/s PCIe SSDs);
//! * [`BlockRequest`] / [`BlockOp`] — the request vocabulary shared by every
//!   storage path in the workspace.
//!
//! Block granularity follows the paper: NeSC translates at 1 KiB blocks
//! ("the smallest block size supported by ext4").

pub mod device;
pub mod media;
pub mod request;

pub use device::{BlockStore, StoreError};
pub use media::{FlashMedia, Media, RamMedia};
pub use request::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};
