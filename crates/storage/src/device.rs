//! The device's persistent contents.
//!
//! [`BlockStore`] holds real bytes at block granularity so that isolation
//! and hole-semantics tests can verify actual data movement, not just
//! timing. Like host memory, it is sparse: blocks read as zeros until first
//! written, matching a freshly-initialized device.

use std::collections::HashMap;
use std::fmt;

use crate::request::BLOCK_SIZE;

/// Sparse block-granular storage contents with a fixed capacity.
///
/// # Example
///
/// ```
/// use nesc_storage::{BlockStore, BLOCK_SIZE};
/// let mut store = BlockStore::new(1024); // 1 MiB device
/// store.write_block(5, &vec![0xAA; BLOCK_SIZE as usize]).unwrap();
/// let data = store.read_block(5).unwrap();
/// assert!(data.iter().all(|&b| b == 0xAA));
/// assert!(store.read_block(9999).is_err()); // beyond capacity
/// ```
pub struct BlockStore {
    blocks: HashMap<u64, Box<[u8]>>,
    capacity_blocks: u64,
}

impl fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockStore")
            .field("capacity_blocks", &self.capacity_blocks)
            .field("resident_blocks", &self.blocks.len())
            .finish()
    }
}

/// Error accessing the block store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The address is at or beyond the device capacity.
    OutOfRange {
        /// Offending block address.
        lba: u64,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// A write buffer was not exactly one block long.
    BadLength {
        /// Provided length in bytes.
        len: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfRange { lba, capacity } => {
                write!(f, "block {lba} out of range (capacity {capacity} blocks)")
            }
            StoreError::BadLength { len } => {
                write!(f, "write buffer is {len} bytes, expected {BLOCK_SIZE}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl BlockStore {
    /// Creates an empty store of `capacity_blocks` 1 KiB blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero.
    pub fn new(capacity_blocks: u64) -> Self {
        assert!(capacity_blocks > 0, "device needs at least one block");
        BlockStore {
            blocks: HashMap::new(),
            capacity_blocks,
        }
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks * BLOCK_SIZE
    }

    /// Reads one block; unwritten blocks read as zeros.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if `lba` is beyond capacity.
    pub fn read_block(&self, lba: u64) -> Result<Vec<u8>, StoreError> {
        self.check(lba)?;
        Ok(match self.blocks.get(&lba) {
            Some(b) => b.to_vec(),
            None => vec![0u8; BLOCK_SIZE as usize],
        })
    }

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if `lba` is beyond capacity;
    /// [`StoreError::BadLength`] if `data` is not exactly one block.
    pub fn write_block(&mut self, lba: u64, data: &[u8]) -> Result<(), StoreError> {
        self.check(lba)?;
        if data.len() != BLOCK_SIZE as usize {
            return Err(StoreError::BadLength { len: data.len() });
        }
        self.blocks.insert(lba, data.into());
        Ok(())
    }

    /// Whether a block has ever been written.
    pub fn is_written(&self, lba: u64) -> bool {
        self.blocks.contains_key(&lba)
    }

    /// Number of blocks that have been written at least once.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    fn check(&self, lba: u64) -> Result<(), StoreError> {
        if lba >= self.capacity_blocks {
            Err(StoreError::OutOfRange {
                lba,
                capacity: self.capacity_blocks,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_reads_zero() {
        let store = BlockStore::new(16);
        assert!(store.read_block(3).unwrap().iter().all(|&b| b == 0));
        assert!(!store.is_written(3));
    }

    #[test]
    fn write_then_read() {
        let mut store = BlockStore::new(16);
        let data = vec![7u8; BLOCK_SIZE as usize];
        store.write_block(0, &data).unwrap();
        assert_eq!(store.read_block(0).unwrap(), data);
        assert_eq!(store.resident_blocks(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut store = BlockStore::new(4);
        assert_eq!(
            store.read_block(4).unwrap_err(),
            StoreError::OutOfRange {
                lba: 4,
                capacity: 4
            }
        );
        assert!(store
            .write_block(100, &vec![0; BLOCK_SIZE as usize])
            .is_err());
        assert_eq!(store.capacity_bytes(), 4 * BLOCK_SIZE);
    }

    #[test]
    fn bad_length_rejected() {
        let mut store = BlockStore::new(4);
        let err = store.write_block(0, &[1, 2, 3]).unwrap_err();
        assert_eq!(err, StoreError::BadLength { len: 3 });
        assert!(err.to_string().contains("3 bytes"));
    }

    proptest! {
        /// Blocks are independent: writing one never changes another.
        #[test]
        fn prop_blocks_independent(
            writes in proptest::collection::vec((0u64..64, any::<u8>()), 1..50)
        ) {
            let mut store = BlockStore::new(64);
            let mut reference: std::collections::HashMap<u64, u8> = Default::default();
            for &(lba, byte) in &writes {
                store.write_block(lba, &vec![byte; BLOCK_SIZE as usize]).unwrap();
                reference.insert(lba, byte);
            }
            for lba in 0..64 {
                let expect = reference.get(&lba).copied().unwrap_or(0);
                let got = store.read_block(lba).unwrap();
                prop_assert!(got.iter().all(|&b| b == expect));
            }
        }
    }
}
