//! The device's persistent contents.
//!
//! [`BlockStore`] holds real bytes at block granularity so that isolation
//! and hole-semantics tests can verify actual data movement, not just
//! timing. Like host memory, it is sparse: blocks read as zeros until first
//! written, matching a freshly-initialized device.
//!
//! This is the end of the address pipeline: every API takes [`Plba`] —
//! a *physical* block address that, by the provenance discipline (lint
//! rules T1–T3), can only have come from the allocator, the extent walk,
//! or the PF's identity translation. An untranslated guest vLBA cannot
//! reach the media because nothing here accepts one.

use std::collections::HashMap;
use std::fmt;

use nesc_extent::Plba;
use nesc_sim::IntHashBuilder;

use crate::request::BLOCK_SIZE;

/// Sparse block-granular storage contents with a fixed capacity.
///
/// # Example
///
/// ```
/// use nesc_storage::{BlockStore, BLOCK_SIZE};
/// use nesc_extent::Plba;
/// let mut store = BlockStore::new(1024); // 1 MiB device
/// store.write_block(Plba(5), &vec![0xAA; BLOCK_SIZE as usize]).unwrap();
/// let data = store.read_block(Plba(5)).unwrap();
/// assert!(data.iter().all(|&b| b == 0xAA));
/// assert!(store.read_block(Plba(9999)).is_err()); // beyond capacity
/// ```
pub struct BlockStore {
    // One lookup per block moved on the data path; keyed by pLBA with a
    // cheap deterministic integer hasher for the same reason as host
    // memory's page map.
    blocks: HashMap<Plba, Box<[u8]>, IntHashBuilder>,
    capacity_blocks: u64,
    /// One past the last valid physical block; cached so range checks are
    /// typed comparisons instead of repeated re-derivations.
    end: Plba,
    /// Inclusive bounds of every block ever written (`None` while the
    /// store is pristine). Blocks are never deleted, so the bounds only
    /// widen — a constant-time conservative residency filter for the
    /// batched read path ([`maybe_written_in`](BlockStore::maybe_written_in)).
    written_bounds: Option<(Plba, Plba)>,
}

impl fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockStore")
            .field("capacity_blocks", &self.capacity_blocks)
            .field("resident_blocks", &self.blocks.len())
            .finish()
    }
}

/// Error accessing the block store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// The address is at or beyond the device capacity.
    OutOfRange {
        /// Offending block address.
        lba: Plba,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// A write buffer was not exactly one block long.
    BadLength {
        /// Provided length in bytes.
        len: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfRange { lba, capacity } => {
                write!(f, "block {lba} out of range (capacity {capacity} blocks)")
            }
            StoreError::BadLength { len } => {
                write!(f, "write buffer is {len} bytes, expected {BLOCK_SIZE}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl BlockStore {
    /// Creates an empty store of `capacity_blocks` 1 KiB blocks. A zero
    /// capacity (a contract violation) is widened to one block.
    pub fn new(capacity_blocks: u64) -> Self {
        debug_assert!(capacity_blocks > 0, "device needs at least one block");
        BlockStore {
            blocks: HashMap::default(),
            capacity_blocks: capacity_blocks.max(1),
            // nesc-lint::allow(T2): the media edge *defines* the physical
            // space — device geometry is where pLBAs originate, not a
            // translation that could be skipped.
            end: Plba(capacity_blocks),
            written_bounds: None,
        }
    }

    /// Widens the written bounds to include `lba`.
    fn note_written(&mut self, lba: Plba) {
        self.written_bounds = Some(match self.written_bounds {
            None => (lba, lba),
            Some((lo, hi)) => (lo.min(lba), hi.max(lba)),
        });
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks * BLOCK_SIZE
    }

    /// How many blocks lie between `lba` (inclusive) and the end of the
    /// device — zero when `lba` is at or beyond capacity. Run-sizing
    /// callers clamp transfers with this instead of unwrapping addresses.
    pub fn blocks_until_end(&self, lba: Plba) -> u64 {
        if lba >= self.end {
            0
        } else {
            self.end.distance_from(lba)
        }
    }

    /// Reads one block; unwritten blocks read as zeros.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if `lba` is beyond capacity.
    pub fn read_block(&self, lba: Plba) -> Result<Vec<u8>, StoreError> {
        self.check(lba)?;
        Ok(match self.blocks.get(&lba) {
            Some(b) => b.to_vec(),
            None => vec![0u8; BLOCK_SIZE as usize],
        })
    }

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if `lba` is beyond capacity;
    /// [`StoreError::BadLength`] if `data` is not exactly one block.
    pub fn write_block(&mut self, lba: Plba, data: &[u8]) -> Result<(), StoreError> {
        self.check(lba)?;
        if data.len() != BLOCK_SIZE as usize {
            return Err(StoreError::BadLength { len: data.len() });
        }
        self.blocks.insert(lba, data.into());
        self.note_written(lba);
        Ok(())
    }

    /// Reads `blocks` consecutive blocks starting at `lba` into `out`,
    /// which must be exactly `blocks * BLOCK_SIZE` bytes. Unwritten blocks
    /// read as zeros. One call replaces a per-block `read_block` loop (and
    /// its per-block `Vec` allocation) on the batched data path.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] naming the first out-of-range block if the
    /// range crosses capacity (nothing is read); [`StoreError::BadLength`]
    /// if `out` has the wrong size.
    pub fn read_range(&self, lba: Plba, blocks: u64, out: &mut [u8]) -> Result<(), StoreError> {
        self.check_range(lba, blocks)?;
        if out.len() as u64 != blocks * BLOCK_SIZE {
            return Err(StoreError::BadLength { len: out.len() });
        }
        let bs = BLOCK_SIZE as usize;
        for (i, chunk) in out.chunks_exact_mut(bs).enumerate() {
            match self.blocks.get(&lba.offset(i as u64)) {
                Some(b) => chunk.copy_from_slice(b),
                None => chunk.fill(0),
            }
        }
        Ok(())
    }

    /// Writes `data` (a whole number of blocks) at consecutive addresses
    /// starting at `lba`.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] naming the first out-of-range block if the
    /// range crosses capacity (nothing is written); [`StoreError::BadLength`]
    /// if `data` is empty or not block-aligned.
    pub fn write_range(&mut self, lba: Plba, data: &[u8]) -> Result<(), StoreError> {
        let bs = BLOCK_SIZE as usize;
        if data.is_empty() || !data.len().is_multiple_of(bs) {
            return Err(StoreError::BadLength { len: data.len() });
        }
        let blocks = (data.len() / bs) as u64;
        self.check_range(lba, blocks)?;
        self.note_written(lba);
        self.note_written(lba.offset(blocks - 1));
        for (i, chunk) in data.chunks_exact(bs).enumerate() {
            // Reuse the existing allocation on rewrite instead of boxing a
            // fresh block per insert.
            match self.blocks.entry(lba.offset(i as u64)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().copy_from_slice(chunk)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(chunk.into());
                }
            }
        }
        Ok(())
    }

    /// Borrows one block's bytes, or `None` if the block has never been
    /// written (it reads as zeros). No capacity check — callers on the
    /// batched data path validate the whole range up front with
    /// [`check_range`](BlockStore::check_range).
    pub fn block(&self, lba: Plba) -> Option<&[u8]> {
        self.blocks.get(&lba).map(|b| &b[..])
    }

    /// Mutably borrows one block, allocating it zeroed on first touch —
    /// the no-copy destination for DMA-sized writes (the caller overwrites
    /// all [`BLOCK_SIZE`] bytes in place instead of staging a buffer).
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] if `lba` is beyond capacity.
    pub fn block_mut(&mut self, lba: Plba) -> Result<&mut [u8], StoreError> {
        self.check(lba)?;
        self.note_written(lba);
        Ok(self
            .blocks
            .entry(lba)
            .or_insert_with(|| vec![0u8; BLOCK_SIZE as usize].into_boxed_slice()))
    }

    /// Whether a block has ever been written.
    pub fn is_written(&self, lba: Plba) -> bool {
        self.blocks.contains_key(&lba)
    }

    /// Conservative residency filter: `false` means *no* block in
    /// `[lba, lba + blocks)` has ever been written (the whole run reads as
    /// zeros); `true` means some block in the range *may* be resident.
    /// Constant time — it compares against the store's written bounds
    /// rather than probing per block, so the batched read path can replace
    /// `blocks` hash probes with one sparse zero-fill on cold ranges.
    pub fn maybe_written_in(&self, lba: Plba, blocks: u64) -> bool {
        match self.written_bounds {
            None => false,
            Some((lo, hi)) => {
                lba <= hi
                    && match lba.checked_add_blocks(blocks) {
                        Some(end) => end > lo,
                        None => true,
                    }
            }
        }
    }

    /// Number of blocks that have been written at least once.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Validates that `blocks` consecutive blocks starting at `lba` lie
    /// within capacity (and that the range is non-empty), naming the first
    /// out-of-range block on failure — the atomic precondition the range
    /// operations and the device's run transfers check before touching data.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfRange`] naming the first out-of-range block.
    pub fn check_range(&self, lba: Plba, blocks: u64) -> Result<(), StoreError> {
        let in_range =
            blocks > 0 && matches!(lba.checked_add_blocks(blocks), Some(end) if end <= self.end);
        if in_range {
            Ok(())
        } else {
            Err(StoreError::OutOfRange {
                lba: lba.max(self.end),
                capacity: self.capacity_blocks,
            })
        }
    }

    fn check(&self, lba: Plba) -> Result<(), StoreError> {
        if lba >= self.end {
            Err(StoreError::OutOfRange {
                lba,
                capacity: self.capacity_blocks,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_reads_zero() {
        let store = BlockStore::new(16);
        assert!(store.read_block(Plba(3)).unwrap().iter().all(|&b| b == 0));
        assert!(!store.is_written(Plba(3)));
    }

    #[test]
    fn write_then_read() {
        let mut store = BlockStore::new(16);
        let data = vec![7u8; BLOCK_SIZE as usize];
        store.write_block(Plba(0), &data).unwrap();
        assert_eq!(store.read_block(Plba(0)).unwrap(), data);
        assert_eq!(store.resident_blocks(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut store = BlockStore::new(4);
        assert_eq!(
            store.read_block(Plba(4)).unwrap_err(),
            StoreError::OutOfRange {
                lba: Plba(4),
                capacity: 4
            }
        );
        assert!(store
            .write_block(Plba(100), &vec![0; BLOCK_SIZE as usize])
            .is_err());
        assert_eq!(store.capacity_bytes(), 4 * BLOCK_SIZE);
        assert_eq!(store.blocks_until_end(Plba(1)), 3);
        assert_eq!(store.blocks_until_end(Plba(4)), 0);
        assert_eq!(store.blocks_until_end(Plba(100)), 0);
    }

    #[test]
    fn bad_length_rejected() {
        let mut store = BlockStore::new(4);
        let err = store.write_block(Plba(0), &[1, 2, 3]).unwrap_err();
        assert_eq!(err, StoreError::BadLength { len: 3 });
        assert!(err.to_string().contains("3 bytes"));
    }

    #[test]
    fn range_roundtrip_and_sparsity() {
        let mut store = BlockStore::new(16);
        let bs = BLOCK_SIZE as usize;
        let mut data = vec![0u8; 3 * bs];
        data[..bs].fill(1);
        data[2 * bs..].fill(3);
        store.write_range(Plba(4), &data).unwrap();
        let mut out = vec![0xFFu8; 5 * bs];
        // Blocks 3 and 7 were never written: they must read back as zeros.
        store.read_range(Plba(3), 5, &mut out).unwrap();
        assert!(out[..bs].iter().all(|&b| b == 0));
        assert!(out[bs..2 * bs].iter().all(|&b| b == 1));
        assert!(out[2 * bs..3 * bs].iter().all(|&b| b == 0));
        assert!(out[3 * bs..4 * bs].iter().all(|&b| b == 3));
        assert!(out[4 * bs..].iter().all(|&b| b == 0));
    }

    #[test]
    fn range_rejects_capacity_crossing_atomically() {
        let mut store = BlockStore::new(4);
        let bs = BLOCK_SIZE as usize;
        let err = store.write_range(Plba(2), &vec![9u8; 3 * bs]).unwrap_err();
        assert_eq!(
            err,
            StoreError::OutOfRange {
                lba: Plba(4),
                capacity: 4
            }
        );
        // Nothing was written, even though blocks 2 and 3 were in range.
        assert_eq!(store.resident_blocks(), 0);
        let mut out = vec![0u8; 3 * bs];
        assert!(store.read_range(Plba(2), 3, &mut out).is_err());
        assert!(store.read_range(Plba(2), 2, &mut out[..2 * bs]).is_ok());
        assert_eq!(
            store.write_range(Plba(0), &vec![0u8; bs + 1]).unwrap_err(),
            StoreError::BadLength { len: bs + 1 }
        );
    }

    #[test]
    fn overflowing_range_is_rejected_not_wrapped() {
        let store = BlockStore::new(4);
        assert!(store.check_range(Plba(u64::MAX - 1), 4).is_err());
        assert!(store.check_range(Plba(0), 0).is_err());
    }

    proptest! {
        /// Blocks are independent: writing one never changes another.
        #[test]
        fn prop_blocks_independent(
            writes in proptest::collection::vec((0u64..64, any::<u8>()), 1..50)
        ) {
            let mut store = BlockStore::new(64);
            let mut reference: std::collections::HashMap<u64, u8> = Default::default();
            for &(lba, byte) in &writes {
                store.write_block(Plba(lba), &vec![byte; BLOCK_SIZE as usize]).unwrap();
                reference.insert(lba, byte);
            }
            for lba in 0..64 {
                let expect = reference.get(&lba).copied().unwrap_or(0);
                let got = store.read_block(Plba(lba)).unwrap();
                prop_assert!(got.iter().all(|&b| b == expect));
            }
        }
    }
}
