//! Hierarchical span tracing.
//!
//! The NeSC paper's argument is about *where latency lives*: replicated
//! software layers (guest stack, vmexits, host backend) versus a
//! hardware-traversed translation path. A flat per-request latency number
//! cannot attribute time to layers; spans can. This module provides a
//! deterministic, simulation-time span tracer that every layer of the
//! model (guest syscall, hypervisor stack, virtio ring, PCIe link,
//! translation unit, media service) reports into:
//!
//! * [`Span`] — one timed interval on one layer, with a parent link and
//!   `key=value` attributes, forming a tree per request;
//! * [`Tracer`] — a cheaply cloneable handle shared by all layers. A
//!   disabled tracer is a `None` and every operation is a no-op, so the
//!   hot path pays only a branch when tracing is off;
//! * [`SpanTree`] — an index over a drained span list for breakdown
//!   harnesses and invariant checks;
//! * [`chrome_trace_json`] — Chrome/Perfetto `traceEvents` export.
//!
//! Span ids are assigned sequentially in creation order. Because the
//! simulator is single-threaded and deterministic, the same seed and
//! workload always produce the identical span list — which is what makes
//! golden-trace testing possible.
//!
//! # Example
//!
//! ```
//! use nesc_sim::{SimTime, Tracer, SpanId};
//!
//! let tracer = Tracer::enabled();
//! let root = tracer.start(SpanId::NONE, "guest", "request", SimTime::from_nanos(0));
//! let child = tracer.start(root, "pcie", "doorbell", SimTime::from_nanos(10));
//! tracer.end(child, SimTime::from_nanos(30));
//! tracer.attr(root, "bytes", 4096);
//! tracer.end(root, SimTime::from_nanos(100));
//! let spans = tracer.take_spans();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].layer, "guest");
//! assert_eq!(spans[1].parent, spans[0].id);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::hash::IntHashBuilder;
use crate::time::SimTime;

/// Identity of one span. `SpanId::NONE` (0) means "no span" — it is what a
/// disabled tracer returns and what root spans use as their parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span id: no parent / tracing disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id names a real span.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One recorded interval in the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id (sequential from 1, in creation order).
    pub id: SpanId,
    /// Parent span, or [`SpanId::NONE`] for a request root.
    pub parent: SpanId,
    /// The layer the time was spent in (`guest`, `hypervisor`, `virtio`,
    /// `core`, `extent`, `pcie`, `storage`).
    pub layer: &'static str,
    /// What happened (`request`, `doorbell`, `translate`, ...).
    pub name: &'static str,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated end time (equals `start` until [`Tracer::end`] is called).
    pub end: SimTime,
    /// `key=value` attributes attached via [`Tracer::attr`].
    pub attrs: Vec<(&'static str, u64)>,
}

impl Span {
    /// The span's duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end.saturating_since(self.start).as_nanos()
    }

    /// Looks up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }
}

#[derive(Debug, Default)]
struct TraceLog {
    spans: Vec<Span>,
    next_id: u64,
    /// Ids `1..=drained` were taken by earlier [`Tracer::take_spans`]
    /// calls; mutations aimed at them are ignored.
    drained: u64,
    /// Cross-layer stitching: callers bind an opaque key (e.g. a request
    /// id) to a span so a lower layer can find its parent without the
    /// upper layer threading `SpanId`s through every signature.
    bindings: HashMap<u64, SpanId, IntHashBuilder>,
}

impl TraceLog {
    fn span_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        if id.0 <= self.drained {
            return None;
        }
        self.spans.get_mut((id.0 - self.drained - 1) as usize)
    }
}

/// A cheaply cloneable tracing handle shared by every simulated layer.
///
/// Disabled (the default) it holds no allocation and every method is a
/// no-op returning [`SpanId::NONE`]; enabled it appends to a shared span
/// log. Handles cloned from one enabled tracer all record into the same
/// log, which is how spans emitted by the PCIe link end up in the same
/// tree as the guest-level request span.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceLog>>>,
}

impl Tracer {
    /// A recording tracer.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceLog {
                next_id: 1,
                ..TraceLog::default()
            }))),
        }
    }

    /// A no-op tracer (the default).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. Returns [`SpanId::NONE`] when disabled.
    pub fn start(
        &self,
        parent: SpanId,
        layer: &'static str,
        name: &'static str,
        at: SimTime,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut log = inner.borrow_mut();
        let id = SpanId(log.next_id);
        log.next_id += 1;
        log.spans.push(Span {
            id,
            parent,
            layer,
            name,
            start: at,
            end: at,
            attrs: Vec::new(),
        });
        id
    }

    /// Closes a span at `at`.
    ///
    /// Span intervals must be monotonic; closing before the recorded start
    /// is a recording bug and debug-asserts.
    pub fn end(&self, id: SpanId, at: SimTime) {
        let Some(inner) = &self.inner else {
            return;
        };
        if let Some(span) = inner.borrow_mut().span_mut(id) {
            debug_assert!(
                at >= span.start,
                "span {}:{} ends at {at} before it started at {}",
                span.layer,
                span.name,
                span.start
            );
            span.end = at;
        }
    }

    /// Records a complete span in one call.
    pub fn span(
        &self,
        parent: SpanId,
        layer: &'static str,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        let id = self.start(parent, layer, name, start);
        self.end(id, end);
        id
    }

    /// Attaches a `key=value` attribute to a span.
    pub fn attr(&self, id: SpanId, key: &'static str, value: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        if let Some(span) = inner.borrow_mut().span_mut(id) {
            span.attrs.push((key, value));
        }
    }

    /// Binds an opaque key (typically a request id) to a span so another
    /// layer can recover its parent via [`bound`](Self::bound).
    pub fn bind(&self, key: u64, id: SpanId) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().bindings.insert(key, id);
        }
    }

    /// The span bound to `key`, if any.
    pub fn bound(&self, key: u64) -> SpanId {
        match &self.inner {
            Some(inner) => inner
                .borrow()
                .bindings
                .get(&key)
                .copied()
                .unwrap_or(SpanId::NONE),
            None => SpanId::NONE,
        }
    }

    /// Removes a binding.
    pub fn unbind(&self, key: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().bindings.remove(&key);
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.borrow().spans.len(),
            None => 0,
        }
    }

    /// Whether no spans have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains all recorded spans, in creation (id) order. Id assignment
    /// continues from where it left off, so ids stay unique across drains;
    /// bindings are left untouched. Drained spans can no longer be ended
    /// or annotated, so drain only at quiescent points.
    pub fn take_spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => {
                let mut log = inner.borrow_mut();
                log.drained = log.next_id - 1;
                std::mem::take(&mut log.spans)
            }
            None => Vec::new(),
        }
    }

    /// Clones the subtree rooted at `root` — the root span plus every
    /// not-yet-drained descendant, in creation (id) order — *without*
    /// draining the log. This is what the flight recorder's exemplar
    /// capture uses: the worst-K requests get their full trees copied out
    /// while the log keeps recording (and a later [`take_spans`]
    /// (Self::take_spans) still returns everything).
    ///
    /// Returns an empty vector when disabled, when `root` is
    /// [`SpanId::NONE`], or when the root was already drained.
    pub fn subtree(&self, root: SpanId) -> Vec<Span> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let log = inner.borrow();
        if !root.is_some() || root.0 <= log.drained {
            return Vec::new();
        }
        // Spans are stored in id order and parents always precede their
        // children, so one forward pass over the undrained window finds
        // the whole subtree.
        let mut keep = vec![false; log.spans.len()];
        let mut out = Vec::new();
        for (i, s) in log.spans.iter().enumerate() {
            let parent_kept = s.parent.0 > log.drained
                && keep
                    .get((s.parent.0 - log.drained - 1) as usize)
                    .copied()
                    .unwrap_or(false);
            if s.id == root || parent_kept {
                if let Some(slot) = keep.get_mut(i) {
                    *slot = true;
                }
                out.push(s.clone());
            }
        }
        out
    }
}

/// An index over a drained span list: children per parent, roots, and the
/// structural invariants the observability tests assert.
#[derive(Debug)]
pub struct SpanTree {
    spans: Vec<Span>,
    /// `spans` indices of the roots, in creation order.
    roots: Vec<usize>,
    /// Parent span id -> `spans` indices of its children, creation order.
    children: HashMap<u64, Vec<usize>, IntHashBuilder>,
}

impl SpanTree {
    /// Builds the index.
    pub fn new(spans: Vec<Span>) -> Self {
        let mut roots = Vec::new();
        let mut children: HashMap<u64, Vec<usize>, IntHashBuilder> = HashMap::default();
        for (i, s) in spans.iter().enumerate() {
            if s.parent.is_some() {
                children.entry(s.parent.0).or_default().push(i);
            } else {
                roots.push(i);
            }
        }
        SpanTree {
            spans,
            roots,
            children,
        }
    }

    /// All spans, in creation order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root spans (no parent), in creation order.
    pub fn roots(&self) -> impl Iterator<Item = &Span> {
        self.roots.iter().map(|&i| &self.spans[i])
    }

    /// Direct children of `id`, in creation order.
    pub fn children(&self, id: SpanId) -> impl Iterator<Item = &Span> {
        self.children
            .get(&id.0)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.spans[i])
    }

    /// Checks structural sanity of the whole forest: every child's
    /// interval is contained in its parent's, every parent id refers to an
    /// earlier span, and every span ends at or after it starts. Returns a
    /// description of the first violation.
    ///
    /// # Errors
    ///
    /// A human-readable description of the offending span.
    pub fn check_nesting(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.end < s.start {
                return Err(format!(
                    "span {} ({}:{}) ends at {} before start {}",
                    s.id.0, s.layer, s.name, s.end, s.start
                ));
            }
            if s.parent.is_some() {
                if s.parent.0 >= s.id.0 {
                    return Err(format!(
                        "span {} has non-causal parent {}",
                        s.id.0, s.parent.0
                    ));
                }
                let Some(p) = self.spans.iter().find(|p| p.id == s.parent) else {
                    return Err(format!(
                        "span {} has dangling parent {}",
                        s.id.0, s.parent.0
                    ));
                };
                if s.start < p.start || s.end > p.end {
                    return Err(format!(
                        "span {} ({}:{}) [{}, {}] escapes parent {} [{}, {}]",
                        s.id.0, s.layer, s.name, s.start, s.end, p.id.0, p.start, p.end
                    ));
                }
            }
        }
        Ok(())
    }

    /// Checks that the direct children of `root` *partition* its interval:
    /// the first child starts exactly at the root's start, each subsequent
    /// child starts where its predecessor ended, and the last child ends
    /// exactly at the root's end — so the children's durations sum to the
    /// root's end-to-end duration with nothing unattributed. Roots without
    /// children trivially pass.
    ///
    /// # Errors
    ///
    /// A description of the first gap or overlap.
    pub fn check_partition(&self, root: SpanId) -> Result<(), String> {
        let Some(r) = self.spans.iter().find(|s| s.id == root) else {
            return Err(format!("no span {}", root.0));
        };
        let kids: Vec<&Span> = self.children(root).collect();
        if kids.is_empty() {
            return Ok(());
        }
        let mut cursor = r.start;
        for k in &kids {
            if k.start != cursor {
                return Err(format!(
                    "child {} ({}:{}) of span {} starts at {}, expected {} \
                     (children must tile the parent)",
                    k.id.0, k.layer, k.name, root.0, k.start, cursor
                ));
            }
            cursor = k.end;
        }
        if cursor != r.end {
            return Err(format!(
                "children of span {} end at {}, parent ends at {}",
                root.0, cursor, r.end
            ));
        }
        Ok(())
    }

    /// Sums the durations of `root`'s direct children grouped by span
    /// name, in first-appearance order — the per-layer breakdown the
    /// latency harness prints.
    pub fn child_breakdown(&self, root: SpanId) -> Vec<(&'static str, &'static str, u64)> {
        let mut out: Vec<(&'static str, &'static str, u64)> = Vec::new();
        for k in self.children(root) {
            match out.iter_mut().find(|(n, _, _)| *n == k.name) {
                Some((_, _, total)) => *total += k.duration_ns(),
                None => out.push((k.name, k.layer, k.duration_ns())),
            }
        }
        out
    }
}

/// Serializes spans as a Chrome/Perfetto trace-event JSON document
/// (`chrome://tracing` "JSON Array Format" wrapped in an object with a
/// `traceEvents` key, complete `ph:"X"` events, microsecond timestamps).
/// Layers map to Perfetto threads of one process, so the trace opens as a
/// per-layer swimlane view; span attributes land in `args`.
pub fn chrome_trace_json(spans: &[Span]) -> serde_json::Value {
    // Deterministic layer -> tid mapping, in first-appearance order.
    let mut layers: Vec<&'static str> = Vec::new();
    for s in spans {
        if !layers.contains(&s.layer) {
            layers.push(s.layer);
        }
    }
    let mut events: Vec<serde_json::Value> = Vec::new();
    for (tid, layer) in layers.iter().enumerate() {
        events.push(serde_json::json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid + 1,
            "args": { "name": *layer },
        }));
    }
    for s in spans {
        let tid = layers.iter().position(|l| l == &s.layer).unwrap_or(0) + 1;
        let mut args: Vec<(String, serde_json::Value)> = vec![
            ("span".to_string(), serde_json::Value::from(s.id.0)),
            ("parent".to_string(), serde_json::Value::from(s.parent.0)),
        ];
        for (k, v) in &s.attrs {
            args.push((k.to_string(), serde_json::Value::from(*v)));
        }
        events.push(serde_json::json!({
            "name": s.name,
            "cat": s.layer,
            "ph": "X",
            "ts": s.start.as_nanos() as f64 / 1_000.0,
            "dur": s.duration_ns() as f64 / 1_000.0,
            "pid": 1,
            "tid": tid,
            "args": serde_json::Value::Object(args),
        }));
    }
    serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ns",
    })
}

/// Structurally validates a Chrome trace-event document produced by
/// [`chrome_trace_json`] (or anything claiming the same format): a
/// `traceEvents` array whose entries carry the mandatory `name`/`ph`/
/// `pid`/`tid` fields, with `ts` and `dur` present and non-negative on
/// every complete (`"X"`) event.
///
/// # Errors
///
/// A description of the first malformed event.
pub fn validate_chrome_trace(doc: &serde_json::Value) -> Result<usize, String> {
    let Some(serde_json::Value::Array(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    for (i, ev) in events.iter().enumerate() {
        for field in ["name", "ph", "pid", "tid"] {
            if ev.get(field).is_none() {
                return Err(format!("event {i} missing {field}"));
            }
        }
        let ph = match ev.get("ph") {
            Some(serde_json::Value::String(s)) => s.clone(),
            _ => return Err(format!("event {i} has non-string ph")),
        };
        if ph == "X" {
            for field in ["ts", "dur"] {
                match ev.get(field) {
                    Some(serde_json::Value::Number(_)) => {}
                    _ => return Err(format!("event {i} (ph=X) missing numeric {field}")),
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_tracer_is_noop() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        let id = tr.start(SpanId::NONE, "guest", "request", t(0));
        assert_eq!(id, SpanId::NONE);
        tr.end(id, t(10));
        tr.attr(id, "k", 1);
        tr.bind(7, id);
        assert_eq!(tr.bound(7), SpanId::NONE);
        assert!(tr.take_spans().is_empty());
    }

    #[test]
    fn spans_nest_and_ids_are_sequential() {
        let tr = Tracer::enabled();
        let root = tr.start(SpanId::NONE, "guest", "request", t(0));
        let a = tr.start(root, "core", "device", t(10));
        tr.end(a, t(50));
        tr.end(root, t(60));
        let spans = tr.take_spans();
        assert_eq!(spans[0].id, SpanId(1));
        assert_eq!(spans[1].id, SpanId(2));
        assert_eq!(spans[1].parent, SpanId(1));
        let tree = SpanTree::new(spans);
        tree.check_nesting().unwrap();
    }

    #[test]
    fn bindings_stitch_layers() {
        let tr = Tracer::enabled();
        let parent = tr.start(SpanId::NONE, "guest", "request", t(0));
        tr.bind(42, parent);
        let lower = tr.clone();
        assert_eq!(lower.bound(42), parent);
        lower.unbind(42);
        assert_eq!(lower.bound(42), SpanId::NONE);
    }

    #[test]
    fn partition_check_catches_gaps() {
        let tr = Tracer::enabled();
        let root = tr.start(SpanId::NONE, "guest", "request", t(0));
        tr.span(root, "guest", "submit", t(0), t(10));
        tr.span(root, "core", "device", t(10), t(90));
        tr.end(root, t(100));
        let tree = SpanTree::new(tr.take_spans());
        let err = tree.check_partition(SpanId(1)).unwrap_err();
        assert!(err.contains("end at"), "{err}");
    }

    #[test]
    fn partition_check_accepts_tiling() {
        let tr = Tracer::enabled();
        let root = tr.start(SpanId::NONE, "guest", "request", t(5));
        tr.span(root, "guest", "submit", t(5), t(10));
        tr.span(root, "core", "device", t(10), t(90));
        tr.span(root, "guest", "complete", t(90), t(100));
        tr.end(root, t(100));
        let tree = SpanTree::new(tr.take_spans());
        tree.check_partition(SpanId(1)).unwrap();
        let bd = tree.child_breakdown(SpanId(1));
        assert_eq!(bd.len(), 3);
        assert_eq!(bd.iter().map(|(_, _, d)| d).sum::<u64>(), 95);
    }

    #[test]
    fn chrome_export_validates() {
        let tr = Tracer::enabled();
        let root = tr.start(SpanId::NONE, "guest", "request", t(0));
        let dev = tr.start(root, "core", "device", t(100));
        tr.attr(dev, "blocks", 4);
        tr.end(dev, t(900));
        tr.end(root, t(1000));
        let doc = chrome_trace_json(&tr.take_spans());
        // 2 thread-name metadata events + 2 span events.
        assert_eq!(validate_chrome_trace(&doc).unwrap(), 4);
        let text = serde_json::to_string_pretty(&doc).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\": \"X\""));
    }

    #[test]
    fn attrs_readable_back() {
        let tr = Tracer::enabled();
        let s = tr.start(SpanId::NONE, "core", "translate", t(0));
        tr.attr(s, "run", 64);
        tr.end(s, t(10));
        let spans = tr.take_spans();
        assert_eq!(spans[0].attr("run"), Some(64));
        assert_eq!(spans[0].attr("missing"), None);
    }

    #[test]
    fn draining_preserves_id_continuity() {
        let tr = Tracer::enabled();
        tr.span(SpanId::NONE, "guest", "a", t(0), t(1));
        let first = tr.take_spans();
        tr.span(SpanId::NONE, "guest", "b", t(2), t(3));
        let second = tr.take_spans();
        assert_eq!(first[0].id, SpanId(1));
        assert_eq!(second[0].id, SpanId(2));
    }
}
