//! Deterministic, integer-only traffic generators for scale-out scenarios.
//!
//! The scenario engine drives hundreds to thousands of tenants from these
//! two primitives:
//!
//! * [`ZipfLike`] — a working-set skew generator. The classic [`Zipf`]
//!   sampler in [`crate::rng`] precomputes a float CDF, which is fine for
//!   a workload's private key popularity but is banned from anything that
//!   feeds simulated time (nesc-lint D3). `ZipfLike` produces the same
//!   hot/cold shape with pure integer arithmetic: a self-similar
//!   recursive split (the "80/20 rule applied recursively", as in
//!   hot-spot generators from TPC benchmarks), so it is usable anywhere
//!   in the deterministic core.
//! * [`BurstyArrivals`] — an open-loop inter-arrival process emitting
//!   integer-nanosecond gaps: bursts of closely spaced arrivals separated
//!   by long idle gaps, the standard cloud-tenant ON/OFF traffic shape.
//!
//! Both are seeded through [`SimRng`] and advance nothing but their own
//! stream: same seed ⇒ byte-identical arrival tapes.
//!
//! [`Zipf`]: crate::rng::Zipf

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Integer-only Zipf-like working-set skew over `0..n`.
///
/// Each draw recursively descends into the "hot" fraction of the current
/// subrange with probability `weight_permille`/1000; the hot fraction is
/// `hot_permille`/1000 of the span. With the default 200‰/800‰ split this
/// is the classic 80/20 rule applied `depth` times, producing a heavy
/// head: rank 0's neighborhood absorbs most draws while the tail stays
/// reachable.
///
/// # Example
///
/// ```
/// use nesc_sim::{gen::ZipfLike, SimRng};
/// let zipf = ZipfLike::new(1_000, 200, 800);
/// let mut rng = SimRng::seed(9);
/// let mut head = 0u64;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) < 200 {
///         head += 1;
///     }
/// }
/// assert!(head > 7_000); // top 20% of ranks absorb ~80% of draws
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ZipfLike {
    n: u64,
    hot_permille: u64,
    weight_permille: u64,
    depth: u32,
}

impl ZipfLike {
    /// Number of recursive hot/cold splits per draw. Eight levels of an
    /// 80/20 split concentrate ~17% of draws on ~0.0003% of the range —
    /// deeper than any real storage working set needs.
    const DEPTH: u32 = 8;

    /// Builds a sampler over `0..n` where the hottest
    /// `hot_permille`/1000 of each subrange receives
    /// `weight_permille`/1000 of its draws.
    ///
    /// Degenerate parameters (an empty range, permilles outside
    /// `1..=999`) are clamped into the valid domain — skew generators
    /// must not kill a scenario run.
    pub fn new(n: u64, hot_permille: u64, weight_permille: u64) -> Self {
        debug_assert!(n > 0, "ZipfLike needs at least one item");
        debug_assert!(
            (1..=999).contains(&hot_permille) && (1..=999).contains(&weight_permille),
            "permille parameters must be in 1..=999"
        );
        ZipfLike {
            n: n.max(1),
            hot_permille: hot_permille.clamp(1, 999),
            weight_permille: weight_permille.clamp(1, 999),
            depth: Self::DEPTH,
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the range is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Draws a rank in `0..len()`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let mut lo = 0u64;
        let mut span = self.n;
        for _ in 0..self.depth {
            if span <= 1 {
                break;
            }
            // Hot prefix of the current subrange, at least one item and
            // strictly smaller than the span so descent always narrows.
            let hot = (span * self.hot_permille / 1000).clamp(1, span - 1);
            if rng.range(0, 1000) < self.weight_permille {
                span = hot;
            } else {
                lo += hot;
                span -= hot;
            }
        }
        lo + rng.range(0, span.max(1))
    }
}

/// Deterministic ON/OFF bursty inter-arrival process.
///
/// Emits integer-nanosecond gaps: while a burst is active, gaps are drawn
/// around `burst_gap`; when a burst is exhausted the next gap is drawn
/// around `idle_gap` and a new burst length is drawn around `mean_burst`.
/// A `steady` process is the degenerate single-gap case.
///
/// Jitter is uniform in `[d/2, 3d/2]` around each nominal gap `d`, so the
/// mean rate is the configured rate but arrival tapes are not periodic.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    rng: SimRng,
    burst_gap: u64,
    idle_gap: u64,
    mean_burst: u64,
    remaining: u64,
}

impl BurstyArrivals {
    /// A steady open-loop process: every gap is drawn around `gap`.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is zero.
    pub fn steady(rng: SimRng, gap: SimDuration) -> Self {
        Self::bursty(rng, gap, gap, u64::MAX)
    }

    /// A bursty process: bursts of ~`mean_burst` arrivals spaced around
    /// `burst_gap`, separated by idle gaps around `idle_gap`.
    ///
    /// # Panics
    ///
    /// Panics if either gap or `mean_burst` is zero.
    pub fn bursty(
        mut rng: SimRng,
        burst_gap: SimDuration,
        idle_gap: SimDuration,
        mean_burst: u64,
    ) -> Self {
        let burst_gap = burst_gap.as_nanos().max(1);
        let idle_gap = idle_gap.as_nanos().max(1);
        debug_assert!(mean_burst > 0, "mean burst length must be positive");
        let mean_burst = mean_burst.max(1);
        let remaining = Self::draw_burst(&mut rng, mean_burst);
        BurstyArrivals {
            rng,
            burst_gap,
            idle_gap,
            mean_burst,
            remaining,
        }
    }

    /// Burst length uniform in `[1, 2·mean]` (mean ≈ `mean + 1/2`);
    /// saturates so `steady`'s `u64::MAX` mean never redraws.
    fn draw_burst(rng: &mut SimRng, mean: u64) -> u64 {
        if mean >= u64::MAX / 2 {
            return u64::MAX;
        }
        1 + rng.range(0, 2 * mean)
    }

    /// Uniform jitter in `[d/2, 3d/2]` around the nominal gap `d`.
    fn jitter(rng: &mut SimRng, d: u64) -> u64 {
        d / 2 + rng.range(0, d + 1)
    }

    /// Returns the gap to the next arrival and advances the process.
    pub fn next_gap(&mut self) -> SimDuration {
        let gap = if self.remaining > 0 {
            self.remaining -= 1;
            Self::jitter(&mut self.rng, self.burst_gap)
        } else {
            self.remaining = Self::draw_burst(&mut self.rng, self.mean_burst);
            Self::jitter(&mut self.rng, self.idle_gap)
        };
        SimDuration::from_nanos(gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zipf_like_same_seed_identical() {
        let zipf = ZipfLike::new(100_000, 200, 800);
        let mut a = SimRng::seed(0xCAFE);
        let mut b = SimRng::seed(0xCAFE);
        for _ in 0..1_000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }

    #[test]
    fn zipf_like_head_dominates() {
        let n = 10_000u64;
        let zipf = ZipfLike::new(n, 200, 800);
        let mut rng = SimRng::seed(11);
        let draws = 50_000;
        let mut head = 0u64;
        for _ in 0..draws {
            let v = zipf.sample(&mut rng);
            assert!(v < n);
            if v < n / 5 {
                head += 1;
            }
        }
        // 80/20 split applied recursively: the head gets well over half.
        assert!(head * 10 > draws * 7, "head draws {head}/{draws}");
    }

    #[test]
    fn zipf_like_single_item() {
        let zipf = ZipfLike::new(1, 200, 800);
        let mut rng = SimRng::seed(1);
        assert_eq!(zipf.sample(&mut rng), 0);
        assert_eq!(zipf.len(), 1);
        assert!(!zipf.is_empty());
    }

    #[test]
    fn bursty_same_seed_identical() {
        let mk = || {
            BurstyArrivals::bursty(
                SimRng::seed(77),
                SimDuration::from_micros(5),
                SimDuration::from_millis(1),
                16,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..1_000 {
            assert_eq!(a.next_gap(), b.next_gap());
        }
    }

    #[test]
    fn steady_gaps_stay_near_nominal() {
        let gap = SimDuration::from_micros(10);
        let mut arr = BurstyArrivals::steady(SimRng::seed(3), gap);
        let mut total = 0u64;
        let n = 10_000u64;
        for _ in 0..n {
            let g = arr.next_gap().as_nanos();
            assert!(g >= gap.as_nanos() / 2 && g <= gap.as_nanos() * 3 / 2 + 1);
            total += g;
        }
        let mean = total / n;
        let nominal = gap.as_nanos();
        assert!(
            mean > nominal * 9 / 10 && mean < nominal * 11 / 10,
            "mean gap {mean} vs nominal {nominal}"
        );
    }

    #[test]
    fn bursty_mixes_short_and_long_gaps() {
        let mut arr = BurstyArrivals::bursty(
            SimRng::seed(5),
            SimDuration::from_micros(2),
            SimDuration::from_millis(2),
            8,
        );
        let (mut short, mut long) = (0u64, 0u64);
        for _ in 0..5_000 {
            let g = arr.next_gap().as_nanos();
            if g >= SimDuration::from_millis(1).as_nanos() {
                long += 1;
            } else {
                short += 1;
            }
        }
        assert!(short > long, "bursts dominate arrival count");
        assert!(long > 100, "idle gaps actually occur ({long})");
    }

    proptest! {
        #[test]
        fn prop_zipf_like_in_range(
            n in 1u64..100_000,
            hot in 1u64..1000,
            weight in 1u64..1000,
            seed in 0u64..1_000,
        ) {
            let zipf = ZipfLike::new(n, hot, weight);
            let mut rng = SimRng::seed(seed);
            for _ in 0..64 {
                prop_assert!(zipf.sample(&mut rng) < n);
            }
        }

        #[test]
        fn prop_zipf_like_skew_monotone_in_weight(seed in 0u64..200) {
            // A heavier hot weight must put at least as many draws in the
            // head as a lighter one (same seed, same split point).
            let n = 10_000u64;
            let head_of = |weight: u64| {
                let zipf = ZipfLike::new(n, 200, weight);
                let mut rng = SimRng::seed(seed);
                (0..2_000).filter(|_| zipf.sample(&mut rng) < n / 5).count()
            };
            let light = head_of(500);
            let heavy = head_of(900);
            prop_assert!(heavy + 100 >= light,
                "weight 900 head {heavy} << weight 500 head {light}");
        }

        #[test]
        fn prop_bursty_gaps_positive_and_bounded(
            burst_us in 1u64..100,
            idle_us in 1u64..10_000,
            mean_burst in 1u64..64,
            seed in 0u64..500,
        ) {
            let mut arr = BurstyArrivals::bursty(
                SimRng::seed(seed),
                SimDuration::from_micros(burst_us),
                SimDuration::from_micros(idle_us),
                mean_burst,
            );
            let cap = SimDuration::from_micros(burst_us.max(idle_us)).as_nanos();
            for _ in 0..256 {
                let g = arr.next_gap().as_nanos();
                prop_assert!(g > 0);
                prop_assert!(g <= cap * 3 / 2 + 1);
            }
        }
    }
}
