//! A metrics registry: named counters and latency histograms.
//!
//! The device model keeps its own hard-wired counters
//! (`DeviceStats`-style structs); harnesses and the hypervisor need a
//! place to accumulate *named* metrics — per-path request counts, latency
//! histograms, layer attributions — without inventing a new struct per
//! experiment. [`Metrics`] is that registry: insertion costs one ordered
//! map lookup, export is deterministic (keys sorted), and the whole
//! registry serializes to machine-readable JSON for `results/`.
//!
//! # Example
//!
//! ```
//! use nesc_sim::{Metrics, SimDuration};
//!
//! let mut m = Metrics::new();
//! m.inc("requests_total", 1);
//! m.record("request_latency_ns", 12_500);
//! m.record_duration("request_latency_ns", SimDuration::from_micros(14));
//! assert_eq!(m.counter("requests_total"), 1);
//! assert_eq!(m.histogram("request_latency_ns").unwrap().count(), 2);
//! let json = m.to_json();
//! assert!(json.get("counters").is_some());
//! ```

use std::collections::BTreeMap;

use crate::stats::Histogram;
use crate::time::SimDuration;

/// Named counters plus named histograms, exported deterministically.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the named counter (created at zero on first use).
    pub fn inc(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_string(), by);
            }
        }
    }

    /// Sets a counter to an absolute value (for gauges snapshotted from
    /// elsewhere, e.g. device stats folded in at export time).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram (created on first use).
    pub fn record(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Records a duration (as nanoseconds) into the named histogram.
    pub fn record_duration(&mut self, name: &str, d: SimDuration) {
        self.record(name, d.as_nanos());
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Serializes the registry: `counters` as a flat object, `histograms`
    /// as `{count, min, mean, p50, p99, max}` summaries. Keys are sorted,
    /// so the output is byte-deterministic for a deterministic run.
    pub fn to_json(&self) -> serde_json::Value {
        let counters: Vec<(String, serde_json::Value)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::Value::from(*v)))
            .collect();
        let histograms: Vec<(String, serde_json::Value)> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    serde_json::json!({
                        "count": h.count(),
                        "min": h.min(),
                        "mean": h.mean(),
                        "p50": h.percentile(50.0),
                        "p99": h.percentile(99.0),
                        "max": h.max(),
                    }),
                )
            })
            .collect();
        serde_json::json!({
            "counters": serde_json::Value::Object(counters),
            "histograms": serde_json::Value::Object(histograms),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("a", 2);
        m.inc("a", 3);
        m.set("b", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("b"), 7);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histograms_record_and_summarize() {
        let mut m = Metrics::new();
        for v in [100, 200, 300] {
            m.record("lat", v);
        }
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count(), 3);
        assert!(h.mean() > 150.0 && h.mean() < 250.0);
    }

    #[test]
    fn merge_adds_and_merges() {
        let mut a = Metrics::new();
        a.inc("n", 1);
        a.record("lat", 100);
        let mut b = Metrics::new();
        b.inc("n", 2);
        b.record("lat", 300);
        b.record("other", 5);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
    }

    #[test]
    fn merge_sums_every_counter_exactly() {
        let mut a = Metrics::new();
        a.inc("x", 10);
        a.inc("only_a", 3);
        let mut b = Metrics::new();
        b.inc("x", 32);
        b.inc("only_b", 5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 42, "shared counters add");
        assert_eq!(a.counter("only_a"), 3, "lhs-only counters survive");
        assert_eq!(a.counter("only_b"), 5, "rhs-only counters are adopted");
        // The source registry is untouched.
        assert_eq!(b.counter("x"), 32);
        assert_eq!(b.counter("only_a"), 0);
    }

    #[test]
    fn merge_combines_histogram_buckets_like_one_recorder() {
        // Recording a sample stream split across two registries and
        // merging must be bucket-for-bucket identical to recording the
        // whole stream into one registry — counts, extremes, mean and
        // every percentile.
        let samples: Vec<u64> = (0..200u64).map(|i| (i * i * 7 + 13) % 100_000).collect();
        let (left, right) = samples.split_at(73);
        let mut a = Metrics::new();
        for &v in left {
            a.record("lat", v);
        }
        let mut b = Metrics::new();
        for &v in right {
            b.record("lat", v);
        }
        a.merge(&b);
        let mut whole = Metrics::new();
        for &v in &samples {
            whole.record("lat", v);
        }
        let (m, w) = (a.histogram("lat").unwrap(), whole.histogram("lat").unwrap());
        assert_eq!(m.count(), w.count());
        assert_eq!(m.min(), w.min());
        assert_eq!(m.max(), w.max());
        assert_eq!(m.mean(), w.mean());
        for p in [1.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(m.percentile(p), w.percentile(p), "p{p} differs");
        }
    }

    #[test]
    fn merge_percentiles_stay_stable_under_repeat_and_empty_merges() {
        let mut a = Metrics::new();
        for v in [100u64, 200, 400, 800, 1600, 3200] {
            a.record("lat", v);
        }
        let p50 = a.histogram("lat").unwrap().percentile(50.0);
        let p99 = a.histogram("lat").unwrap().percentile(99.0);
        // Merging an empty registry changes nothing.
        a.merge(&Metrics::new());
        assert_eq!(a.histogram("lat").unwrap().percentile(50.0), p50);
        assert_eq!(a.histogram("lat").unwrap().percentile(99.0), p99);
        // Merging an identical sample population doubles the count but
        // leaves every quantile of the distribution where it was.
        let copy = a.clone();
        a.merge(&copy);
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 12);
        assert_eq!(h.percentile(50.0), p50, "p50 moved under self-merge");
        assert_eq!(h.percentile(99.0), p99, "p99 moved under self-merge");
        // A histogram present only in the source is cloned, not aliased.
        let mut src = Metrics::new();
        src.record("other", 7);
        a.merge(&src);
        src.record("other", 9);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        assert_eq!(src.histogram("other").unwrap().count(), 2);
    }

    #[test]
    fn export_is_deterministic() {
        let mut m = Metrics::new();
        m.inc("zeta", 1);
        m.inc("alpha", 2);
        m.record("lat", 1000);
        let a = serde_json::to_string_pretty(&m.to_json()).unwrap();
        let b = serde_json::to_string_pretty(&m.to_json()).unwrap();
        assert_eq!(a, b);
        // BTreeMap ordering: alpha before zeta.
        assert!(a.find("alpha").unwrap() < a.find("zeta").unwrap());
    }
}
