//! Simulated time.
//!
//! All timing in the reproduction is expressed in whole nanoseconds, which is
//! fine-grained enough for PCIe transaction modeling (a gen2 TLP is hundreds
//! of nanoseconds) while keeping arithmetic exact — no floating-point clock
//! drift between runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
///
/// `SimTime` is an absolute point; use [`SimDuration`] for spans. The two
/// types are kept distinct so that "time + time" (a bug) does not compile.
///
/// # Example
///
/// ```
/// use nesc_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_nanos(3_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, as a float (for reporting only).
    // nesc-lint::allow(D4): read-only export for report tables; never
    // converted back into SimTime.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since the epoch, as a float (for reporting only).
    // nesc-lint::allow(D4): read-only export for report tables; never
    // converted back into SimTime.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from float seconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    // nesc-lint::allow(D4): the one float->time entry point, used to state
    // calibration constants; rounds once to whole nanoseconds at the
    // boundary, so no float ever reaches the event queue.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds, as a float (for reporting only).
    // nesc-lint::allow(D4): read-only export for report tables; never
    // converted back into SimDuration.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in seconds, as a float (for reporting only).
    // nesc-lint::allow(D4): read-only export for report tables; never
    // converted back into SimDuration.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Whether this is the zero span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time needed to move `bytes` through a channel of `bytes_per_sec`
    /// bandwidth, rounded up to a whole nanosecond.
    ///
    /// This is the workhorse conversion for every bandwidth-limited resource
    /// in the model (PCIe links, DMA engines, storage media).
    ///
    /// A zero bandwidth (a contract violation: every modeled channel moves
    /// data) is treated as 1 B/s, and a transfer longer than `u64`
    /// nanoseconds saturates — misconfigured channels slow the simulation
    /// down instead of killing the data path.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        debug_assert!(bytes_per_sec > 0, "bandwidth must be positive");
        // ceil(bytes * 1e9 / bw) using u128 to avoid overflow.
        let ns = ((bytes as u128) * 1_000_000_000u128).div_ceil(bytes_per_sec.max(1) as u128);
        SimDuration(u64::try_from(ns).unwrap_or(u64::MAX))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    // nesc-lint::allow(D4): human-readable unit scaling for log/debug
    // output only; the float never leaves the formatter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        assert_eq!(t.as_nanos(), 10_000);
        let t2 = t + SimDuration::from_nanos(5);
        assert_eq!(t2 - t, SimDuration::from_nanos(5));
        assert_eq!(t2 - SimDuration::from_nanos(5), t);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte over 3 B/s: 333_333_333.33 ns rounds up to ...34.
        assert_eq!(
            SimDuration::for_bytes(1, 3),
            SimDuration::from_nanos(333_333_334)
        );
        // Exact division stays exact: 1 GiB/s moves 1 byte in ~0.93 ns -> 1 ns.
        assert_eq!(SimDuration::for_bytes(0, 100), SimDuration::ZERO);
        // 4 KiB at 1 GB/s = 4096 ns exactly.
        assert_eq!(
            SimDuration::for_bytes(4096, 1_000_000_000),
            SimDuration::from_nanos(4096)
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_nanos(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5e-6),
            SimDuration::from_nanos(1500)
        );
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(3);
        let b = SimTime::from_nanos(7);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(3).max(SimDuration::from_nanos(7)),
            SimDuration::from_nanos(7)
        );
    }
}
