#![warn(missing_docs)]

//! Deterministic discrete-event simulation (DES) substrate for the NeSC
//! reproduction.
//!
//! The NeSC paper evaluates a hardware storage controller attached to a real
//! host. This crate provides the timing machinery used to model that system
//! in software:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`EventQueue`] — a stable (FIFO-on-tie) min-heap of timed events; each
//!   subsystem model drains its own typed queue, or a top-level glue loop
//!   drains one queue of a system-wide event enum.
//! * [`resource`] — *timeline resources*: bandwidth pipes and serial service
//!   units that answer "if work arrives at `t`, when does it finish?" while
//!   correctly accounting for busy periods. These model PCIe links, DMA
//!   engines, storage media and CPU software layers.
//! * [`stats`] — histograms, percentile summaries and throughput meters used
//!   by the benchmark harnesses to regenerate the paper's figures.
//! * [`trace`] — the hierarchical span tracer every simulated layer reports
//!   into (plus the Chrome/Perfetto trace-event exporter), and [`metrics`] —
//!   the named counter/histogram registry the observability exporters
//!   serialize. Both are zero-cost no-ops until explicitly enabled.
//! * [`perfmon`] — deterministic windowed time-series sampling driven by
//!   simulated time (gauge/counter-delta series in ring buffers), the SLO
//!   watchdog with declarative threshold rules, and the JSON/CSV/Perfetto
//!   counter-track exporters.
//! * [`flight`] — the deterministic flight recorder: a bounded,
//!   preallocated ring of compact integer-only events appended on the hot
//!   path, plus per-window worst-K exemplar retention of full request
//!   span trees — the forensic substrate the anomaly dumps snapshot.
//! * [`rng`] — a small deterministic RNG facade plus the distributions the
//!   workloads need (uniform, exponential, Zipf, Pareto).
//! * [`gen`] — integer-only traffic generators for scale-out scenarios:
//!   Zipf-like working-set skew and bursty open-loop inter-arrival tapes.
//! * [`sched`] — round-robin scheduling helpers used by the NeSC virtual
//!   function multiplexer, including the bitmap/heap [`ReadyTable`] that
//!   keeps 1000-function dispatch O(changed state) per event.
//! * [`selfcheck`] — the runtime divergence self-check: digest a run's
//!   event sequence, span tree and metrics, run it twice from one seed,
//!   and report the first diverging event if reproducibility ever breaks.
//!
//! Everything is single-threaded and deterministic given a seed: running the
//! same experiment twice produces bit-identical results, which is what makes
//! the figure-regeneration harnesses reproducible.
//!
//! # Example
//!
//! ```
//! use nesc_sim::{EventQueue, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_micros(5), Ev::Pong);
//! q.push(SimTime::ZERO + SimDuration::from_micros(1), Ev::Ping);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::Ping);
//! assert_eq!(t.as_nanos(), 1_000);
//! ```

pub mod flight;
pub mod gen;
pub mod hash;
pub mod metrics;
pub mod perfmon;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod sched;
pub mod selfcheck;
pub mod stats;
pub mod time;
pub mod trace;

pub use flight::{
    Exemplar, FlightConfig, FlightEvent, FlightEventKind, FlightHandle, FlightRecorder,
};
pub use gen::{BurstyArrivals, ZipfLike};
pub use hash::{IntHashBuilder, IntHasher};
pub use metrics::Metrics;
pub use perfmon::{AnomalyEvent, Sampler, SeriesId, SeriesKind, SloRule, SloWatchdog, TimeSeries};
pub use queue::EventQueue;
pub use resource::{Pipe, ServiceUnit};
pub use rng::SimRng;
pub use sched::{ReadyTable, RoundRobin};
pub use selfcheck::{Divergence, EventRecord, RunDigest};
pub use stats::{Histogram, Summary, Throughput};
pub use time::{SimDuration, SimTime};
pub use trace::{chrome_trace_json, validate_chrome_trace, Span, SpanId, SpanTree, Tracer};
