//! Deterministic randomness for workloads.
//!
//! [`SimRng`] is a small, fast PRNG (xoshiro256++, seeded through a
//! SplitMix64 expander) implemented in-tree so the simulator has zero
//! external dependencies and builds in network-restricted environments.
//! Every experiment is reproducible from its 64-bit seed. It also provides
//! the handful of distributions the paper's workloads need — uniform,
//! exponential (think-time / inter-arrival gaps), Zipf (OLTP key
//! popularity) and bounded Pareto (Postmark file sizes).

/// A deterministic random number generator for simulated workloads.
///
/// # Example
///
/// ```
/// use nesc_sim::SimRng;
/// let mut a = SimRng::seed(7);
/// let mut b = SimRng::seed(7);
/// assert_eq!(a.range(0, 100), b.range(0, 100)); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step; used only to expand the user seed into xoshiro state so
/// that nearby seeds still produce decorrelated streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator; used to give each simulated
    /// client its own stream so adding clients does not perturb others.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed(s)
    }

    /// Uniform integer in `[lo, hi)`. An empty range (a contract
    /// violation) collapses to `lo`, still consuming one draw so the
    /// stream stays aligned.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi.saturating_sub(lo).max(1);
        // Lemire's multiply-shift maps the raw draw onto the span with bias
        // at most 2^-64 per value — indistinguishable at simulation scale.
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Bounded Pareto sample in `[lo, hi]` with shape `alpha`; heavy-tailed
    /// file sizes for the Postmark workload.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, `lo == 0`, or `alpha <= 0`.
    pub fn bounded_pareto(&mut self, lo: u64, hi: u64, alpha: f64) -> u64 {
        assert!(lo > 0 && lo < hi, "invalid pareto bounds [{lo}, {hi}]");
        assert!(alpha > 0.0, "pareto shape must be positive");
        let (l, h) = (lo as f64, hi as f64);
        let u = self.unit();
        let la = l.powf(alpha);
        let ha = h.powf(alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        (x as u64).clamp(lo, hi)
    }

    /// Pre-computed Zipf sampler over `n` items with exponent `theta`.
    pub fn zipf(n: u64, theta: f64) -> Zipf {
        Zipf::new(n, theta)
    }
}

/// Zipf-distributed item sampler (rank 0 is the most popular).
///
/// Uses the classic cumulative-probability inversion with a precomputed
/// table; exact (no rejection), O(log n) per sample.
///
/// # Example
///
/// ```
/// use nesc_sim::{SimRng, rng::Zipf};
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = SimRng::seed(1);
/// let mut hits0 = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 { hits0 += 1; }
/// }
/// assert!(hits0 > 500); // rank 0 is heavily favored
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(theta >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Whether the sampler is empty (never true; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..len()`.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit();
        // total_cmp: the cdf holds finite probabilities in [0, 1], where
        // the total order agrees with the partial one.
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::seed(42);
        let mut b = SimRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut root = SimRng::seed(1);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let v1: Vec<u64> = (0..8).map(|_| c1.range(0, u64::MAX)).collect();
        let v2: Vec<u64> = (0..8).map(|_| c2.range(0, u64::MAX)).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed(3);
        let n = 50_000;
        let mean = 10.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.3, "estimated mean {est}");
    }

    #[test]
    fn bounded_pareto_in_bounds() {
        let mut rng = SimRng::seed(4);
        for _ in 0..10_000 {
            let v = rng.bounded_pareto(512, 1_048_576, 1.1);
            assert!((512..=1_048_576).contains(&v));
        }
    }

    #[test]
    fn zipf_is_monotone_in_popularity() {
        let zipf = Zipf::new(100, 1.0);
        let mut rng = SimRng::seed(5);
        let mut counts = vec![0u64; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_theta_zero_is_uniformish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SimRng::seed(6);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "count {c}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(7);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
