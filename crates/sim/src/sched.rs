//! Scheduling helpers.
//!
//! The NeSC virtual-function multiplexer "dequeues client requests in a
//! round-robin manner in order to prevent client starvation" (paper §V-A).
//! [`RoundRobin`] implements that pointer: given which queues are currently
//! non-empty, it picks the next one after the last-served position.

/// A round-robin pointer over `n` slots.
///
/// # Example
///
/// ```
/// use nesc_sim::RoundRobin;
/// let mut rr = RoundRobin::new(3);
/// // Only slots 0 and 2 are ready:
/// assert_eq!(rr.next(|i| i != 1), Some(0));
/// assert_eq!(rr.next(|i| i != 1), Some(2));
/// assert_eq!(rr.next(|i| i != 1), Some(0)); // wraps, skipping 1
/// assert_eq!(rr.next(|_| false), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    /// Index of the slot that will be *considered first* on the next call.
    cursor: usize,
}

impl RoundRobin {
    /// Creates a pointer over `n` slots, starting at slot 0.
    pub fn new(n: usize) -> Self {
        RoundRobin { n, cursor: 0 }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grows the slot count (new virtual functions attach at the end).
    pub fn grow_to(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Picks the next ready slot at or after the cursor, advancing the
    /// cursor past it; returns `None` when no slot is ready.
    pub fn next(&mut self, ready: impl Fn(usize) -> bool) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for off in 0..self.n {
            let i = (self.cursor + off) % self.n;
            if ready(i) {
                self.cursor = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cycles_fairly() {
        let mut rr = RoundRobin::new(4);
        let picks: Vec<usize> = (0..8).map(|_| rr.next(|_| true).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_not_ready() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.next(|i| i == 2), Some(2));
        assert_eq!(rr.next(|i| i == 2), Some(2));
    }

    #[test]
    fn empty_and_grow() {
        let mut rr = RoundRobin::new(0);
        assert!(rr.is_empty());
        assert_eq!(rr.next(|_| true), None);
        rr.grow_to(2);
        assert_eq!(rr.len(), 2);
        assert_eq!(rr.next(|_| true), Some(0));
        rr.grow_to(1); // shrinking is a no-op
        assert_eq!(rr.len(), 2);
    }

    proptest! {
        /// With all slots always ready, over n*k picks every slot is chosen
        /// exactly k times — perfect fairness.
        #[test]
        fn prop_perfect_fairness(n in 1usize..20, k in 1usize..20) {
            let mut rr = RoundRobin::new(n);
            let mut counts = vec![0usize; n];
            for _ in 0..n * k {
                counts[rr.next(|_| true).unwrap()] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == k));
        }

        /// The pointer never returns a slot the readiness predicate rejects.
        #[test]
        fn prop_respects_readiness(n in 1usize..16, mask in 0u32..65536, picks in 1usize..50) {
            let mut rr = RoundRobin::new(n);
            for _ in 0..picks {
                if let Some(i) = rr.next(|i| mask & (1 << i) != 0) {
                    prop_assert!(mask & (1 << i) != 0);
                }
            }
        }
    }
}
