//! Scheduling helpers.
//!
//! The NeSC virtual-function multiplexer "dequeues client requests in a
//! round-robin manner in order to prevent client starvation" (paper §V-A).
//! [`RoundRobin`] implements that pointer: given which queues are currently
//! non-empty, it picks the next one after the last-served position.
//!
//! [`ReadyTable`] is the scale-out successor: it keeps the same
//! round-robin-within-priority-class semantics but replaces the per-tick
//! O(functions) readiness scan with incrementally maintained per-class
//! bitmaps plus an indexed min-heap of future arrivals, so a multiplexer
//! over 1000+ functions pays O(changed state), not O(all functions), per
//! event.

use crate::time::SimTime;

/// Sentinel for "not in the heap" in [`ReadyTable::pos`].
const NO_POS: u32 = u32::MAX;

/// Where a slot currently lives inside a [`ReadyTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Not tracked: no pending work.
    Idle,
    /// Pending work whose arrival time may still be in the future; the
    /// slot sits in the arrival heap.
    Armed,
    /// Arrived work: the slot's bit is set in the class bitmap.
    Ready(u8),
}

/// An incrementally maintained ready-set for round-robin dispatch across
/// priority classes.
///
/// The owner calls [`arm`](ReadyTable::arm) / [`clear`](ReadyTable::clear)
/// whenever a slot's visible work changes, [`promote_due`](ReadyTable::promote_due)
/// at each dispatch instant to move matured arrivals into their class
/// bitmap, and [`pick`](ReadyTable::pick) to select the next slot:
/// lowest-numbered non-empty class, first set bit cyclically from the
/// shared round-robin cursor. Picking does **not** consume the slot — the
/// owner re-arms or clears it after processing, mirroring how a function's
/// queue front changes.
///
/// All storage is pre-sized by [`grow_to`](ReadyTable::grow_to); the
/// steady-state path never allocates.
///
/// # Example
///
/// ```
/// use nesc_sim::{ReadyTable, SimTime};
/// let mut rt = ReadyTable::new(2);
/// rt.grow_to(3);
/// rt.arm(1, SimTime::from_nanos(10));
/// rt.arm(2, SimTime::from_nanos(5));
/// let now = SimTime::from_nanos(10);
/// rt.promote_due(now, |_| 0);
/// assert_eq!(rt.pick(), Some(1)); // cursor starts at 0; slot 1 is first
/// assert_eq!(rt.pick(), Some(2));
/// assert_eq!(rt.pick(), Some(1)); // wraps; nothing was cleared
/// ```
#[derive(Debug, Clone)]
pub struct ReadyTable {
    /// Number of priority classes (class 0 dispatches first).
    classes: usize,
    /// Number of slots.
    n: usize,
    /// Round-robin position shared by all classes: the slot considered
    /// first on the next [`pick`](ReadyTable::pick).
    cursor: usize,
    state: Vec<SlotState>,
    /// One bitmap per class, `ceil(n / 64)` words each.
    words: Vec<Vec<u64>>,
    /// Set-bit count per class, so empty classes are skipped in O(1).
    counts: Vec<usize>,
    /// Min-heap of `(arrival, slot)` for armed slots.
    heap: Vec<(SimTime, u32)>,
    /// `pos[slot]` = index in `heap`, or [`NO_POS`].
    pos: Vec<u32>,
}

impl ReadyTable {
    /// Creates an empty table with `classes` priority classes.
    ///
    /// A degenerate class count (zero, or more than 256) is clamped into
    /// `1..=256`.
    pub fn new(classes: usize) -> Self {
        debug_assert!(classes > 0 && classes <= 256, "bad class count {classes}");
        let classes = classes.clamp(1, 256);
        ReadyTable {
            classes,
            n: 0,
            cursor: 0,
            state: Vec::new(),
            words: vec![Vec::new(); classes],
            counts: vec![0; classes],
            heap: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grows the slot count (never shrinks), pre-sizing every container so
    /// subsequent operations are allocation-free.
    pub fn grow_to(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        self.n = n;
        self.state.resize(n, SlotState::Idle);
        self.pos.resize(n, NO_POS);
        let nw = n.div_ceil(64);
        for w in &mut self.words {
            w.resize(nw, 0);
        }
        // Capacity for one heap entry per slot, so arming never allocates.
        self.heap.reserve(n - self.heap.len());
    }

    /// Tracks `slot` with pending work visible at `at`, replacing any
    /// previous registration. The slot becomes pickable once
    /// [`promote_due`](ReadyTable::promote_due) runs with `now >= at`.
    /// An out-of-range slot (a contract violation) is ignored.
    pub fn arm(&mut self, slot: usize, at: SimTime) {
        debug_assert!(slot < self.n, "slot {slot} out of range {}", self.n);
        if slot >= self.n {
            return;
        }
        // Fast path: re-arming an armed slot at its existing key (the
        // common "queue front unchanged" refresh) is a no-op.
        if self.state[slot] == SlotState::Armed && self.heap[self.pos[slot] as usize].0 == at {
            return;
        }
        self.detach(slot);
        self.state[slot] = SlotState::Armed;
        self.heap_push(at, slot as u32);
    }

    /// Stops tracking `slot` (no pending work). An out-of-range slot (a
    /// contract violation) is ignored.
    pub fn clear(&mut self, slot: usize) {
        debug_assert!(slot < self.n, "slot {slot} out of range {}", self.n);
        if slot >= self.n {
            return;
        }
        self.detach(slot);
        self.state[slot] = SlotState::Idle;
    }

    /// Moves every armed slot whose arrival is at or before `now` into its
    /// class bitmap; `class_of` reads the slot's *current* priority
    /// (clamped to the class count).
    pub fn promote_due(&mut self, now: SimTime, class_of: impl Fn(usize) -> usize) {
        while let Some(&(t, slot)) = self.heap.first() {
            if t > now {
                break;
            }
            self.heap_remove(slot as usize);
            let c = class_of(slot as usize).min(self.classes - 1);
            self.state[slot as usize] = SlotState::Ready(c as u8);
            self.set_bit(c, slot as usize);
        }
    }

    /// Picks the next ready slot: lowest non-empty class, first set bit at
    /// or after the cursor (cyclic); advances the cursor past the pick.
    /// The slot stays ready until the owner re-arms or clears it.
    pub fn pick(&mut self) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for c in 0..self.classes {
            if self.counts[c] == 0 {
                continue;
            }
            let slot = self.scan_from(c, self.cursor % self.n);
            self.cursor = (slot + 1) % self.n;
            return Some(slot);
        }
        None
    }

    /// Earliest armed arrival, if any — the instant to sleep until when
    /// nothing is ready.
    pub fn next_arrival(&self) -> Option<SimTime> {
        self.heap.first().map(|&(t, _)| t)
    }

    /// First set bit of `class` at or after `start`, wrapping. The caller
    /// guarantees the class is non-empty.
    fn scan_from(&self, class: usize, start: usize) -> usize {
        let words = &self.words[class];
        let nw = words.len();
        let mut w = start / 64;
        let mut masked = words[w] & (!0u64 << (start % 64));
        // nw + 1 reads: the start word masked, then every word wrapping
        // around, re-reading the start word unmasked last.
        for _ in 0..=nw {
            if masked != 0 {
                return w * 64 + masked.trailing_zeros() as usize;
            }
            w = (w + 1) % nw;
            masked = words[w];
        }
        // The class count said a bit was set but none was found — the
        // bitmaps are out of sync. Degrade to the scan origin; the pick is
        // merely unfair, not fatal.
        debug_assert!(false, "scan_from called on an empty class");
        start % self.n.max(1)
    }

    fn detach(&mut self, slot: usize) {
        match self.state[slot] {
            SlotState::Idle => {}
            SlotState::Armed => self.heap_remove(slot),
            SlotState::Ready(c) => self.clear_bit(c as usize, slot),
        }
    }

    fn set_bit(&mut self, class: usize, slot: usize) {
        self.words[class][slot / 64] |= 1u64 << (slot % 64);
        self.counts[class] += 1;
    }

    fn clear_bit(&mut self, class: usize, slot: usize) {
        self.words[class][slot / 64] &= !(1u64 << (slot % 64));
        self.counts[class] -= 1;
    }

    fn heap_push(&mut self, at: SimTime, slot: u32) {
        let i = self.heap.len();
        self.heap.push((at, slot));
        self.pos[slot as usize] = i as u32;
        self.sift_up(i);
    }

    fn heap_remove(&mut self, slot: usize) {
        let i = self.pos[slot] as usize;
        self.pos[slot] = NO_POS;
        let last = self.heap.len() - 1;
        self.heap.swap(i, last);
        self.heap.pop();
        if i < self.heap.len() {
            self.pos[self.heap[i].1 as usize] = i as u32;
            self.sift_up(i);
            self.sift_down(i);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let p = (i - 1) / 2;
            if self.heap[i] < self.heap[p] {
                self.heap.swap(i, p);
                self.pos[self.heap[i].1 as usize] = i as u32;
                i = p;
            } else {
                break;
            }
        }
        self.pos[self.heap[i].1 as usize] = i as u32;
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let mut m = l;
            if l + 1 < self.heap.len() && self.heap[l + 1] < self.heap[l] {
                m = l + 1;
            }
            if self.heap[m] < self.heap[i] {
                self.heap.swap(i, m);
                self.pos[self.heap[i].1 as usize] = i as u32;
                i = m;
            } else {
                break;
            }
        }
        self.pos[self.heap[i].1 as usize] = i as u32;
    }
}

/// A round-robin pointer over `n` slots.
///
/// # Example
///
/// ```
/// use nesc_sim::RoundRobin;
/// let mut rr = RoundRobin::new(3);
/// // Only slots 0 and 2 are ready:
/// assert_eq!(rr.next(|i| i != 1), Some(0));
/// assert_eq!(rr.next(|i| i != 1), Some(2));
/// assert_eq!(rr.next(|i| i != 1), Some(0)); // wraps, skipping 1
/// assert_eq!(rr.next(|_| false), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobin {
    n: usize,
    /// Index of the slot that will be *considered first* on the next call.
    cursor: usize,
}

impl RoundRobin {
    /// Creates a pointer over `n` slots, starting at slot 0.
    pub fn new(n: usize) -> Self {
        RoundRobin { n, cursor: 0 }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grows the slot count (new virtual functions attach at the end).
    pub fn grow_to(&mut self, n: usize) {
        if n > self.n {
            self.n = n;
        }
    }

    /// Picks the next ready slot at or after the cursor, advancing the
    /// cursor past it; returns `None` when no slot is ready.
    pub fn next(&mut self, ready: impl Fn(usize) -> bool) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for off in 0..self.n {
            let i = (self.cursor + off) % self.n;
            if ready(i) {
                self.cursor = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cycles_fairly() {
        let mut rr = RoundRobin::new(4);
        let picks: Vec<usize> = (0..8).map(|_| rr.next(|_| true).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_not_ready() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(rr.next(|i| i == 2), Some(2));
        assert_eq!(rr.next(|i| i == 2), Some(2));
    }

    #[test]
    fn empty_and_grow() {
        let mut rr = RoundRobin::new(0);
        assert!(rr.is_empty());
        assert_eq!(rr.next(|_| true), None);
        rr.grow_to(2);
        assert_eq!(rr.len(), 2);
        assert_eq!(rr.next(|_| true), Some(0));
        rr.grow_to(1); // shrinking is a no-op
        assert_eq!(rr.len(), 2);
    }

    proptest! {
        /// With all slots always ready, over n*k picks every slot is chosen
        /// exactly k times — perfect fairness.
        #[test]
        fn prop_perfect_fairness(n in 1usize..20, k in 1usize..20) {
            let mut rr = RoundRobin::new(n);
            let mut counts = vec![0usize; n];
            for _ in 0..n * k {
                counts[rr.next(|_| true).unwrap()] += 1;
            }
            prop_assert!(counts.iter().all(|&c| c == k));
        }

        /// The pointer never returns a slot the readiness predicate rejects.
        #[test]
        fn prop_respects_readiness(n in 1usize..16, mask in 0u32..65536, picks in 1usize..50) {
            let mut rr = RoundRobin::new(n);
            for _ in 0..picks {
                if let Some(i) = rr.next(|i| mask & (1 << i) != 0) {
                    prop_assert!(mask & (1 << i) != 0);
                }
            }
        }
    }

    #[test]
    fn ready_table_round_robins_within_class() {
        let mut rt = ReadyTable::new(4);
        rt.grow_to(5);
        for s in 1..5 {
            rt.arm(s, SimTime::ZERO);
        }
        rt.promote_due(SimTime::ZERO, |_| 3);
        let picks: Vec<usize> = (0..8).map(|_| rt.pick().unwrap()).collect();
        assert_eq!(picks, vec![1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn ready_table_prefers_lower_class() {
        let mut rt = ReadyTable::new(4);
        rt.grow_to(4);
        rt.arm(1, SimTime::ZERO);
        rt.arm(2, SimTime::ZERO);
        rt.arm(3, SimTime::ZERO);
        rt.promote_due(SimTime::ZERO, |s| if s == 2 { 0 } else { 3 });
        assert_eq!(rt.pick(), Some(2));
        rt.clear(2);
        assert_eq!(rt.pick(), Some(3)); // cursor moved past 2
        rt.clear(3);
        assert_eq!(rt.pick(), Some(1));
    }

    #[test]
    fn ready_table_holds_future_arrivals() {
        let mut rt = ReadyTable::new(1);
        rt.grow_to(2);
        rt.arm(1, SimTime::from_nanos(100));
        rt.promote_due(SimTime::from_nanos(99), |_| 0);
        assert_eq!(rt.pick(), None);
        assert_eq!(rt.next_arrival(), Some(SimTime::from_nanos(100)));
        rt.promote_due(SimTime::from_nanos(100), |_| 0);
        assert_eq!(rt.pick(), Some(1));
        assert_eq!(rt.next_arrival(), None);
    }

    #[test]
    fn ready_table_rearm_and_clear() {
        let mut rt = ReadyTable::new(2);
        rt.grow_to(3);
        rt.arm(1, SimTime::from_nanos(5));
        rt.arm(1, SimTime::from_nanos(5)); // identical re-arm is a no-op
        rt.arm(1, SimTime::from_nanos(9)); // key change re-heaps
        rt.promote_due(SimTime::from_nanos(9), |_| 0);
        assert_eq!(rt.pick(), Some(1));
        rt.arm(1, SimTime::from_nanos(20)); // ready -> armed again
        assert_eq!(rt.pick(), None);
        rt.clear(1);
        assert_eq!(rt.next_arrival(), None);
        assert_eq!(rt.pick(), None);
    }

    #[test]
    fn ready_table_scales_past_word_boundaries() {
        let mut rt = ReadyTable::new(4);
        rt.grow_to(1024);
        for s in (3..1024).step_by(97) {
            rt.arm(s, SimTime::from_nanos(s as u64));
        }
        rt.promote_due(SimTime::from_nanos(2000), |s| s % 4);
        let mut seen = Vec::new();
        for _ in 0..11 {
            let s = rt.pick().unwrap();
            seen.push(s);
            rt.clear(s);
        }
        assert_eq!(rt.pick(), None);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 11, "every armed slot picked once: {seen:?}");
    }

    proptest! {
        /// ReadyTable must agree with the reference implementation — a
        /// RoundRobin cursor over a linear scan with priority filtering —
        /// across an arbitrary schedule of arm/clear/pick operations.
        #[test]
        fn prop_ready_table_matches_linear_scan(
            n in 1usize..70,
            classes in 1usize..5,
            ops in proptest::collection::vec((0u8..4, 0usize..70, 0u64..50), 1..120),
        ) {
            let mut rt = ReadyTable::new(classes);
            rt.grow_to(n);
            let mut rr = RoundRobin::new(n);
            // Reference state: slot -> (arrival, class) when armed.
            let mut armed: Vec<Option<(u64, usize)>> = vec![None; n];
            let mut now = 0u64;
            for (kind, slot, arg) in ops {
                let slot = slot % n;
                match kind {
                    0 => {
                        let at = now + arg;
                        rt.arm(slot, SimTime::from_nanos(at));
                        armed[slot] = Some((at, arg as usize % classes));
                    }
                    1 => {
                        rt.clear(slot);
                        armed[slot] = None;
                    }
                    2 => now += arg,
                    _ => {
                        let armed_ref = &armed;
                        rt.promote_due(
                            SimTime::from_nanos(now),
                            |s| armed_ref[s].map_or(0, |(_, c)| c),
                        );
                        let best = armed
                            .iter()
                            .filter_map(|a| a.filter(|&(t, _)| t <= now).map(|(_, c)| c))
                            .min();
                        let expect = best.and_then(|b| rr.next(|i| {
                            armed[i].is_some_and(|(t, c)| t <= now && c == b)
                        }));
                        prop_assert_eq!(rt.pick(), expect);
                    }
                }
            }
        }
    }
}
