//! Deterministic flight recorder: a bounded ring of compact integer-only
//! events plus per-window exemplar retention of the worst-K request span
//! trees.
//!
//! The SLO watchdog ([`crate::perfmon::SloWatchdog`]) says *that* an SLO
//! broke; this module preserves *why*: what the scheduler, BTLB, media and
//! link were doing in the microseconds around the breach, and the full
//! span trees of the requests that actually blew the tail. The design
//! mirrors the perfmon sampler's deferred-fold contract:
//!
//! * **Ring** — [`FlightRecorder::append`] writes one fixed-size
//!   [`FlightEvent`] into a preallocated ring by index. Zero allocation in
//!   steady state, one branch when disabled, and the write is inside a
//!   `nesc-lint: hot` region so rules D7/P2 police it.
//! * **Exemplars** — the hot path only *notes* request completions
//!   ([`FlightRecorder::note_request`], a fixed-size push). When a
//!   telemetry window closes, [`FlightRecorder::close_window`] folds the
//!   notes by timestamp (an observation at `t` belongs to the window
//!   ending at `W` iff `t < W`, exactly like the sampler), keeps the
//!   worst-K by latency, and snapshots their span subtrees via
//!   [`Tracer::subtree`] — so the p99-busting requests keep full traces
//!   while everything else stays coarse.
//! * **Determinism** — everything is driven by simulated time and
//!   integer state; the same seed produces a byte-identical
//!   [`FlightRecorder::snapshot_json`], which is what makes the forensic
//!   dump golden-gateable.
//!
//! # Example
//!
//! ```
//! use nesc_sim::{FlightConfig, FlightEventKind, FlightHandle, SimTime, Tracer};
//!
//! let flight = FlightHandle::enabled(FlightConfig::default());
//! flight.append(SimTime::from_nanos(10), FlightEventKind::Doorbell, 1, 42, 0);
//! flight.note_request(SimTime::from_nanos(900), 42, 0, 890, nesc_sim::SpanId::NONE);
//! flight.close_window(1_000, 0, &Tracer::disabled());
//! assert_eq!(flight.with(|r| r.total()), Some(1));
//! assert_eq!(flight.with(|r| r.exemplars().len()), Some(1));
//! ```

use std::cell::{Cell, Ref, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::selfcheck::fnv1a;
use crate::time::SimTime;
use crate::trace::{Span, SpanId, Tracer};

/// What one ring slot records. The discriminant is the integer stored in
/// the serialized dump; [`FlightEventKind::from_u8`] decodes it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightEventKind {
    /// A guest issued a request (`func` = VF, `a` = request id,
    /// `b` = disk index).
    RequestStart = 0,
    /// The posted doorbell write landed on the device (`a` = request id,
    /// `b` = submit time in ns — the start of the doorbell interval).
    Doorbell = 1,
    /// A request entered its function's command queue (`a` = request id,
    /// `b` = queue depth after the push).
    QueueEnter = 2,
    /// The multiplexer popped a request off its queue (`a` = request id,
    /// `b` = arrival time in ns).
    QueueExit = 3,
    /// The scheduler dispatched the request into the translation pipeline
    /// (`a` = request id, `b` = block count).
    SchedDispatch = 4,
    /// A BTLB lookup missed and a tree walk resolved it (`func` = the
    /// nesting level that missed, `a` = vLBA byte offset, `b` = walk
    /// levels).
    BtlbMiss = 5,
    /// The hypervisor's miss handler serviced a rewalk (`a` = interrupt
    /// time in ns, `b` = disk index).
    Rewalk = 6,
    /// One batched media pass finished (`a` = first block's arrival at
    /// the medium in ns, `b` = blocks; the event time is the last block's
    /// media completion).
    MediaService = 7,
    /// One batched PCIe data pass finished (`a` = pass start in ns,
    /// `b` = blocks).
    LinkService = 8,
    /// The guest observed the completion (`a` = request id, `b` = device
    /// completion time in ns — the start of the guest_complete interval).
    RequestComplete = 9,
    /// The SLO watchdog fired (`a` = rule index, `b` = breaching window).
    Anomaly = 10,
}

impl FlightEventKind {
    /// Stable display name (used by `nesc-inspect` timelines).
    pub fn as_str(self) -> &'static str {
        match self {
            FlightEventKind::RequestStart => "request_start",
            FlightEventKind::Doorbell => "doorbell",
            FlightEventKind::QueueEnter => "queue_enter",
            FlightEventKind::QueueExit => "queue_exit",
            FlightEventKind::SchedDispatch => "sched_dispatch",
            FlightEventKind::BtlbMiss => "btlb_miss",
            FlightEventKind::Rewalk => "rewalk",
            FlightEventKind::MediaService => "media_service",
            FlightEventKind::LinkService => "link_service",
            FlightEventKind::RequestComplete => "request_complete",
            FlightEventKind::Anomaly => "anomaly",
        }
    }

    /// Decodes a serialized discriminant.
    pub fn from_u8(v: u8) -> Option<FlightEventKind> {
        Some(match v {
            0 => FlightEventKind::RequestStart,
            1 => FlightEventKind::Doorbell,
            2 => FlightEventKind::QueueEnter,
            3 => FlightEventKind::QueueExit,
            4 => FlightEventKind::SchedDispatch,
            5 => FlightEventKind::BtlbMiss,
            6 => FlightEventKind::Rewalk,
            7 => FlightEventKind::MediaService,
            8 => FlightEventKind::LinkService,
            9 => FlightEventKind::RequestComplete,
            10 => FlightEventKind::Anomaly,
            _ => return None,
        })
    }
}

/// One fixed-size, integer-only ring slot. The meaning of `a` and `b` is
/// per-kind (see [`FlightEventKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulated time of the event, in nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// The function (VF) the event is attributed to (0 = PF / global).
    pub func: u32,
    /// First per-kind payload word.
    pub a: u64,
    /// Second per-kind payload word.
    pub b: u64,
}

impl Default for FlightEvent {
    fn default() -> Self {
        FlightEvent {
            t_ns: 0,
            kind: FlightEventKind::RequestStart,
            func: 0,
            a: 0,
            b: 0,
        }
    }
}

/// Sizing and retention policy for the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Ring slots (preallocated; older events are overwritten).
    pub capacity: usize,
    /// Worst-K requests per window that keep their full span trees.
    pub exemplar_k: usize,
    /// How many recent windows of exemplars are retained.
    pub exemplar_windows: u64,
}

impl Default for FlightConfig {
    /// 512 slots keep the ring at 16 KiB — one `FlightEvent` is 32
    /// bytes — so the hot-path stores stay L1-resident instead of
    /// streaming a larger buffer through the cache and evicting the
    /// simulator's working set (measured at several percent of request
    /// cost for a 128 KiB ring). Forensic deep-dives that want longer
    /// history opt into a bigger ring explicitly.
    fn default() -> Self {
        FlightConfig {
            capacity: 512,
            exemplar_k: 2,
            exemplar_windows: 8,
        }
    }
}

impl FlightConfig {
    /// Sets the ring capacity in slots.
    pub fn capacity(mut self, slots: usize) -> Self {
        self.capacity = slots;
        self
    }

    /// Sets the worst-K exemplar count per window.
    pub fn exemplar_k(mut self, k: usize) -> Self {
        self.exemplar_k = k;
        self
    }

    /// Sets how many recent windows of exemplars are retained.
    pub fn exemplar_windows(mut self, windows: u64) -> Self {
        self.exemplar_windows = windows;
        self
    }
}

/// A hot-path note of one completed request, folded into exemplars when
/// its window closes (mirrors the perfmon sampler's `PendingObs`).
#[derive(Debug, Clone, Copy)]
struct PendingExemplar {
    /// Completion time in nanoseconds — decides the window it lands in.
    t_ns: u64,
    /// Request sequence id (the device request id minted at issue).
    seq: u64,
    /// Disk index (dense attach order).
    disk: u32,
    /// End-to-end latency in nanoseconds.
    latency_ns: u64,
    /// The request's root span (NONE when tracing is off).
    root: SpanId,
}

/// One retained worst-K request: its identity, its window, and the full
/// span subtree captured at window close.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The window whose close selected this request.
    pub window: u64,
    /// Request sequence id (joins against `request_*` ring events).
    pub seq: u64,
    /// Disk index.
    pub disk: u32,
    /// Completion time in nanoseconds.
    pub t_ns: u64,
    /// End-to-end latency in nanoseconds.
    pub latency_ns: u64,
    /// The root span's id (0 when tracing was off).
    pub root: u64,
    /// The captured span subtree (root first; empty when tracing was
    /// off).
    pub spans: Vec<Span>,
}

/// The recorder itself: the preallocated event ring plus the exemplar
/// fold state. Usually owned behind a [`FlightHandle`].
///
/// The ring uses `Cell` interior mutability so the hot-path
/// [`append`](Self::append) takes `&self` — no `RefCell` borrow flag to
/// maintain per event, and no panic path. The colder exemplar state
/// (a per-window fold) stays behind `RefCell`s.
#[derive(Debug)]
pub struct FlightRecorder {
    cfg: FlightConfig,
    /// The ring; `head` is the next write target.
    buf: Vec<Cell<FlightEvent>>,
    /// Next write slot (always `total % capacity`, maintained as a
    /// wrapping cursor so the hot append never divides).
    head: Cell<usize>,
    /// Events ever appended (dropped = total - retained).
    total: Cell<u64>,
    /// Deferred completion notes since the last window close. Capacity is
    /// retained across folds.
    pending: RefCell<Vec<PendingExemplar>>,
    /// Retained exemplars, oldest window first, rank order within a
    /// window. A deque so the per-window eviction pops stale fronts in
    /// O(evicted) instead of shifting the survivors every window.
    exemplars: RefCell<VecDeque<Exemplar>>,
    /// Scratch for one window's fold (capacity retained).
    fold_scratch: RefCell<Vec<PendingExemplar>>,
}

impl FlightRecorder {
    /// A recorder with its ring preallocated.
    pub fn new(cfg: FlightConfig) -> Self {
        let buf = vec![Cell::new(FlightEvent::default()); cfg.capacity];
        FlightRecorder {
            cfg,
            buf,
            head: Cell::new(0),
            total: Cell::new(0),
            pending: RefCell::new(Vec::new()),
            exemplars: RefCell::new(VecDeque::new()),
            fold_scratch: RefCell::new(Vec::new()),
        }
    }

    /// Appends one event, overwriting the oldest slot when full. This is
    /// the hot-path write: a `Cell` store into the preallocated ring, no
    /// allocation, no borrow flag, no panic path.
    // nesc-lint: hot
    #[inline]
    pub fn append(&self, t: SimTime, kind: FlightEventKind, func: u32, a: u64, b: u64) {
        let slot = self.head.get();
        if let Some(ev) = self.buf.get(slot) {
            ev.set(FlightEvent {
                t_ns: t.as_nanos(),
                kind,
                func,
                a,
                b,
            });
            let next = slot + 1;
            self.head.set(if next == self.buf.len() { 0 } else { next });
            self.total.set(self.total.get() + 1);
        }
    }

    /// Notes one completed request for exemplar selection — the hot-path
    /// append (a fixed-size push; the worst-K fold is deferred to
    /// [`close_window`](Self::close_window), so capacity is retained).
    // nesc-lint: hot
    #[inline]
    pub fn note_request(&self, done: SimTime, seq: u64, disk: u32, latency_ns: u64, root: SpanId) {
        self.pending.borrow_mut().push(PendingExemplar {
            t_ns: done.as_nanos(),
            seq,
            disk,
            latency_ns,
            root,
        });
    }

    /// Folds the completion notes of the window ending at `end_ns`
    /// (exactly those with `t_ns < end_ns`), keeps the worst-K by latency
    /// (ties broken by earlier sequence id, so selection is total and
    /// deterministic), captures each keeper's span subtree, and evicts
    /// exemplar windows older than the retention horizon.
    pub fn close_window(&self, end_ns: u64, window: u64, tracer: &Tracer) {
        // Evict first: windows only advance, so the stale exemplars are a
        // prefix of the deque and popping them is O(evicted). New pushes
        // below carry `window` itself and are always retained.
        let horizon = self.cfg.exemplar_windows;
        let keep = |e: &Exemplar| e.window + horizon > window || horizon == 0 && e.window == window;
        let mut exemplars = self.exemplars.borrow_mut();
        while exemplars.front().is_some_and(|e| !keep(e)) {
            exemplars.pop_front();
        }
        let mut pending = self.pending.borrow_mut();
        if pending.is_empty() || self.cfg.exemplar_k == 0 {
            pending.clear();
            return;
        }
        let mut scratch = self.fold_scratch.borrow_mut();
        scratch.clear();
        let mut i = 0;
        while i < pending.len() {
            if pending.get(i).is_some_and(|p| p.t_ns < end_ns) {
                scratch.push(pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        scratch.sort_by(|x, y| y.latency_ns.cmp(&x.latency_ns).then(x.seq.cmp(&y.seq)));
        scratch.truncate(self.cfg.exemplar_k);
        for p in scratch.iter() {
            exemplars.push_back(Exemplar {
                window,
                seq: p.seq,
                disk: p.disk,
                t_ns: p.t_ns,
                latency_ns: p.latency_ns,
                root: p.root.0,
                spans: tracer.subtree(p.root),
            });
        }
    }

    /// Ring capacity in slots.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events ever appended.
    pub fn total(&self) -> u64 {
        self.total.get()
    }

    /// Events overwritten by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.total.get().saturating_sub(self.buf.len() as u64)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = FlightEvent> + '_ {
        let cap = self.buf.len() as u64;
        let total = self.total.get();
        let len = if cap == 0 { 0 } else { total.min(cap) };
        let start = total - len;
        (start..total).filter_map(move |i| self.buf.get((i % cap.max(1)) as usize).map(Cell::get))
    }

    /// The retained exemplars, oldest window first.
    pub fn exemplars(&self) -> Ref<'_, VecDeque<Exemplar>> {
        self.exemplars.borrow()
    }

    /// Serializes the full recorder state as deterministic JSON: the ring
    /// metadata, every retained event as a compact `[t_ns, kind, func, a,
    /// b]` integer row, and the exemplars with their span subtrees.
    pub fn snapshot_json(&self) -> serde_json::Value {
        let events: Vec<serde_json::Value> = self
            .events()
            .map(|e| serde_json::json!([e.t_ns, e.kind as u8, e.func, e.a, e.b]))
            .collect();
        let exemplars: Vec<serde_json::Value> = self
            .exemplars
            .borrow()
            .iter()
            .map(|x| {
                let spans: Vec<serde_json::Value> = x
                    .spans
                    .iter()
                    .map(|s| {
                        let attrs: Vec<serde_json::Value> = s
                            .attrs
                            .iter()
                            .map(|(k, v)| serde_json::json!([k, v]))
                            .collect();
                        serde_json::json!({
                            "id": s.id.0,
                            "parent": s.parent.0,
                            "layer": s.layer,
                            "name": s.name,
                            "start_ns": s.start.as_nanos(),
                            "end_ns": s.end.as_nanos(),
                            "attrs": attrs,
                        })
                    })
                    .collect();
                serde_json::json!({
                    "window": x.window,
                    "seq": x.seq,
                    "disk": x.disk,
                    "t_ns": x.t_ns,
                    "latency_ns": x.latency_ns,
                    "root": x.root,
                    "spans": spans,
                })
            })
            .collect();
        serde_json::json!({
            "capacity": self.capacity(),
            "total": self.total.get(),
            "dropped": self.dropped(),
            "events": events,
            "exemplars": exemplars,
        })
    }

    /// Stable FNV-1a hash over the serialized snapshot — the section hash
    /// the divergence self-check folds in.
    pub fn digest_hash(&self) -> u64 {
        let json = serde_json::to_string(&self.snapshot_json()).unwrap_or_default();
        fnv1a(json.as_bytes())
    }
}

/// A cheaply cloneable recorder handle shared by every layer, mirroring
/// [`Tracer`]: disabled (the default) it holds no allocation and every
/// operation is a no-op behind one branch; enabled, all clones record
/// into the same ring.
#[derive(Debug, Clone, Default)]
pub struct FlightHandle {
    inner: Option<Rc<FlightRecorder>>,
}

impl FlightHandle {
    /// A recording handle with a freshly preallocated ring.
    pub fn enabled(cfg: FlightConfig) -> Self {
        FlightHandle {
            inner: Some(Rc::new(FlightRecorder::new(cfg))),
        }
    }

    /// A no-op handle (the default).
    pub fn disabled() -> Self {
        FlightHandle::default()
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Appends one event (no-op when disabled).
    // nesc-lint: hot
    #[inline]
    pub fn append(&self, t: SimTime, kind: FlightEventKind, func: u32, a: u64, b: u64) {
        if let Some(rec) = &self.inner {
            rec.append(t, kind, func, a, b);
        }
    }

    /// Notes one completed request for exemplar selection (no-op when
    /// disabled).
    // nesc-lint: hot
    #[inline]
    pub fn note_request(&self, done: SimTime, seq: u64, disk: u32, latency_ns: u64, root: SpanId) {
        if let Some(rec) = &self.inner {
            rec.note_request(done, seq, disk, latency_ns, root);
        }
    }

    /// Folds the window ending at `end_ns` (no-op when disabled).
    pub fn close_window(&self, end_ns: u64, window: u64, tracer: &Tracer) {
        if let Some(rec) = &self.inner {
            rec.close_window(end_ns, window, tracer);
        }
    }

    /// Runs `f` against the recorder, if enabled.
    pub fn with<R>(&self, f: impl FnOnce(&FlightRecorder) -> R) -> Option<R> {
        self.inner.as_deref().map(f)
    }

    /// The serialized recorder state, if enabled.
    pub fn snapshot_json(&self) -> Option<serde_json::Value> {
        self.with(FlightRecorder::snapshot_json)
    }

    /// Stable hash of the recorder state (0 when disabled).
    pub fn digest_hash(&self) -> u64 {
        self.with(FlightRecorder::digest_hash).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_handle_is_noop() {
        let h = FlightHandle::disabled();
        assert!(!h.is_enabled());
        h.append(t(1), FlightEventKind::Doorbell, 0, 0, 0);
        h.note_request(t(2), 1, 0, 10, SpanId::NONE);
        h.close_window(100, 0, &Tracer::disabled());
        assert_eq!(h.snapshot_json(), None);
        assert_eq!(h.digest_hash(), 0);
    }

    #[test]
    fn ring_wraps_and_reports_drops() {
        let r = FlightRecorder::new(FlightConfig::default().capacity(4));
        for i in 0..6u64 {
            r.append(t(i), FlightEventKind::QueueEnter, 1, i, 0);
        }
        assert_eq!(r.total(), 6);
        assert_eq!(r.dropped(), 2);
        let got: Vec<u64> = r.events().map(|e| e.a).collect();
        assert_eq!(got, vec![2, 3, 4, 5], "oldest events are overwritten");
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let r = FlightRecorder::new(FlightConfig::default().capacity(0));
        r.append(t(1), FlightEventKind::Doorbell, 0, 0, 0);
        assert_eq!(r.total(), 0);
        assert_eq!(r.events().count(), 0);
    }

    #[test]
    fn worst_k_fold_selects_by_latency_then_seq() {
        let r = FlightRecorder::new(FlightConfig::default().exemplar_k(2));
        // Three completions in window 0; one more that belongs to window 1.
        r.note_request(t(10), 1, 0, 500, SpanId::NONE);
        r.note_request(t(20), 2, 0, 900, SpanId::NONE);
        r.note_request(t(30), 3, 0, 900, SpanId::NONE);
        r.note_request(t(150), 4, 0, 9999, SpanId::NONE);
        r.close_window(100, 0, &Tracer::disabled());
        let kept: Vec<u64> = r.exemplars().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![2, 3], "ties break toward the earlier request");
        // The late completion folds into the next window.
        r.close_window(200, 1, &Tracer::disabled());
        assert_eq!(r.exemplars().len(), 3);
        assert_eq!(r.exemplars()[2].seq, 4);
        assert_eq!(r.exemplars()[2].window, 1);
    }

    #[test]
    fn exemplar_windows_are_evicted_past_the_horizon() {
        let r = FlightRecorder::new(FlightConfig::default().exemplar_windows(2));
        for w in 0..5u64 {
            r.note_request(t(w * 100 + 10), w, 0, 100, SpanId::NONE);
            r.close_window((w + 1) * 100, w, &Tracer::disabled());
        }
        let windows: Vec<u64> = r.exemplars().iter().map(|e| e.window).collect();
        assert_eq!(windows, vec![3, 4], "only the retention horizon survives");
    }

    #[test]
    fn exemplars_capture_span_subtrees() {
        let tracer = Tracer::enabled();
        let root = tracer.start(SpanId::NONE, "guest", "request", t(0));
        let child = tracer.span(root, "core", "device", t(10), t(90));
        tracer.attr(child, "blocks", 4);
        tracer.end(root, t(100));
        // An unrelated root must not leak into the subtree.
        tracer.span(SpanId::NONE, "guest", "request", t(200), t(300));
        let r = FlightRecorder::new(FlightConfig::default());
        r.note_request(t(100), 7, 0, 100, root);
        r.close_window(1_000, 0, &tracer);
        let x = &r.exemplars()[0];
        assert_eq!(x.root, root.0);
        assert_eq!(x.spans.len(), 2);
        assert_eq!(x.spans[0].name, "request");
        assert_eq!(x.spans[1].attr("blocks"), Some(4));
        // Capture does not drain: the tracer still holds every span.
        assert_eq!(tracer.len(), 3);
    }

    #[test]
    fn snapshot_is_deterministic_and_integer_only_events() {
        let run = || {
            let r = FlightRecorder::new(FlightConfig::default().capacity(8));
            r.append(t(5), FlightEventKind::RequestStart, 1, 42, 0);
            r.append(t(9), FlightEventKind::Doorbell, 1, 42, 5);
            r.note_request(t(50), 42, 0, 45, SpanId::NONE);
            r.close_window(100, 0, &Tracer::disabled());
            serde_json::to_string(&r.snapshot_json()).unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "same inputs, byte-identical snapshot");
        // Every ring event serializes as a 5-wide integer row.
        let r = FlightRecorder::new(FlightConfig::default().capacity(8));
        r.append(t(5), FlightEventKind::RequestStart, 1, 42, 0);
        r.append(t(9), FlightEventKind::Doorbell, 1, 42, 5);
        let snapshot = r.snapshot_json();
        let Some(serde_json::Value::Array(events)) = snapshot.get("events") else {
            panic!("snapshot has no events array");
        };
        assert_eq!(events.len(), 2);
        for ev in events {
            let serde_json::Value::Array(row) = ev else {
                panic!("event row is not an array");
            };
            assert_eq!(row.len(), 5);
            assert!(row.iter().all(|x| matches!(
                x,
                serde_json::Value::Number(serde_json::Number::UInt(_) | serde_json::Number::Int(_))
            )));
        }
    }

    #[test]
    fn kind_roundtrips_through_u8() {
        for k in 0..=10u8 {
            let kind = FlightEventKind::from_u8(k).unwrap();
            assert_eq!(kind as u8, k);
            assert!(!kind.as_str().is_empty());
        }
        assert_eq!(FlightEventKind::from_u8(11), None);
    }
}
