//! Deterministic integer hashing for hot simulation maps.
//!
//! The data path hashes one `u64` key per block moved (sparse block-store
//! lookups, host-memory page lookups, BTLB function buckets). SipHash — the
//! standard-library default — is DoS-resistant but costs tens of
//! nanoseconds per key, which dominates once translation and timing are
//! batched per extent run. These maps hold simulation state keyed by small
//! trusted integers, so a fixed multiplicative mix is both safe and an
//! order-of-magnitude cheaper.
//!
//! Determinism is also a feature in its own right: the default hasher is
//! randomly seeded per process, while [`IntHashBuilder`] makes map behavior
//! identical across runs (nothing in the workspace iterates these maps in
//! an order-sensitive way, but determinism keeps it debuggable).

use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-style multiplicative hasher for integer keys.
///
/// Mixes every written word with the 64-bit golden-ratio constant and a
/// final xor-shift so low-bit-entropy keys (consecutive LBAs, page numbers)
/// spread across the table. Not collision-resistant against adversaries —
/// only use for trusted integer keys.
#[derive(Debug, Default, Clone)]
pub struct IntHasher(u64);

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for IntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche: without it, multiplication alone leaves the low
        // bits (which HashMap uses for bucket selection) under-mixed.
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback for non-integer keys (rare on these maps).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(GOLDEN);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(GOLDEN);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`IntHasher`]; plug into `HashMap` as the `S` type
/// parameter (`HashMap<u64, V, IntHashBuilder>`), constructing the map with
/// `HashMap::default()` or `HashMap::with_hasher`.
pub type IntHashBuilder = BuildHasherDefault<IntHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    #[test]
    fn consecutive_keys_spread() {
        let b = IntHashBuilder::default();
        // Consecutive LBAs must not collapse onto the same low bits.
        let low: Vec<u64> = (0u64..64).map(|k| b.hash_one(k) & 0x3F).collect();
        let distinct: std::collections::HashSet<_> = low.iter().collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct buckets",
            distinct.len()
        );
    }

    #[test]
    fn deterministic_across_builders() {
        let a = IntHashBuilder::default();
        let b = IntHashBuilder::default();
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash_one(k), b.hash_one(k));
        }
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: HashMap<u64, u32, IntHashBuilder> = HashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k as u32);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k as u32)));
        }
    }
}
