//! Timeline resources.
//!
//! Rather than simulating every cycle of a shared unit, the models in this
//! workspace use *timeline resources*: an object that remembers when it next
//! becomes free and answers, for work arriving at time `t`, the interval
//! `[start, end)` during which the work actually occupies the unit. This is
//! exact for FIFO-served resources and is how the reproduction models PCIe
//! links, DMA engines, storage media bandwidth, and CPU software layers.
//!
//! Two flavors are provided:
//!
//! * [`Pipe`] — bandwidth-limited: occupancy is `bytes / bandwidth` plus an
//!   optional fixed per-transfer overhead (e.g. TLP header time).
//! * [`ServiceUnit`] — duration-limited: caller supplies the service time
//!   directly (e.g. "the block-walk unit is busy for 800 ns").
//!
//! Both track cumulative busy time so harnesses can report utilization.

use crate::time::{SimDuration, SimTime};

/// Interval during which a resource serves one piece of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Service {
    /// When the resource started on this work (>= arrival time).
    pub start: SimTime,
    /// When the work completes and the resource frees up.
    pub end: SimTime,
}

impl Service {
    /// Queueing delay experienced before service began.
    pub fn wait_since(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }
}

/// A FIFO, bandwidth-limited resource (a link, a DMA engine, a disk's media
/// channel).
///
/// # Example
///
/// ```
/// use nesc_sim::{Pipe, SimTime, SimDuration};
///
/// // 1 GB/s link with 100 ns per-transfer overhead.
/// let mut link = Pipe::new(1_000_000_000, SimDuration::from_nanos(100));
/// let s1 = link.transfer(SimTime::ZERO, 4096);
/// assert_eq!(s1.start, SimTime::ZERO);
/// assert_eq!(s1.end.as_nanos(), 100 + 4096);
/// // A transfer arriving while the link is busy waits its turn.
/// let s2 = link.transfer(SimTime::from_nanos(50), 4096);
/// assert_eq!(s2.start, s1.end);
/// ```
#[derive(Debug, Clone)]
pub struct Pipe {
    bytes_per_sec: u64,
    per_transfer: SimDuration,
    free_at: SimTime,
    busy: SimDuration,
    transfers: u64,
    bytes: u64,
}

impl Pipe {
    /// Creates a pipe with the given bandwidth and fixed per-transfer
    /// overhead.
    ///
    /// A zero bandwidth (a contract violation) is treated as 1 B/s.
    pub fn new(bytes_per_sec: u64, per_transfer: SimDuration) -> Self {
        debug_assert!(bytes_per_sec > 0, "pipe bandwidth must be positive");
        Pipe {
            bytes_per_sec: bytes_per_sec.max(1),
            per_transfer,
            free_at: SimTime::ZERO,
            busy: SimDuration::ZERO,
            transfers: 0,
            bytes: 0,
        }
    }

    /// Bandwidth in bytes per second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Changes the bandwidth for subsequent transfers (used by the Fig. 2
    /// device-speed sweep).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn set_bandwidth(&mut self, bytes_per_sec: u64) {
        assert!(bytes_per_sec > 0, "pipe bandwidth must be positive");
        self.bytes_per_sec = bytes_per_sec;
    }

    /// Serves a transfer of `bytes` arriving at `now`; returns its service
    /// interval and advances the timeline.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> Service {
        let start = now.max(self.free_at);
        let dur = self.per_transfer + SimDuration::for_bytes(bytes, self.bytes_per_sec);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        self.transfers += 1;
        self.bytes += bytes;
        Service { start, end }
    }

    /// Serves a run of equal-size transfers in arrival order: `times[j]` is
    /// the `j`-th arrival time on entry and its completion time on return.
    ///
    /// Exactly equivalent to calling [`transfer`] once per element (the
    /// per-transfer duration is just computed once instead of per call),
    /// which is what makes it safe on the simulated-timing-critical path.
    ///
    /// [`transfer`]: Pipe::transfer
    pub fn transfer_run(&mut self, bytes_each: u64, times: &mut [SimTime]) {
        let dur = self.per_transfer + SimDuration::for_bytes(bytes_each, self.bytes_per_sec);
        let n = times.len() as u64;
        let mut free = self.free_at;
        for t in times.iter_mut() {
            let start = (*t).max(free);
            free = start + dur;
            *t = free;
        }
        self.free_at = free;
        self.busy += dur * n;
        self.transfers += n;
        self.bytes += bytes_each * n;
    }

    /// When the pipe next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time spent transferring since construction or [`reset`].
    ///
    /// [`reset`]: Pipe::reset
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Total transfers served.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Clears accumulated statistics (not the timeline).
    pub fn reset(&mut self) {
        self.busy = SimDuration::ZERO;
        self.transfers = 0;
        self.bytes = 0;
    }
}

/// A FIFO serial unit whose per-item service time is supplied by the caller
/// (a CPU software layer, the block-walk unit, an interrupt handler).
///
/// # Example
///
/// ```
/// use nesc_sim::{ServiceUnit, SimTime, SimDuration};
///
/// let mut cpu = ServiceUnit::new();
/// let a = cpu.serve(SimTime::ZERO, SimDuration::from_micros(3));
/// let b = cpu.serve(SimTime::from_nanos(500), SimDuration::from_micros(1));
/// assert_eq!(b.start, a.end); // second request queued behind the first
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServiceUnit {
    free_at: SimTime,
    busy: SimDuration,
    served: u64,
}

impl ServiceUnit {
    /// Creates an idle unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serves one item arriving at `now` taking `dur`; returns its service
    /// interval and advances the timeline.
    pub fn serve(&mut self, now: SimTime, dur: SimDuration) -> Service {
        let start = now.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        self.served += 1;
        Service { start, end }
    }

    /// Serves a run of equal-duration items in arrival order: `times[j]` is
    /// the `j`-th arrival time on entry and its completion time on return.
    /// Arrival times need not be monotonic — each item still starts at
    /// `max(arrival, free_at)` exactly as [`serve`] would.
    ///
    /// [`serve`]: ServiceUnit::serve
    pub fn serve_run(&mut self, dur: SimDuration, times: &mut [SimTime]) {
        let mut free = self.free_at;
        for t in times.iter_mut() {
            let start = (*t).max(free);
            free = start + dur;
            *t = free;
        }
        self.free_at = free;
        self.busy += dur * times.len() as u64;
        self.served += times.len() as u64;
    }

    /// When the unit next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Whether the unit is idle at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Total time spent serving.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of items served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of `[SimTime::ZERO, now]` spent busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / now.saturating_since(SimTime::ZERO).as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pipe_back_to_back() {
        let mut p = Pipe::new(1_000_000_000, SimDuration::ZERO); // 1 GB/s
        let a = p.transfer(SimTime::ZERO, 1000);
        assert_eq!(a.end.as_nanos(), 1000);
        let b = p.transfer(SimTime::ZERO, 1000);
        assert_eq!(b.start.as_nanos(), 1000);
        assert_eq!(b.end.as_nanos(), 2000);
        assert_eq!(p.bytes_moved(), 2000);
        assert_eq!(p.transfers(), 2);
    }

    #[test]
    fn pipe_idle_gap() {
        let mut p = Pipe::new(1_000_000_000, SimDuration::ZERO);
        p.transfer(SimTime::ZERO, 100);
        let late = p.transfer(SimTime::from_nanos(10_000), 100);
        assert_eq!(late.start.as_nanos(), 10_000);
        assert_eq!(p.busy_time().as_nanos(), 200);
    }

    #[test]
    fn pipe_overhead_applies_per_transfer() {
        let mut p = Pipe::new(1_000_000_000, SimDuration::from_nanos(500));
        let a = p.transfer(SimTime::ZERO, 0);
        assert_eq!(a.end.as_nanos(), 500);
        let b = p.transfer(SimTime::ZERO, 0);
        assert_eq!(b.end.as_nanos(), 1000);
    }

    #[test]
    fn pipe_set_bandwidth() {
        let mut p = Pipe::new(100, SimDuration::ZERO);
        p.set_bandwidth(1_000_000_000);
        let s = p.transfer(SimTime::ZERO, 1000);
        assert_eq!(s.end.as_nanos(), 1000);
        assert_eq!(p.bandwidth(), 1_000_000_000);
    }

    #[test]
    fn pipe_reset_clears_stats_not_timeline() {
        let mut p = Pipe::new(1_000_000_000, SimDuration::ZERO);
        let first = p.transfer(SimTime::ZERO, 1000);
        p.reset();
        assert_eq!(p.bytes_moved(), 0);
        assert_eq!(p.transfers(), 0);
        assert_eq!(p.busy_time(), SimDuration::ZERO);
        // The timeline is preserved: new work still queues behind old.
        let second = p.transfer(SimTime::ZERO, 1000);
        assert_eq!(second.start, first.end);
        assert_eq!(p.free_at(), second.end);
    }

    #[test]
    fn service_unit_serializes() {
        let mut u = ServiceUnit::new();
        let a = u.serve(SimTime::ZERO, SimDuration::from_nanos(100));
        let b = u.serve(SimTime::from_nanos(10), SimDuration::from_nanos(100));
        assert_eq!(a.end, b.start);
        assert_eq!(b.wait_since(SimTime::from_nanos(10)).as_nanos(), 90);
        assert_eq!(u.served(), 2);
        assert!(u.is_idle(SimTime::from_nanos(1000)));
    }

    #[test]
    fn utilization_bounds() {
        let mut u = ServiceUnit::new();
        u.serve(SimTime::ZERO, SimDuration::from_nanos(500));
        let util = u.utilization(SimTime::from_nanos(1000));
        assert!((util - 0.5).abs() < 1e-9);
        assert_eq!(ServiceUnit::new().utilization(SimTime::ZERO), 0.0);
    }

    proptest! {
        /// Service intervals never overlap and never start before arrival.
        #[test]
        fn prop_pipe_fifo_no_overlap(
            jobs in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..100)
        ) {
            let mut p = Pipe::new(500_000_000, SimDuration::from_nanos(50));
            let mut arrivals: Vec<u64> = jobs.iter().map(|&(t, _)| t).collect();
            arrivals.sort_unstable();
            let mut prev_end = SimTime::ZERO;
            for (&arr, &(_, bytes)) in arrivals.iter().zip(jobs.iter()) {
                let s = p.transfer(SimTime::from_nanos(arr), bytes);
                prop_assert!(s.start >= SimTime::from_nanos(arr));
                prop_assert!(s.start >= prev_end);
                prop_assert!(s.end > s.start);
                prev_end = s.end;
            }
        }

        /// `serve_run` is call-for-call identical to a `serve` loop, for any
        /// (even non-monotonic) arrival sequence and pre-existing timeline.
        #[test]
        fn prop_serve_run_matches_serve_loop(
            arrivals in proptest::collection::vec(0u64..100_000, 0..50),
            dur in 0u64..5_000,
            warmup in 0u64..10_000,
        ) {
            let mut a = ServiceUnit::new();
            let mut b = ServiceUnit::new();
            a.serve(SimTime::ZERO, SimDuration::from_nanos(warmup));
            b.serve(SimTime::ZERO, SimDuration::from_nanos(warmup));
            let mut times: Vec<SimTime> =
                arrivals.iter().map(|&t| SimTime::from_nanos(t)).collect();
            a.serve_run(SimDuration::from_nanos(dur), &mut times);
            for (&arr, &end) in arrivals.iter().zip(times.iter()) {
                let svc = b.serve(SimTime::from_nanos(arr), SimDuration::from_nanos(dur));
                prop_assert_eq!(svc.end, end);
            }
            prop_assert_eq!(a.free_at(), b.free_at());
            prop_assert_eq!(a.busy_time(), b.busy_time());
            prop_assert_eq!(a.served(), b.served());
        }

        /// `transfer_run` is call-for-call identical to a `transfer` loop.
        #[test]
        fn prop_transfer_run_matches_transfer_loop(
            arrivals in proptest::collection::vec(0u64..100_000, 0..50),
            bytes in 1u64..100_000,
        ) {
            let mut a = Pipe::new(500_000_000, SimDuration::from_nanos(50));
            let mut b = a.clone();
            let mut times: Vec<SimTime> =
                arrivals.iter().map(|&t| SimTime::from_nanos(t)).collect();
            a.transfer_run(bytes, &mut times);
            for (&arr, &end) in arrivals.iter().zip(times.iter()) {
                let svc = b.transfer(SimTime::from_nanos(arr), bytes);
                prop_assert_eq!(svc.end, end);
            }
            prop_assert_eq!(a.free_at(), b.free_at());
            prop_assert_eq!(a.busy_time(), b.busy_time());
            prop_assert_eq!(a.transfers(), b.transfers());
            prop_assert_eq!(a.bytes_moved(), b.bytes_moved());
        }

        /// Busy time equals the sum of individual service durations.
        #[test]
        fn prop_busy_time_additive(durs in proptest::collection::vec(1u64..10_000, 1..100)) {
            let mut u = ServiceUnit::new();
            let mut total = 0u64;
            for &d in &durs {
                u.serve(SimTime::ZERO, SimDuration::from_nanos(d));
                total += d;
            }
            prop_assert_eq!(u.busy_time().as_nanos(), total);
        }
    }
}
