//! Measurement primitives for the benchmark harnesses.
//!
//! * [`Histogram`] — log-linear latency histogram (HdrHistogram-style) with
//!   bounded relative error, used for latency percentiles in Figs. 9 and 11.
//! * [`Summary`] — streaming min/mean/max over exact values.
//! * [`Throughput`] — bytes-and-ops counter over a measured interval,
//!   reporting MB/s and IOPS for Figs. 2 and 10.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Log-linear histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are organized as 2^7 = 128 linear sub-buckets per power-of-two
/// range, giving a worst-case relative error under 1%, plenty for latency
/// reporting.
///
/// # Example
///
/// ```
/// use nesc_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in [100, 200, 300, 400, 500] { h.record(v); }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) >= 300 - 4); // within bucket resolution
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BUCKET_BITS: u32 = 7;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

fn bucket_index(value: u64) -> usize {
    // Values below SUB_BUCKETS map 1:1; above, each power-of-two range is
    // split into SUB_BUCKETS/2 additional linear buckets.
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as u64; // floor(log2(value))
        let shift = exp - (SUB_BUCKET_BITS as u64 - 1);
        let sub = (value >> shift) - SUB_BUCKETS / 2;
        ((shift + 1) * (SUB_BUCKETS / 2) + sub) as usize
    }
}

fn bucket_high(index: usize) -> u64 {
    // Upper bound (inclusive representative) of a bucket.
    let idx = index as u64;
    if idx < SUB_BUCKETS {
        idx
    } else {
        let shift = idx / (SUB_BUCKETS / 2) - 1;
        let sub = idx % (SUB_BUCKETS / 2) + SUB_BUCKETS / 2;
        ((sub + 1) << shift) - 1
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a duration sample in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Empties the histogram in place, retaining bucket storage — the
    /// windowed-telemetry reset path, equivalent to `*self =
    /// Histogram::new()` without the allocator round trip. Only the dirty
    /// bucket range is re-zeroed: every recorded sample lies in
    /// `min..=max`, and the bucket mapping is monotone, so buckets outside
    /// `bucket_index(min)..=bucket_index(max)` are already zero.
    pub fn reset(&mut self) {
        if self.total > 0 {
            let lo = bucket_index(self.min);
            let hi = bucket_index(self.max);
            self.counts[lo..=hi].fill(0);
        }
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact arithmetic mean of recorded samples, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at the given percentile (0–100), within bucket resolution.
    ///
    /// Returns 0 for an empty histogram. A percentile outside `[0, 100]`
    /// (a contract violation) is clamped.
    pub fn percentile(&self, p: f64) -> u64 {
        debug_assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let p = p.clamp(0.0, 100.0);
        if self.total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        // Buckets before min's are zero (monotone mapping); start there.
        let start = bucket_index(self.min);
        let mut seen = 0;
        for (j, &c) in self.counts[start..].iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(start + j).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (p50) sample.
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Two percentiles in one bucket scan — exactly
    /// `(self.percentile(p_lo), self.percentile(p_hi))`, at half the
    /// traversal cost. The windowed telemetry close path reads p50/p99
    /// for every disk every window, where the second scan is measurable.
    /// Out-of-range or out-of-order percentiles (contract violations) are
    /// clamped and reordered.
    pub fn percentile_pair(&self, p_lo: f64, p_hi: f64) -> (u64, u64) {
        debug_assert!(
            (0.0..=100.0).contains(&p_lo) && (0.0..=100.0).contains(&p_hi),
            "percentile out of range: {p_lo} {p_hi}"
        );
        debug_assert!(
            p_lo <= p_hi,
            "percentile pair out of order: {p_lo} > {p_hi}"
        );
        let (p_lo, p_hi) = (
            p_lo.clamp(0.0, 100.0).min(p_hi.clamp(0.0, 100.0)),
            p_hi.clamp(0.0, 100.0),
        );
        if self.total == 0 {
            return (0, 0);
        }
        let target = |p: f64| ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let (t_lo, t_hi) = (target(p_lo), target(p_hi));
        // Buckets before min's are zero (monotone mapping); start there.
        let start = bucket_index(self.min);
        let mut seen = 0;
        let mut lo = None;
        for (j, &c) in self.counts[start..].iter().enumerate() {
            seen += c;
            if lo.is_none() && seen >= t_lo {
                lo = Some(bucket_high(start + j).min(self.max).max(self.min));
            }
            if seen >= t_hi {
                let hi = bucket_high(start + j).min(self.max).max(self.min);
                return (lo.unwrap_or(hi), hi);
            }
        }
        (lo.unwrap_or(self.max), self.max)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p99={} max={} mean={:.1}",
            self.total,
            self.min(),
            self.percentile(50.0),
            self.percentile(99.0),
            self.max,
            self.mean()
        )
    }
}

/// Streaming min/mean/max summary over exact `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Bytes-and-operations throughput over a measured window.
///
/// # Example
///
/// ```
/// use nesc_sim::{Throughput, SimTime, SimDuration};
/// let mut t = Throughput::starting_at(SimTime::ZERO);
/// t.record_op(4096);
/// t.record_op(4096);
/// t.finish(SimTime::ZERO + SimDuration::from_micros(8));
/// assert!((t.megabytes_per_sec() - 1024.0).abs() < 1.0); // 8 KiB / 8 us
/// assert_eq!(t.ops(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Throughput {
    start: SimTime,
    end: Option<SimTime>,
    bytes: u64,
    ops: u64,
}

impl Throughput {
    /// Begins a measurement window at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        Throughput {
            start,
            end: None,
            bytes: 0,
            ops: 0,
        }
    }

    /// Records one completed operation of `bytes`.
    pub fn record_op(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
    }

    /// Closes the window at `end`.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the window start.
    pub fn finish(&mut self, end: SimTime) {
        assert!(end >= self.start, "throughput window ends before it starts");
        self.end = Some(end);
    }

    /// Window length; zero until [`finish`] is called.
    ///
    /// [`finish`]: Throughput::finish
    pub fn elapsed(&self) -> SimDuration {
        match self.end {
            Some(e) => e - self.start,
            None => SimDuration::ZERO,
        }
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Throughput in decimal megabytes per second (matches the paper's MB/s
    /// axes). Returns 0 if the window is empty or unfinished.
    pub fn megabytes_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }

    /// Operations per second. Returns 0 if the window is empty or unfinished.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
        assert_eq!(h.percentile(100.0), 99);
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn histogram_display_nonempty() {
        let mut h = Histogram::new();
        h.record(5);
        assert!(!h.to_string().is_empty());
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for v in [3.0, 1.0, 2.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_reports_mb_per_sec() {
        let mut t = Throughput::starting_at(SimTime::from_nanos(1000));
        t.record_op(1_000_000);
        t.finish(SimTime::from_nanos(1000) + SimDuration::from_millis(1));
        assert!((t.megabytes_per_sec() - 1000.0).abs() < 1e-6);
        assert!((t.ops_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_unfinished_is_zero() {
        let mut t = Throughput::starting_at(SimTime::ZERO);
        t.record_op(100);
        assert_eq!(t.megabytes_per_sec(), 0.0);
    }

    #[test]
    fn histogram_reset_equals_fresh() {
        let mut h = Histogram::new();
        for v in [5u64, 70_000, 1_000_000] {
            h.record(v);
        }
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        // Recording after reset behaves exactly like a fresh histogram.
        let mut fresh = Histogram::new();
        for v in [300u64, 40_000, 90_000] {
            h.record(v);
            fresh.record(v);
        }
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), fresh.percentile(p));
        }
        assert_eq!(h.min(), fresh.min());
        assert_eq!(h.max(), fresh.max());
    }

    #[test]
    fn percentile_pair_empty_is_zero() {
        assert_eq!(Histogram::new().percentile_pair(50.0, 99.0), (0, 0));
    }

    proptest! {
        /// `percentile_pair` is exactly two `percentile` calls, and reset
        /// + re-record matches a fresh histogram, across arbitrary sample
        /// sets — the equivalences the telemetry close path relies on.
        #[test]
        fn prop_percentile_pair_and_reset_equivalences(
            first in proptest::collection::vec(1u64..u64::MAX / 2, 1..200),
            second in proptest::collection::vec(1u64..u64::MAX / 2, 1..200),
            lo in 0u8..=100,
            hi in 0u8..=100,
        ) {
            let (lo, hi) = (lo.min(hi) as f64, lo.max(hi) as f64);
            let mut h = Histogram::new();
            for &v in &first {
                h.record(v);
            }
            prop_assert_eq!(
                h.percentile_pair(lo, hi),
                (h.percentile(lo), h.percentile(hi))
            );
            h.reset();
            let mut fresh = Histogram::new();
            for &v in &second {
                h.record(v);
                fresh.record(v);
            }
            prop_assert_eq!(h.percentile_pair(lo, hi), fresh.percentile_pair(lo, hi));
            prop_assert_eq!(h.count(), fresh.count());
            prop_assert_eq!(h.min(), fresh.min());
            prop_assert_eq!(h.max(), fresh.max());
        }
    }

    proptest! {
        /// Percentile error is bounded by the log-linear bucket width (<1%).
        #[test]
        fn prop_histogram_relative_error(values in proptest::collection::vec(1u64..u64::MAX / 2, 1..500)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact_max = *sorted.last().unwrap();
            let est = h.percentile(100.0);
            let err = (est as f64 - exact_max as f64).abs() / exact_max as f64;
            prop_assert!(err < 0.01, "err {} est {} exact {}", err, est, exact_max);
        }

        /// Bucket mapping is monotone: larger values never map to earlier
        /// buckets, and the bucket's upper bound is >= the value's lower
        /// neighbours.
        #[test]
        fn prop_bucket_monotone(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
            prop_assert!(bucket_high(bucket_index(hi)) >= hi);
        }
    }
}
