//! Runtime divergence self-check.
//!
//! The static linter (`nesc-lint`) rules out the known *sources* of
//! nondeterminism; this module is the runtime backstop that catches any
//! that slip through: run the same workload twice from the same seed,
//! digest each run's observable event stream, and report the **first
//! diverging event** instead of a useless "hashes differ".
//!
//! A [`RunDigest`] accumulates three things:
//!
//! * an ordered list of [`EventRecord`]s — one per observable step
//!   (request completion, span emission, ...), each carrying its
//!   simulated time, a label and a payload hash;
//! * rolling checkpoint hashes every `checkpoint_every` records, so two
//!   digests can be compared checkpoint-first and the mismatch localized
//!   to a window before walking records;
//! * named section hashes for whole-run aggregates (span tree shape,
//!   metrics registry).
//!
//! [`first_divergence`] diffs two digests; [`self_check`] packages the
//! run-twice-and-compare loop. Everything here is pure data plumbing —
//! deterministic by construction, no clocks, no ambient randomness.
//!
//! # Example
//!
//! ```
//! use nesc_sim::selfcheck::{self, RunDigest};
//! use nesc_sim::SimTime;
//!
//! let run = |seed: u64| {
//!     let mut d = RunDigest::new(4);
//!     for i in 0..10 {
//!         d.record(SimTime::from_nanos(i * 100), "op", seed.wrapping_add(i));
//!     }
//!     d
//! };
//! // Same seed twice: identical digests.
//! assert!(selfcheck::self_check(7, run).is_ok());
//! // Different seeds: the first diverging event is pinpointed.
//! let d = selfcheck::first_divergence(&run(1), &run(2)).unwrap();
//! assert!(d.to_string().contains("first diverging event"));
//! ```

use std::fmt;

use crate::metrics::Metrics;
use crate::time::SimTime;
use crate::trace::Span;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice — the workhorse hash for digest payloads.
/// Stable across platforms and runs (unlike the std default hasher).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a word into an FNV-1a state.
pub fn fnv1a_word(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One observable step of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Position in the run's event order (0-based).
    pub seq: u64,
    /// Simulated time of the event, in nanoseconds.
    pub time_ns: u64,
    /// What the event was (e.g. `"vf1:Read"`, `"span:pcie:dma"`).
    pub label: String,
    /// Hash of the event's payload (data moved, latency, attributes).
    pub payload: u64,
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} `{}` at {}ns (payload {:#018x})",
            self.seq, self.label, self.time_ns, self.payload
        )
    }
}

/// The digest of one run: event records, checkpoint hashes, section
/// hashes.
#[derive(Debug, Clone)]
pub struct RunDigest {
    checkpoint_every: usize,
    records: Vec<EventRecord>,
    /// Rolling hash after records `0..=(k+1)*checkpoint_every-1`.
    checkpoints: Vec<u64>,
    rolling: u64,
    sections: Vec<(String, u64)>,
}

impl RunDigest {
    /// A fresh digest taking a checkpoint every `checkpoint_every`
    /// records.
    ///
    /// A zero cadence (a contract violation) checkpoints every record.
    pub fn new(checkpoint_every: usize) -> Self {
        debug_assert!(checkpoint_every > 0, "checkpoint cadence must be positive");
        RunDigest {
            checkpoint_every: checkpoint_every.max(1),
            records: Vec::new(),
            checkpoints: Vec::new(),
            rolling: FNV_OFFSET,
            sections: Vec::new(),
        }
    }

    /// Appends one event record.
    pub fn record(&mut self, at: SimTime, label: impl Into<String>, payload: u64) {
        let label = label.into();
        let seq = self.records.len() as u64;
        self.rolling = fnv1a_word(self.rolling, at.as_nanos());
        self.rolling = fnv1a_word(self.rolling, fnv1a(label.as_bytes()));
        self.rolling = fnv1a_word(self.rolling, payload);
        self.records.push(EventRecord {
            seq,
            time_ns: at.as_nanos(),
            label,
            payload,
        });
        if self.records.len().is_multiple_of(self.checkpoint_every) {
            self.checkpoints.push(self.rolling);
        }
    }

    /// Appends one record per span, in creation (id) order — the
    /// simulator's event sequence as observed by the tracer.
    pub fn record_spans(&mut self, spans: &[Span]) {
        for s in spans {
            let mut payload = fnv1a_word(FNV_OFFSET, s.id.0);
            payload = fnv1a_word(payload, s.parent.0);
            payload = fnv1a_word(payload, s.end.as_nanos());
            for (k, v) in &s.attrs {
                payload = fnv1a_word(payload, fnv1a(k.as_bytes()));
                payload = fnv1a_word(payload, *v);
            }
            let label = format!("span:{}:{}", s.layer, s.name);
            self.record(s.start, label, payload);
        }
    }

    /// Adds a named whole-run section hash.
    pub fn section(&mut self, name: &str, hash: u64) {
        self.sections.push((name.to_string(), hash));
    }

    /// Hashes the span forest's *shape* (parent links and intervals) into
    /// a `span_tree` section — a cheap structural fingerprint on top of
    /// the per-span records.
    pub fn span_tree_section(&mut self, spans: &[Span]) {
        let mut h = FNV_OFFSET;
        for s in spans {
            h = fnv1a_word(h, s.id.0);
            h = fnv1a_word(h, s.parent.0);
            h = fnv1a_word(h, s.start.as_nanos());
            h = fnv1a_word(h, s.end.as_nanos());
        }
        self.section("span_tree", h);
    }

    /// Hashes the full metrics registry (counters and histograms, in the
    /// registry's deterministic BTreeMap order) into a `metrics` section.
    pub fn metrics_section(&mut self, metrics: &Metrics) {
        let json = serde_json::to_string(&metrics.to_json()).expect("metrics serialize to JSON");
        self.section("metrics", fnv1a(json.as_bytes()));
    }

    /// Number of event records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The checkpoint hashes taken so far.
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }

    /// A single hash over everything: records, cadence and sections.
    pub fn final_hash(&self) -> u64 {
        let mut h = fnv1a_word(self.rolling, self.records.len() as u64);
        for (name, v) in &self.sections {
            h = fnv1a_word(h, fnv1a(name.as_bytes()));
            h = fnv1a_word(h, *v);
        }
        h
    }
}

/// Why two digests differ — always pinned to the *first* difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// The runs used different checkpoint cadences (not comparable).
    Cadence {
        /// Run A's cadence.
        a: usize,
        /// Run B's cadence.
        b: usize,
    },
    /// Records differ; both runs have a record at this index.
    Event {
        /// Index of the first differing record.
        index: usize,
        /// Checkpoint window containing it (0-based), for "it was fine
        /// through checkpoint k" reports.
        window: usize,
        /// Run A's record.
        a: EventRecord,
        /// Run B's record.
        b: EventRecord,
    },
    /// One run stopped early; the other's next record is reported.
    Length {
        /// Events in run A.
        a_len: usize,
        /// Events in run B.
        b_len: usize,
        /// The first unmatched record from the longer run.
        next: EventRecord,
    },
    /// Event streams agree, but a whole-run section hash differs.
    Section {
        /// Section name (`"span_tree"`, `"metrics"`, ...).
        name: String,
        /// Run A's hash.
        a: u64,
        /// Run B's hash.
        b: u64,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Cadence { a, b } => {
                write!(f, "incomparable digests: checkpoint cadence {a} vs {b}")
            }
            Divergence::Event {
                index,
                window,
                a,
                b,
            } => write!(
                f,
                "first diverging event at index {index} (checkpoint window {window}): \
                 run A {a}, run B {b}"
            ),
            Divergence::Length { a_len, b_len, next } => write!(
                f,
                "event streams diverge in length: run A has {a_len}, run B has {b_len}; \
                 first unmatched event: {next}"
            ),
            Divergence::Section { name, a, b } => write!(
                f,
                "event streams agree but section `{name}` differs: \
                 {a:#018x} vs {b:#018x}"
            ),
        }
    }
}

/// Compares two digests; `None` means identical. The comparison first
/// narrows via checkpoint hashes (cheap), then walks records inside the
/// first bad window to name the exact event, then checks sections.
pub fn first_divergence(a: &RunDigest, b: &RunDigest) -> Option<Divergence> {
    if a.checkpoint_every != b.checkpoint_every {
        return Some(Divergence::Cadence {
            a: a.checkpoint_every,
            b: b.checkpoint_every,
        });
    }
    if a.final_hash() == b.final_hash() && a.records == b.records && a.sections == b.sections {
        return None;
    }
    // Narrow to the first differing checkpoint window.
    let first_bad_window = a
        .checkpoints
        .iter()
        .zip(&b.checkpoints)
        .position(|(x, y)| x != y);
    let scan_from = match first_bad_window {
        Some(w) => w * a.checkpoint_every,
        // All shared checkpoints agree: differences sit in the tail (or
        // lengths/sections differ).
        None => a.checkpoints.len().min(b.checkpoints.len()) * a.checkpoint_every,
    };
    for i in scan_from..a.records.len().min(b.records.len()) {
        if a.records[i] != b.records[i] {
            return Some(Divergence::Event {
                index: i,
                window: i / a.checkpoint_every,
                a: a.records[i].clone(),
                b: b.records[i].clone(),
            });
        }
    }
    if a.records.len() != b.records.len() {
        let longer = if a.records.len() > b.records.len() {
            &a.records
        } else {
            &b.records
        };
        return Some(Divergence::Length {
            a_len: a.records.len(),
            b_len: b.records.len(),
            next: longer[a.records.len().min(b.records.len())].clone(),
        });
    }
    for (name, va) in &a.sections {
        if let Some((_, vb)) = b.sections.iter().find(|(n, _)| n == name) {
            if va != vb {
                return Some(Divergence::Section {
                    name: name.clone(),
                    a: *va,
                    b: *vb,
                });
            }
        }
    }
    // Section *sets* differ (name present in one run only).
    if a.sections != b.sections {
        let name = a
            .sections
            .iter()
            .map(|(n, _)| n)
            .chain(b.sections.iter().map(|(n, _)| n))
            .find(|n| {
                a.sections.iter().filter(|(m, _)| &m == n).count()
                    != b.sections.iter().filter(|(m, _)| &m == n).count()
            })
            .cloned()
            .unwrap_or_default();
        return Some(Divergence::Section { name, a: 0, b: 0 });
    }
    None
}

/// Runs `run` twice with the same `seed` and compares the digests.
/// Returns the common final hash, or the first divergence — which, for a
/// deterministic simulator, means a D1/D2/D3-class bug escaped the
/// static linter.
///
/// # Errors
///
/// The boxed [`Divergence`] pinpointing the first differing event.
pub fn self_check<F>(seed: u64, mut run: F) -> Result<u64, Box<Divergence>>
where
    F: FnMut(u64) -> RunDigest,
{
    let a = run(seed);
    let b = run(seed);
    match first_divergence(&a, &b) {
        None => Ok(a.final_hash()),
        Some(d) => Err(Box::new(d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn identical_runs_match() {
        let mk = || {
            let mut d = RunDigest::new(3);
            for i in 0..10 {
                d.record(t(i * 5), format!("ev{i}"), i * 7);
            }
            d.section("metrics", 42);
            d
        };
        assert_eq!(first_divergence(&mk(), &mk()), None);
        assert_eq!(mk().final_hash(), mk().final_hash());
        assert_eq!(mk().checkpoints().len(), 3);
    }

    #[test]
    fn event_divergence_names_first_index() {
        let mk = |flip: u64| {
            let mut d = RunDigest::new(4);
            for i in 0..12 {
                let payload = if i == 9 { flip } else { i };
                d.record(t(i * 5), "ev", payload);
            }
            d
        };
        match first_divergence(&mk(0), &mk(1)) {
            Some(Divergence::Event { index, window, .. }) => {
                assert_eq!(index, 9);
                assert_eq!(window, 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn length_divergence_reports_next_event() {
        let mk = |n: u64| {
            let mut d = RunDigest::new(4);
            for i in 0..n {
                d.record(t(i), "ev", i);
            }
            d
        };
        match first_divergence(&mk(6), &mk(8)) {
            Some(Divergence::Length { a_len, b_len, next }) => {
                assert_eq!((a_len, b_len), (6, 8));
                assert_eq!(next.seq, 6);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn section_divergence_detected_when_events_agree() {
        let mk = |m: u64| {
            let mut d = RunDigest::new(4);
            d.record(t(1), "ev", 1);
            d.section("metrics", m);
            d
        };
        match first_divergence(&mk(1), &mk(2)) {
            Some(Divergence::Section { name, a, b }) => {
                assert_eq!(name, "metrics");
                assert_ne!(a, b);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn self_check_round_trip() {
        let run = |seed: u64| {
            let mut d = RunDigest::new(2);
            for i in 0..6 {
                d.record(t(i), "op", seed ^ i);
            }
            d
        };
        assert!(self_check(3, run).is_ok());
        assert!(first_divergence(&run(3), &run(4)).is_some());
    }

    #[test]
    fn span_records_and_tree_section() {
        use crate::trace::{SpanId, Tracer};
        let tr = Tracer::enabled();
        let root = tr.start(SpanId::NONE, "guest", "request", t(0));
        let child = tr.start(root, "pcie", "dma", t(10));
        tr.end(child, t(40));
        tr.end(root, t(100));
        let spans = tr.take_spans();
        let mut d = RunDigest::new(8);
        d.record_spans(&spans);
        d.span_tree_section(&spans);
        assert_eq!(d.len(), 2);
        assert_eq!(d.records[0].label, "span:guest:request");
    }

    #[test]
    fn cadence_mismatch_is_flagged() {
        let a = RunDigest::new(2);
        let b = RunDigest::new(3);
        assert!(matches!(
            first_divergence(&a, &b),
            Some(Divergence::Cadence { a: 2, b: 3 })
        ));
    }
}
