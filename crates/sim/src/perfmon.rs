//! Deterministic time-series performance monitoring.
//!
//! The paper's evaluation — and PR 2's spans + metrics — report *aggregate*
//! end-of-run numbers. This module adds the time dimension: a [`Sampler`]
//! closes fixed-width windows of simulated time and records one sample per
//! registered series per window, so a harness can say *when* the BTLB went
//! cold or *which* window a VF starved in, not just what the run mean was.
//!
//! Determinism is structural, not aspirational:
//!
//! * windows are driven entirely by the simulated clock — the sampler owns
//!   an [`EventQueue`] of tick events and closes a window only when its
//!   owner observes simulated time passing the window end ([`Sampler::due`]);
//!   no wall clock is ever read (nesc-lint D1);
//! * every stored sample is a `u64` (nanoseconds, bytes, operations, or
//!   parts-per-million for utilizations), so exports are byte-stable and no
//!   float ever feeds back into scheduling (nesc-lint D4);
//! * series are registered before the first window closes and sampled once
//!   per closed window, in registration order, so two same-seed runs
//!   produce identical rings.
//!
//! On top of the series sit the [`SloWatchdog`] — declarative threshold
//! rules ("p99 above X for 3 consecutive windows", optionally guarded by a
//! second condition) that emit deterministic [`AnomalyEvent`]s and
//! `telemetry`-layer spans — and the exporters: [`series_json`] /
//! [`series_csv`] for `results/`, and [`merge_counter_tracks`] which
//! appends Perfetto `ph:"C"` counter tracks to an existing Chrome-trace
//! document so the time series render alongside the span swimlanes.
//!
//! # Example
//!
//! ```
//! use nesc_sim::perfmon::{Sampler, SeriesKind};
//! use nesc_sim::{SimDuration, SimTime};
//!
//! let mut s = Sampler::new(SimDuration::from_micros(10), 64);
//! let ops = s.register("ops", "count", SeriesKind::Counter);
//! let depth = s.register("depth", "entries", SeriesKind::Gauge);
//!
//! // The owner drives the sampler from simulated time: when `due`
//! // returns a window end, snapshot every probe.
//! let mut total_ops = 0u64;
//! for t in [4_000u64, 12_000, 26_000] {
//!     total_ops += 10;
//!     while let Some(_end) = s.due(SimTime::from_nanos(t)) {
//!         s.sample(ops, total_ops);
//!         s.sample(depth, 3);
//!     }
//! }
//! let ring = s.series_by_name("ops").unwrap();
//! // Window 0 closed once time passed 10us; the snapshot taken then had
//! // seen 20 cumulative ops. Window 1 closed at 20us with 10 more.
//! assert_eq!(ring.samples().collect::<Vec<_>>(), vec![(0, 20), (1, 10)]);
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::queue::EventQueue;
use crate::selfcheck::fnv1a;
use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanId, Tracer};

/// Handle to one registered series (index into the sampler's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// How raw probe values become stored samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// The raw value is stored as-is (queue depth, p99 of a window).
    Gauge,
    /// The raw value is a monotonic cumulative counter; the stored sample
    /// is the delta since the previous window's raw value.
    Counter,
}

impl SeriesKind {
    /// Stable lowercase name used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Gauge => "gauge",
            SeriesKind::Counter => "counter",
        }
    }
}

/// One ring-buffered series of per-window samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    unit: &'static str,
    kind: SeriesKind,
    capacity: usize,
    samples: VecDeque<u64>,
    /// Samples ever committed (ring evictions included).
    total: u64,
    /// Raw value at the previous sample (counter-delta state).
    last_raw: u64,
}

impl TimeSeries {
    /// Series name (e.g. `"core.btlb_hits"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit label (e.g. `"ops"`, `"ns"`, `"ppm"`).
    pub fn unit(&self) -> &'static str {
        self.unit
    }

    /// Gauge or counter-delta.
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// Number of samples currently held (≤ ring capacity).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no window has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Window index of the oldest retained sample.
    pub fn first_window(&self) -> u64 {
        self.total - self.samples.len() as u64
    }

    /// Iterates `(window_index, value)` pairs, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let first = self.first_window();
        self.samples
            .iter()
            .enumerate()
            .map(move |(i, &v)| (first + i as u64, v))
    }

    /// The sample for `window`, if still retained.
    pub fn value_at(&self, window: u64) -> Option<u64> {
        if window < self.first_window() {
            return None;
        }
        self.samples
            .get((window - self.first_window()) as usize)
            .copied()
    }

    /// The most recent `(window_index, value)` pair.
    pub fn latest(&self) -> Option<(u64, u64)> {
        self.samples.back().map(|&v| (self.total - 1, v))
    }
}

/// The sampler's tick event: closing of one window.
#[derive(Debug, Clone, Copy)]
struct Tick {
    window: u64,
}

/// A deterministic windowed sampler.
///
/// The sampler never reads a clock: its owner calls [`due`](Self::due) with
/// the current *simulated* time, and the sampler pops tick events off its
/// internal [`EventQueue`] — one per elapsed window — handing back each
/// window end so the owner can snapshot its probes via
/// [`sample`](Self::sample). Window `k` covers simulated time
/// `[k·interval, (k+1)·interval)`; an observation at exactly `k·interval`
/// therefore belongs to window `k` (the close for window `k-1` fires
/// first).
#[derive(Debug)]
pub struct Sampler {
    interval: SimDuration,
    capacity: usize,
    series: Vec<TimeSeries>,
    ticks: EventQueue<Tick>,
    /// Windows closed so far; window `closed - 1` is the one being (or
    /// last) sampled.
    closed: u64,
}

impl Sampler {
    /// Creates a sampler closing a window every `interval`, retaining the
    /// most recent `capacity` samples per series.
    ///
    /// A zero interval (a contract violation: windows must advance
    /// simulated time) is widened to one nanosecond, and a zero capacity
    /// retains one sample.
    pub fn new(interval: SimDuration, capacity: usize) -> Self {
        debug_assert!(!interval.is_zero(), "sampling interval must be positive");
        debug_assert!(capacity > 0, "ring capacity must be positive");
        let interval = interval.max(SimDuration::from_nanos(1));
        let capacity = capacity.max(1);
        let mut ticks = EventQueue::new();
        ticks.push(SimTime::ZERO + interval, Tick { window: 0 });
        Sampler {
            interval,
            capacity,
            series: Vec::new(),
            ticks,
            closed: 0,
        }
    }

    /// The window width.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Ring capacity per series.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Windows closed so far.
    pub fn closed_windows(&self) -> u64 {
        self.closed
    }

    /// Start of window `w`.
    pub fn window_start(&self, w: u64) -> SimTime {
        SimTime::ZERO + self.interval * w
    }

    /// End of window `w` (exclusive; the instant its close tick fires).
    pub fn window_end(&self, w: u64) -> SimTime {
        SimTime::ZERO + self.interval * (w + 1)
    }

    /// Registers a series. A series registered after windows have already
    /// closed simply starts at the current window (earlier windows have no
    /// sample for it); from then on it must be sampled exactly once per
    /// close, like every other series. A counter's first sample is its raw
    /// cumulative value.
    pub fn register(&mut self, name: &str, unit: &'static str, kind: SeriesKind) -> SeriesId {
        debug_assert!(
            self.series.iter().all(|s| s.name != name),
            "duplicate series {name}"
        );
        self.series.push(TimeSeries {
            name: name.to_string(),
            unit,
            kind,
            capacity: self.capacity,
            samples: VecDeque::new(),
            total: self.closed,
            last_raw: 0,
        });
        SeriesId(self.series.len() - 1)
    }

    /// Pops the next due window close: if simulated time `now` has reached
    /// (or passed) the end of the oldest unclosed window, that window is
    /// closed and its end time returned; the owner must then
    /// [`sample`](Self::sample) every registered series before calling
    /// `due` again. Returns `None` when no window end has been reached.
    ///
    /// Callers drive this in a loop (`while let Some(end) = sampler.due(now)`)
    /// so that an idle stretch spanning several windows closes each of them
    /// in order: counter series record their delta in the first catch-up
    /// window and zeros after; gauges repeat the snapshotted value.
    pub fn due(&mut self, now: SimTime) -> Option<SimTime> {
        let (t, tick) = self.ticks.pop_due(now)?;
        self.ticks.push(
            t + self.interval,
            Tick {
                window: tick.window + 1,
            },
        );
        debug_assert_eq!(tick.window, self.closed, "windows close in order");
        self.closed = tick.window + 1;
        Some(t)
    }

    /// Commits the raw probe value for the window just closed by
    /// [`due`](Self::due). Gauges store `raw`; counters store the delta
    /// since the previous window's raw value.
    ///
    /// A sample outside a window close (a contract violation) is dropped;
    /// debug builds assert that each series receives exactly one sample
    /// per closed window.
    pub fn sample(&mut self, id: SeriesId, raw: u64) {
        debug_assert!(self.closed > 0, "sample() outside a window close");
        if self.closed == 0 {
            return;
        }
        let s = &mut self.series[id.0];
        debug_assert_eq!(
            s.total + 1,
            self.closed,
            "series {} must be sampled exactly once per closed window",
            s.name
        );
        let value = match s.kind {
            SeriesKind::Gauge => raw,
            SeriesKind::Counter => raw.saturating_sub(s.last_raw),
        };
        s.last_raw = raw;
        if s.samples.len() == s.capacity {
            s.samples.pop_front();
        }
        s.samples.push_back(value);
        s.total += 1;
    }

    /// All series, in registration order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Looks up a series by name.
    pub fn series_by_name(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name == name)
    }
}

/// Scales a busy-time delta to parts-per-million utilization of `window`
/// (clamped to 1 000 000) — the integer-only utilization representation
/// every gauge in the telemetry layer stores.
pub fn utilization_ppm(busy: SimDuration, window: SimDuration) -> u64 {
    if window.is_zero() {
        return 0;
    }
    let ppm = (busy.as_nanos() as u128 * 1_000_000) / window.as_nanos() as u128;
    (ppm as u64).min(1_000_000)
}

// ---------------------------------------------------------------------------
// SLO watchdog
// ---------------------------------------------------------------------------

/// Comparison direction of a watchdog condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Fires when the sample is strictly greater than the threshold.
    Above,
    /// Fires when the sample is strictly less than the threshold.
    Below,
}

impl Cmp {
    fn test(self, value: u64, threshold: u64) -> bool {
        match self {
            Cmp::Above => value > threshold,
            Cmp::Below => value < threshold,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Cmp::Above => "above",
            Cmp::Below => "below",
        }
    }
}

/// One threshold test against one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Name of the series the condition reads.
    pub series: String,
    /// Comparison direction.
    pub cmp: Cmp,
    /// Threshold in the series' unit.
    pub threshold: u64,
}

impl Condition {
    fn holds(&self, sampler: &Sampler, window: u64) -> Option<u64> {
        let v = sampler.series_by_name(&self.series)?.value_at(window)?;
        self.cmp.test(v, self.threshold).then_some(v)
    }
}

/// A declarative SLO rule: the primary condition must hold for
/// `consecutive` windows in a row (optionally only counting windows where
/// the guard condition also holds) before one anomaly is emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloRule {
    /// Rule name, reported in anomalies (defaults to the parsed text).
    pub name: String,
    /// The condition that must persist.
    pub primary: Condition,
    /// Consecutive windows the condition must hold (≥ 1).
    pub consecutive: u32,
    /// Optional co-condition (`while <series> above|below <M>`).
    pub guard: Option<Condition>,
}

/// Why an [`SloRule`] text failed to parse — the first token that does
/// not fit the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleParseError {
    /// A required token (series name, threshold, window count) was
    /// missing; the payload names which one.
    Missing(&'static str),
    /// A token that should have been `above`/`below` (or `>`/`<`) was
    /// something else (`None` = end of input).
    BadComparator(Option<String>),
    /// A numeric field did not parse; `what` names the field.
    BadNumber {
        /// Which numeric field was malformed.
        what: &'static str,
        /// The offending token.
        text: String,
    },
    /// `for 0`: a rule must watch at least one window.
    ZeroWindowCount,
    /// A keyword position held an unexpected token (`expected` names the
    /// keyword, `found` the token).
    BadKeyword {
        /// The keyword that was expected.
        expected: &'static str,
        /// The token found instead.
        found: String,
    },
    /// Input continued past a complete rule.
    TrailingToken(String),
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleParseError::Missing(what) => write!(f, "missing {what}"),
            RuleParseError::BadComparator(Some(t)) => {
                write!(f, "expected above|below, got {t:?}")
            }
            RuleParseError::BadComparator(None) => {
                write!(f, "expected above|below, got end of input")
            }
            RuleParseError::BadNumber { what, text } => write!(f, "bad {what}: {text:?}"),
            RuleParseError::ZeroWindowCount => write!(f, "window count must be at least 1"),
            RuleParseError::BadKeyword { expected, found } => {
                write!(f, "expected `{expected}`, got {found:?}")
            }
            RuleParseError::TrailingToken(t) => write!(f, "trailing token {t:?}"),
        }
    }
}

impl std::error::Error for RuleParseError {}

impl SloRule {
    /// Parses the rule grammar:
    ///
    /// ```text
    /// <series> above|below <N> for <K> [while <series> above|below <M>]
    /// ```
    ///
    /// e.g. `"hv.vf1.p99_ns above 40000 for 3"` or
    /// `"storage.media_util_ppm below 100000 for 2 while core.ring_depth.f1 above 4"`.
    ///
    /// # Errors
    ///
    /// A [`RuleParseError`] naming the first token that does not fit the
    /// grammar.
    pub fn parse(text: &str) -> Result<SloRule, RuleParseError> {
        fn cond<'a>(
            toks: &mut impl Iterator<Item = &'a str>,
            series_what: &'static str,
            threshold_what: &'static str,
        ) -> Result<Condition, RuleParseError> {
            let series = toks
                .next()
                .ok_or(RuleParseError::Missing(series_what))?
                .to_string();
            let cmp = match toks.next() {
                Some("above") | Some(">") => Cmp::Above,
                Some("below") | Some("<") => Cmp::Below,
                other => return Err(RuleParseError::BadComparator(other.map(str::to_string))),
            };
            let text = toks.next().ok_or(RuleParseError::Missing(threshold_what))?;
            let threshold = text.parse::<u64>().map_err(|_| RuleParseError::BadNumber {
                what: threshold_what,
                text: text.to_string(),
            })?;
            Ok(Condition {
                series,
                cmp,
                threshold,
            })
        }
        let mut toks = text.split_whitespace();
        let primary = cond(&mut toks, "primary series name", "primary threshold")?;
        let consecutive = match toks.next() {
            Some("for") => {
                let text = toks
                    .next()
                    .ok_or(RuleParseError::Missing("window count after `for`"))?;
                let k = text.parse::<u32>().map_err(|_| RuleParseError::BadNumber {
                    what: "window count",
                    text: text.to_string(),
                })?;
                if k == 0 {
                    return Err(RuleParseError::ZeroWindowCount);
                }
                k
            }
            None => 1,
            Some(other) => {
                return Err(RuleParseError::BadKeyword {
                    expected: "for",
                    found: other.to_string(),
                })
            }
        };
        let guard = match toks.next() {
            Some("while") => Some(cond(&mut toks, "guard series name", "guard threshold")?),
            None => None,
            Some(other) => {
                return Err(RuleParseError::BadKeyword {
                    expected: "while",
                    found: other.to_string(),
                })
            }
        };
        if let Some(extra) = toks.next() {
            return Err(RuleParseError::TrailingToken(extra.to_string()));
        }
        Ok(SloRule {
            name: text.to_string(),
            primary,
            consecutive,
            guard,
        })
    }
}

impl fmt::Display for SloRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} for {}",
            self.primary.series,
            self.primary.cmp.as_str(),
            self.primary.threshold,
            self.consecutive
        )?;
        if let Some(g) = &self.guard {
            write!(f, " while {} {} {}", g.series, g.cmp.as_str(), g.threshold)?;
        }
        Ok(())
    }
}

/// One deterministic anomaly: a rule's condition held for its required
/// streak of consecutive windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyEvent {
    /// Name of the firing rule.
    pub rule: String,
    /// Index of the firing rule in the watchdog's registration order —
    /// joins against the `rule` attribute on the `telemetry:anomaly` span
    /// and the flight ring's anomaly marker.
    pub rule_index: usize,
    /// The firing rule's canonical source text
    /// (`<series> above|below <N> for <K> [while ...]`), so consumers
    /// don't have to re-derive which rule fired.
    pub text: String,
    /// The primary series that breached.
    pub series: String,
    /// Index of the window that completed the streak.
    pub window: u64,
    /// Simulated time of that window's end.
    pub at: SimTime,
    /// The primary series' value in that window.
    pub value: u64,
    /// Length of the completed streak.
    pub consecutive: u32,
}

/// Evaluates [`SloRule`]s against a [`Sampler`] at every window close,
/// tracking per-rule streaks and emitting [`AnomalyEvent`]s plus
/// `telemetry`-layer trace spans when a streak completes.
#[derive(Debug, Clone, Default)]
pub struct SloWatchdog {
    rules: Vec<SloRule>,
    streaks: Vec<u32>,
    anomalies: Vec<AnomalyEvent>,
}

impl SloWatchdog {
    /// A watchdog with no rules.
    pub fn new() -> Self {
        SloWatchdog::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: SloRule) {
        self.rules.push(rule);
        self.streaks.push(0);
    }

    /// The registered rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule against the most recently closed window.
    /// Call once per window close, after all series are sampled. When a
    /// rule's streak reaches its `consecutive` target the anomaly is
    /// recorded once (the streak keeps counting, so a second anomaly for
    /// the same rule requires the condition to lapse and persist again)
    /// and, if `tracer` is enabled, an `anomaly` span covering the whole
    /// breached stretch is emitted on the `telemetry` layer.
    pub fn evaluate(&mut self, sampler: &Sampler, tracer: &Tracer) {
        let Some(window) = sampler.closed_windows().checked_sub(1) else {
            return;
        };
        let at = sampler.window_end(window);
        for (i, rule) in self.rules.iter().enumerate() {
            let value = rule.primary.holds(sampler, window).filter(|_| {
                rule.guard
                    .as_ref()
                    .is_none_or(|g| g.holds(sampler, window).is_some())
            });
            match value {
                Some(v) => {
                    self.streaks[i] += 1;
                    if self.streaks[i] == rule.consecutive {
                        let text = rule.to_string();
                        let text_hash = fnv1a(text.as_bytes());
                        self.anomalies.push(AnomalyEvent {
                            rule: rule.name.clone(),
                            rule_index: i,
                            text,
                            series: rule.primary.series.clone(),
                            window,
                            at,
                            value: v,
                            consecutive: rule.consecutive,
                        });
                        let start = sampler.window_start(window + 1 - u64::from(rule.consecutive));
                        let span = tracer.span(SpanId::NONE, "telemetry", "anomaly", start, at);
                        tracer.attr(span, "rule", i as u64);
                        tracer.attr(span, "rule_text_hash", text_hash);
                        tracer.attr(span, "window", window);
                        tracer.attr(span, "value", v);
                        tracer.attr(span, "threshold", rule.primary.threshold);
                    }
                }
                None => self.streaks[i] = 0,
            }
        }
    }

    /// All anomalies recorded so far, in emission order.
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        &self.anomalies
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Serializes every series as JSON: the interval, windows closed, and per
/// series (sorted by name) its kind, unit, first retained window and the
/// sample ring. All values are integers, so the output is byte-stable for
/// a deterministic run.
pub fn series_json(sampler: &Sampler) -> serde_json::Value {
    let mut names: Vec<&TimeSeries> = sampler.series().iter().collect();
    names.sort_by(|a, b| a.name.cmp(&b.name));
    let series: Vec<serde_json::Value> = names
        .iter()
        .map(|s| {
            serde_json::json!({
                "name": s.name(),
                "unit": s.unit(),
                "kind": s.kind().as_str(),
                "first_window": s.first_window(),
                "samples": s.samples.iter().copied().collect::<Vec<u64>>(),
            })
        })
        .collect();
    serde_json::json!({
        "interval_ns": sampler.interval().as_nanos(),
        "windows": sampler.closed_windows(),
        "series": series,
    })
}

/// Renders every series as CSV: one row per retained window
/// (`window,end_ns` then one column per series, sorted by name; windows a
/// ring has already evicted render as empty cells).
pub fn series_csv(sampler: &Sampler) -> String {
    let mut cols: Vec<&TimeSeries> = sampler.series().iter().collect();
    cols.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("window,end_ns");
    for c in &cols {
        out.push(',');
        out.push_str(c.name());
    }
    out.push('\n');
    let first = cols.iter().map(|c| c.first_window()).min().unwrap_or(0);
    for w in first..sampler.closed_windows() {
        out.push_str(&format!("{w},{}", sampler.window_end(w).as_nanos()));
        for c in &cols {
            out.push(',');
            if let Some(v) = c.value_at(w) {
                out.push_str(&v.to_string());
            }
        }
        out.push('\n');
    }
    out
}

/// Generates Perfetto counter-track events (`ph:"C"`) for every retained
/// sample of every series — one counter track per series name, timestamped
/// at each window's end.
pub fn counter_track_events(sampler: &Sampler) -> Vec<serde_json::Value> {
    let mut cols: Vec<&TimeSeries> = sampler.series().iter().collect();
    cols.sort_by(|a, b| a.name.cmp(&b.name));
    let mut events = Vec::new();
    for c in cols {
        for (w, v) in c.samples() {
            events.push(serde_json::json!({
                "name": c.name(),
                "ph": "C",
                "pid": 1,
                "tid": 0,
                "ts": sampler.window_end(w).as_nanos() as f64 / 1_000.0,
                "args": { "value": v },
            }));
        }
    }
    events
}

/// Appends the sampler's counter tracks to an existing Chrome-trace
/// document (as produced by [`chrome_trace_json`]) so span swimlanes and
/// telemetry time series open in one Perfetto view. No-op if the document
/// has no `traceEvents` array.
///
/// [`chrome_trace_json`]: crate::trace::chrome_trace_json
pub fn merge_counter_tracks(doc: &mut serde_json::Value, sampler: &Sampler) {
    if let Some(serde_json::Value::Array(events)) = doc.get_mut("traceEvents") {
        events.extend(counter_track_events(sampler));
    }
}

/// A stable FNV-1a hash over the full JSON export — the section hash the
/// divergence self-check folds in so two same-seed runs must agree on
/// every retained sample of every series.
pub fn digest_hash(sampler: &Sampler) -> u64 {
    let json = serde_json::to_string(&series_json(sampler)).expect("series serialize");
    fnv1a(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_chrome_trace;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn dur(ns: u64) -> SimDuration {
        SimDuration::from_nanos(ns)
    }

    #[test]
    fn windows_close_in_order_from_sim_time() {
        let mut s = Sampler::new(dur(100), 8);
        let g = s.register("g", "n", SeriesKind::Gauge);
        assert_eq!(s.due(t(99)), None, "window 0 not yet over");
        assert_eq!(s.due(t(100)), Some(t(100)), "boundary closes window 0");
        s.sample(g, 7);
        assert_eq!(s.due(t(100)), None, "window 1 runs to 200");
        // A long idle stretch closes several windows, one due() each.
        assert_eq!(s.due(t(450)), Some(t(200)));
        s.sample(g, 8);
        assert_eq!(s.due(t(450)), Some(t(300)));
        s.sample(g, 8);
        assert_eq!(s.due(t(450)), Some(t(400)));
        s.sample(g, 9);
        assert_eq!(s.due(t(450)), None);
        assert_eq!(s.closed_windows(), 4);
        let ring = s.series_by_name("g").unwrap();
        assert_eq!(
            ring.samples().collect::<Vec<_>>(),
            vec![(0, 7), (1, 8), (2, 8), (3, 9)]
        );
    }

    #[test]
    fn counters_store_deltas_and_gauges_store_raw() {
        let mut s = Sampler::new(dur(10), 8);
        let c = s.register("c", "ops", SeriesKind::Counter);
        let g = s.register("g", "n", SeriesKind::Gauge);
        for (now, raw) in [(10u64, 5u64), (20, 5), (30, 12)] {
            assert!(s.due(t(now)).is_some());
            s.sample(c, raw);
            s.sample(g, raw);
        }
        let c = s.series_by_name("c").unwrap();
        assert_eq!(
            c.samples().map(|(_, v)| v).collect::<Vec<_>>(),
            vec![5, 0, 7],
            "counter deltas"
        );
        let g = s.series_by_name("g").unwrap();
        assert_eq!(
            g.samples().map(|(_, v)| v).collect::<Vec<_>>(),
            vec![5, 5, 12],
            "gauge raws"
        );
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_window_indices() {
        let mut s = Sampler::new(dur(10), 3);
        let g = s.register("g", "n", SeriesKind::Gauge);
        for w in 0..5u64 {
            assert!(s.due(t((w + 1) * 10)).is_some());
            s.sample(g, w * 100);
        }
        let ring = s.series_by_name("g").unwrap();
        assert_eq!(ring.first_window(), 2);
        assert_eq!(ring.value_at(1), None, "evicted");
        assert_eq!(ring.value_at(2), Some(200));
        assert_eq!(ring.latest(), Some((4, 400)));
    }

    #[test]
    fn late_registration_starts_at_current_window() {
        let mut s = Sampler::new(dur(10), 8);
        let a = s.register("a", "n", SeriesKind::Gauge);
        for w in 0..2u64 {
            assert!(s.due(t((w + 1) * 10)).is_some());
            s.sample(a, w);
        }
        // Registered after two closed windows: its ring starts at window 2.
        let b = s.register("b", "ops", SeriesKind::Counter);
        assert!(s.due(t(30)).is_some());
        s.sample(a, 2);
        s.sample(b, 40);
        let ring = s.series_by_name("b").unwrap();
        assert_eq!(ring.first_window(), 2);
        assert_eq!(ring.samples().collect::<Vec<_>>(), vec![(2, 40)]);
        assert_eq!(ring.value_at(1), None);
    }

    #[test]
    fn utilization_ppm_scales_and_clamps() {
        assert_eq!(utilization_ppm(dur(50), dur(100)), 500_000);
        assert_eq!(utilization_ppm(dur(200), dur(100)), 1_000_000, "clamped");
        assert_eq!(utilization_ppm(dur(0), dur(100)), 0);
        assert_eq!(utilization_ppm(dur(1), SimDuration::ZERO), 0);
    }

    #[test]
    fn rule_grammar_round_trips() {
        let r = SloRule::parse("hv.vf1.p99_ns above 40000 for 3").unwrap();
        assert_eq!(r.primary.series, "hv.vf1.p99_ns");
        assert_eq!(r.primary.cmp, Cmp::Above);
        assert_eq!(r.primary.threshold, 40_000);
        assert_eq!(r.consecutive, 3);
        assert!(r.guard.is_none());

        let r = SloRule::parse(
            "storage.media_util_ppm below 100000 for 2 while core.ring_depth.f1 above 4",
        )
        .unwrap();
        assert_eq!(r.consecutive, 2);
        let g = r.guard.as_ref().unwrap();
        assert_eq!(g.series, "core.ring_depth.f1");
        assert_eq!(g.cmp, Cmp::Above);
        assert_eq!(g.threshold, 4);
        assert_eq!(
            r.to_string(),
            "storage.media_util_ppm below 100000 for 2 while core.ring_depth.f1 above 4"
        );

        // `for` defaults to 1 window.
        assert_eq!(SloRule::parse("x above 1").unwrap().consecutive, 1);
        assert!(SloRule::parse("x sideways 1").is_err());
        assert!(SloRule::parse("x above 1 for 0").is_err());
        assert!(SloRule::parse("x above 1 for 2 whilst y above 1").is_err());
        assert!(SloRule::parse("x above nope").is_err());
    }

    #[test]
    fn watchdog_fires_after_consecutive_windows_only() {
        let mut s = Sampler::new(dur(10), 16);
        let g = s.register("lat", "ns", SeriesKind::Gauge);
        let mut wd = SloWatchdog::new();
        wd.add_rule(SloRule::parse("lat above 100 for 3").unwrap());
        let tracer = Tracer::enabled();
        // Two hot windows, one cool (streak resets), then three hot.
        let values = [150u64, 150, 50, 200, 200, 200, 200];
        for (w, &v) in values.iter().enumerate() {
            assert!(s.due(t((w as u64 + 1) * 10)).is_some());
            s.sample(g, v);
            wd.evaluate(&s, &tracer);
        }
        let anomalies = wd.anomalies();
        assert_eq!(anomalies.len(), 1, "fires once per completed streak");
        let a = &anomalies[0];
        assert_eq!(a.window, 5, "third consecutive hot window");
        assert_eq!(a.at, t(60));
        assert_eq!(a.value, 200);
        // The trace span covers the breached stretch [30, 60].
        let spans = tracer.take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].layer, "telemetry");
        assert_eq!(spans[0].name, "anomaly");
        assert_eq!(spans[0].start, t(30));
        assert_eq!(spans[0].end, t(60));
        assert_eq!(spans[0].attr("threshold"), Some(100));
    }

    #[test]
    fn watchdog_guard_must_also_hold() {
        let mut s = Sampler::new(dur(10), 16);
        let util = s.register("util", "ppm", SeriesKind::Gauge);
        let depth = s.register("depth", "n", SeriesKind::Gauge);
        let mut wd = SloWatchdog::new();
        wd.add_rule(SloRule::parse("util below 1000 for 2 while depth above 3").unwrap());
        let tracer = Tracer::disabled();
        // Window 0: util low but queue empty -> guard fails, no streak.
        // Windows 1-2: util low AND deep queue -> anomaly at window 2.
        for (w, (u, d)) in [(500u64, 0u64), (500, 8), (500, 8)].iter().enumerate() {
            assert!(s.due(t((w as u64 + 1) * 10)).is_some());
            s.sample(util, *u);
            s.sample(depth, *d);
            wd.evaluate(&s, &tracer);
        }
        assert_eq!(wd.anomalies().len(), 1);
        assert_eq!(wd.anomalies()[0].window, 2);
    }

    #[test]
    fn watchdog_on_missing_series_never_fires() {
        let mut s = Sampler::new(dur(10), 4);
        let g = s.register("g", "n", SeriesKind::Gauge);
        let mut wd = SloWatchdog::new();
        wd.add_rule(SloRule::parse("nonexistent above 0 for 1").unwrap());
        assert!(s.due(t(10)).is_some());
        s.sample(g, 1);
        wd.evaluate(&s, &Tracer::disabled());
        assert!(wd.anomalies().is_empty());
    }

    #[test]
    fn json_and_csv_exports_are_deterministic() {
        let mk = || {
            let mut s = Sampler::new(dur(10), 4);
            let b = s.register("b.ops", "ops", SeriesKind::Counter);
            let a = s.register("a.depth", "n", SeriesKind::Gauge);
            for w in 0..3u64 {
                assert!(s.due(t((w + 1) * 10)).is_some());
                s.sample(b, (w + 1) * 4);
                s.sample(a, w);
            }
            s
        };
        let s = mk();
        let json = serde_json::to_string_pretty(&series_json(&s)).unwrap();
        assert_eq!(
            json,
            serde_json::to_string_pretty(&series_json(&mk())).unwrap()
        );
        // Sorted by name: a.depth before b.ops.
        assert!(json.find("a.depth").unwrap() < json.find("b.ops").unwrap());
        assert_eq!(digest_hash(&s), digest_hash(&mk()));

        let csv = series_csv(&s);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("window,end_ns,a.depth,b.ops"));
        assert_eq!(lines.next(), Some("0,10,0,4"));
        assert_eq!(lines.next(), Some("1,20,1,4"));
        assert_eq!(lines.next(), Some("2,30,2,4"));
    }

    #[test]
    fn counter_tracks_merge_into_valid_chrome_trace() {
        let tracer = Tracer::enabled();
        let span = tracer.start(SpanId::NONE, "core", "device", t(0));
        tracer.end(span, t(25));
        let mut s = Sampler::new(dur(10), 4);
        let g = s.register("core.depth", "n", SeriesKind::Gauge);
        for w in 0..2u64 {
            assert!(s.due(t((w + 1) * 10)).is_some());
            s.sample(g, w + 1);
        }
        let mut doc = crate::trace::chrome_trace_json(&tracer.take_spans());
        let count = |d: &serde_json::Value| match d.get("traceEvents") {
            Some(serde_json::Value::Array(ev)) => ev.len(),
            _ => panic!("missing traceEvents"),
        };
        let before = count(&doc);
        merge_counter_tracks(&mut doc, &s);
        assert_eq!(count(&doc), before + 2);
        validate_chrome_trace(&doc).expect("merged document stays valid");
        let Some(serde_json::Value::Array(events)) = doc.get("traceEvents") else {
            unreachable!()
        };
        let c = events.last().unwrap();
        assert_eq!(c.get("ph"), Some(&serde_json::Value::from("C")));
        assert_eq!(c.get("name"), Some(&serde_json::Value::from("core.depth")));
    }
}
