//! Timed event queue.
//!
//! [`EventQueue`] is a min-heap keyed on [`SimTime`] with a monotonic
//! sequence number as tie-breaker, so events scheduled for the same instant
//! pop in FIFO order. Determinism of the whole simulation rests on this
//! tie-breaking rule.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic min-heap of `(time, event)` pairs.
///
/// Ties on `time` are broken by insertion order (FIFO), which keeps runs
/// reproducible regardless of heap internals.
///
/// # Example
///
/// ```
/// use nesc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "late");
/// q.push(SimTime::from_nanos(10), "later"); // same instant, FIFO after "late"
/// q.push(SimTime::from_nanos(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Useful for lock-step co-simulation of several queues.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert!(q.pop_due(SimTime::from_nanos(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(10)).unwrap().1, "a");
        assert!(q.pop_due(SimTime::from_nanos(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(25)).unwrap().1, "b");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and ties
        /// preserve insertion order.
        #[test]
        fn prop_monotonic_pop(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut seen_at_time: Vec<usize> = Vec::new();
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t > last_time {
                    seen_at_time.clear();
                }
                // FIFO tie-break: indices at the same timestamp are increasing.
                if let Some(&prev) = seen_at_time.last() {
                    prop_assert!(idx > prev);
                }
                seen_at_time.push(idx);
                last_time = t;
            }
        }
    }
}
