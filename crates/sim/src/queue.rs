//! Timed event queue.
//!
//! [`EventQueue`] is a min-heap keyed on [`SimTime`] with a monotonic
//! sequence number as tie-breaker, so events scheduled for the same instant
//! pop in FIFO order. Determinism of the whole simulation rests on this
//! tie-breaking rule.
//!
//! Device models overwhelmingly schedule in non-decreasing time order (a
//! request's completion chain, a batch of per-block media events), so the
//! queue keeps a *fast lane*: a `VecDeque` that absorbs any push not
//! earlier than its tail in O(1), bypassing the heap's `log n` sift
//! entirely. Out-of-order pushes fall back to the heap; `pop` merges the
//! two lanes on `(time, seq)`, which preserves the exact global FIFO
//! tie-break the single-heap implementation had.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// A deterministic min-heap of `(time, event)` pairs.
///
/// Ties on `time` are broken by insertion order (FIFO), which keeps runs
/// reproducible regardless of heap internals.
///
/// # Example
///
/// ```
/// use nesc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "late");
/// q.push(SimTime::from_nanos(10), "later"); // same instant, FIFO after "late"
/// q.push(SimTime::from_nanos(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Monotonic lane: entries here are non-decreasing in `(time, seq)`
    /// front-to-back, so the earliest is always at the front.
    fast: VecDeque<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            fast: VecDeque::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, event };
        // seq is strictly increasing, so `time >= back.time` alone keeps
        // the lane sorted on (time, seq).
        match self.fast.back() {
            Some(back) if time < back.time => self.heap.push(entry),
            _ => self.fast.push_back(entry),
        }
    }

    /// Schedules a batch of events. Equivalent to pushing each in order;
    /// callers producing a sorted batch (the common case on the data path)
    /// get the O(1) fast-lane append for every element.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lo, _) = events.size_hint();
        self.fast.reserve(lo);
        for (time, event) in events {
            self.push(time, event);
        }
    }

    /// Whether the next pop should come from the fast lane rather than the
    /// heap, comparing front entries on `(time, seq)`.
    fn fast_is_next(&self) -> bool {
        match (self.fast.front(), self.heap.peek()) {
            (Some(_), None) => true,
            (Some(f), Some(h)) => (f.time, f.seq) < (h.time, h.seq),
            _ => false,
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.fast_is_next() {
            self.fast.pop_front().map(|e| (e.time, e.event))
        } else {
            self.heap.pop().map(|e| (e.time, e.event))
        }
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.fast.front(), self.heap.peek()) {
            (Some(f), Some(h)) => Some(f.time.min(h.time)),
            (Some(f), None) => Some(f.time),
            (None, Some(h)) => Some(h.time),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Useful for lock-step co-simulation of several queues.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.fast.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.fast.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.fast.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert!(q.pop_due(SimTime::from_nanos(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(10)).unwrap().1, "a");
        assert!(q.pop_due(SimTime::from_nanos(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(25)).unwrap().1, "b");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn push_batch_is_fifo_with_plain_push() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 0);
        q.push_batch((1..4).map(|i| (SimTime::from_nanos(5), i)));
        q.push(SimTime::from_nanos(2), 99);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![99, 0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_lanes_merge_in_order() {
        // Alternate monotonic pushes (fast lane) with earlier ones (heap)
        // and check the merged pop order globally.
        let mut q = EventQueue::new();
        let times = [10u64, 20, 5, 30, 7, 30, 1];
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort();
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
        assert_eq!(got, expect);
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and ties
        /// preserve insertion order.
        #[test]
        fn prop_monotonic_pop(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut seen_at_time: Vec<usize> = Vec::new();
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t > last_time {
                    seen_at_time.clear();
                }
                // FIFO tie-break: indices at the same timestamp are increasing.
                if let Some(&prev) = seen_at_time.last() {
                    prop_assert!(idx > prev);
                }
                seen_at_time.push(idx);
                last_time = t;
            }
        }

        /// Mixed push / push_batch / pop interleavings agree with a sort on
        /// (time, insertion index): two-lane merging is externally
        /// indistinguishable from the old single heap.
        #[test]
        fn prop_two_lane_merge_matches_single_heap(
            ops in proptest::collection::vec((0u8..4, 0u64..100, 1usize..5), 1..80)
        ) {
            let mut q = EventQueue::new();
            let mut model: Vec<(u64, usize)> = Vec::new();
            let mut next = 0usize;
            let mut popped: Vec<(u64, usize)> = Vec::new();
            for &(kind, t, n) in &ops {
                match kind {
                    0 | 1 => {
                        q.push(SimTime::from_nanos(t), next);
                        model.push((t, next));
                        next += 1;
                    }
                    2 => {
                        let batch: Vec<_> = (0..n)
                            .map(|j| (SimTime::from_nanos(t + j as u64), next + j))
                            .collect();
                        model.extend(batch.iter().map(|&(st, e)| (st.as_nanos(), e)));
                        q.push_batch(batch);
                        next += n;
                    }
                    _ => {
                        if let Some((pt, e)) = q.pop() {
                            popped.push((pt.as_nanos(), e));
                        }
                    }
                }
            }
            while let Some((pt, e)) = q.pop() {
                popped.push((pt.as_nanos(), e));
            }
            // Stable order: sorting (time, insertion-index) is exactly the
            // FIFO tie-break. Interleaved pops only ever remove the current
            // minimum, so the concatenation is a sorted merge of model...
            // but pops mid-stream can reorder relative to later-inserted
            // earlier-time events, so compare as multisets plus local
            // monotonicity of each pop burst instead.
            let mut all = model.clone();
            all.sort();
            let mut got = popped.clone();
            got.sort();
            prop_assert_eq!(got, all);
        }
    }
}
