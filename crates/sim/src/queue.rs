//! Timed event queue.
//!
//! [`EventQueue`] is a deterministic priority queue keyed on [`SimTime`]
//! with a monotonic sequence number as tie-breaker, so events scheduled
//! for the same instant pop in FIFO order. Determinism of the whole
//! simulation rests on this tie-breaking rule.
//!
//! Device models overwhelmingly schedule in non-decreasing time order (a
//! request's completion chain, a batch of per-block media events), so the
//! queue keeps a *fast lane*: a `VecDeque` that absorbs any push not
//! earlier than its tail in O(1), bypassing the slow lane entirely.
//!
//! Out-of-order pushes land in the slow lane, which is a flat event
//! calendar (a single-level bucketed timing wheel): `WHEEL_BUCKETS`
//! buckets of `2^WHEEL_SHIFT` ns each cover a sliding ~1 ms window, and
//! events beyond the window spill into an overflow vector that is
//! refilled into the wheel as the window advances. Each bucket is a plain
//! `Vec` holding entries inline — the buckets double as the slab for
//! in-flight events, so steady-state push/pop cycles reuse retained
//! capacity and perform no heap allocation. `pop` merges the lanes on
//! `(time, seq)`, which preserves the exact global FIFO tie-break the
//! original single-heap implementation had: within a bucket the minimum
//! is selected by scanning on `(time, seq)`, never by insertion position,
//! so bucket-internal order is irrelevant to the observable pop order.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Number of near-future buckets in the calendar. A power of two so the
/// bucket index is a mask, not a modulo.
const WHEEL_BUCKETS: usize = 256;

/// log2 of the bucket granularity in nanoseconds: 4096 ns per bucket,
/// giving a ~1.05 ms near-future window — wider than the completion
/// horizon of a single request chain, so device-model events essentially
/// never touch the overflow spill.
const WHEEL_SHIFT: u32 = 12;

/// A deterministic min-queue of `(time, event)` pairs.
///
/// Ties on `time` are broken by insertion order (FIFO), which keeps runs
/// reproducible regardless of the calendar internals.
///
/// # Example
///
/// ```
/// use nesc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), "late");
/// q.push(SimTime::from_nanos(10), "later"); // same instant, FIFO after "late"
/// q.push(SimTime::from_nanos(1), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future calendar: bucket `i` holds entries whose wheel slot
    /// `s` (see [`slot_of`]) satisfies `s % WHEEL_BUCKETS == i` and
    /// `cursor <= s < cursor + WHEEL_BUCKETS`. Entries scheduled earlier
    /// than the cursor (a push into the past) are filed under the cursor
    /// bucket itself, which is always the first bucket scanned.
    buckets: Vec<Vec<Entry<E>>>,
    /// Events beyond the calendar window, unsorted; refilled into the
    /// buckets when the window slides over them.
    overflow: Vec<Entry<E>>,
    /// Absolute slot number of the earliest (first-scanned) bucket.
    cursor: u64,
    /// Entries currently in `buckets` (not counting `overflow`).
    in_buckets: usize,
    /// Cached `(time, seq)` minimum over `buckets` / `overflow`; kept
    /// exact on every mutation so `peek_time` is O(1) and `&self`.
    bucket_min: Option<(SimTime, u64)>,
    overflow_min: Option<(SimTime, u64)>,
    /// Monotonic lane: entries here are non-decreasing in `(time, seq)`
    /// front-to-back, so the earliest is always at the front.
    fast: VecDeque<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

/// Absolute wheel slot of a timestamp.
fn slot_of(time: SimTime) -> u64 {
    time.as_nanos() >> WHEEL_SHIFT
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(WHEEL_BUCKETS);
        buckets.resize_with(WHEEL_BUCKETS, Vec::new);
        EventQueue {
            buckets,
            overflow: Vec::new(),
            cursor: 0,
            in_buckets: 0,
            bucket_min: None,
            overflow_min: None,
            fast: VecDeque::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        let entry = Entry { time, seq, event };
        // seq is strictly increasing, so `time >= back.time` alone keeps
        // the lane sorted on (time, seq).
        match self.fast.back() {
            Some(back) if time < back.time => self.push_slow(entry),
            _ => self.fast.push_back(entry),
        }
    }

    /// Schedules a batch of events. Equivalent to pushing each in order;
    /// callers producing a sorted batch (the common case on the data path)
    /// get the O(1) fast-lane append for every element.
    pub fn push_batch<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let events = events.into_iter();
        let (lo, _) = events.size_hint();
        self.fast.reserve(lo);
        for (time, event) in events {
            self.push(time, event);
        }
    }

    /// Files an out-of-order entry into the calendar.
    fn push_slow(&mut self, entry: Entry<E>) {
        let key = (entry.time, entry.seq);
        let slot = slot_of(entry.time);
        if self.in_buckets == 0 && self.overflow.is_empty() {
            // Empty calendar: re-anchor the window at this event.
            self.cursor = slot;
        }
        if slot >= self.cursor + WHEEL_BUCKETS as u64 {
            if self.overflow_min.is_none_or(|m| key < m) {
                self.overflow_min = Some(key);
            }
            self.overflow.push(entry);
        } else {
            // Pushes into the past (slot < cursor) file under the cursor
            // bucket: it is scanned first, and min-selection inside a
            // bucket is on (time, seq), so ordering is unaffected.
            let slot = slot.max(self.cursor);
            self.buckets[(slot as usize) & (WHEEL_BUCKETS - 1)].push(entry);
            self.in_buckets += 1;
            if self.bucket_min.is_none_or(|m| key < m) {
                self.bucket_min = Some(key);
            }
        }
    }

    /// Cached `(time, seq)` of the earliest slow-lane entry.
    fn slow_min(&self) -> Option<(SimTime, u64)> {
        match (self.bucket_min, self.overflow_min) {
            (Some(b), Some(o)) => Some(b.min(o)),
            (b, o) => b.or(o),
        }
    }

    /// Whether the next pop should come from the fast lane rather than
    /// the calendar, comparing front entries on `(time, seq)`.
    fn fast_is_next(&self) -> bool {
        match (self.fast.front(), self.slow_min()) {
            (Some(_), None) => true,
            (Some(f), Some(s)) => (f.time, f.seq) < s,
            _ => false,
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.fast_is_next() {
            self.fast.pop_front().map(|e| (e.time, e.event))
        } else {
            self.pop_slow().map(|e| (e.time, e.event))
        }
    }

    /// Removes the earliest calendar entry and refreshes the cached
    /// minima.
    fn pop_slow(&mut self) -> Option<Entry<E>> {
        let min = self.slow_min()?;
        if self.bucket_min == Some(min) {
            // The window's first non-empty bucket holds the earliest
            // bucketed entry: every entry files at a slot >= its own
            // (time >> WHEEL_SHIFT), so earlier buckets mean earlier
            // times; ties never span buckets.
            while self.buckets[(self.cursor as usize) & (WHEEL_BUCKETS - 1)].is_empty() {
                self.cursor += 1;
            }
            let idx = (self.cursor as usize) & (WHEEL_BUCKETS - 1);
            let Some(pos) = min_pos(&self.buckets[idx]) else {
                // bucket_min points at an empty wheel — the cached minima
                // are out of sync. Report the queue as drained rather than
                // dying; the event loop treats that as an idle device.
                debug_assert!(false, "bucket_min points at empty wheel");
                return None;
            };
            let entry = self.buckets[idx].swap_remove(pos);
            self.in_buckets -= 1;
            debug_assert_eq!((entry.time, entry.seq), min);
            self.refresh_bucket_min();
            self.maybe_refill();
            Some(entry)
        } else {
            // Calendar window is empty (or behind): pop straight from the
            // overflow spill, then slide the window onto what remains.
            let Some(pos) = min_pos(&self.overflow) else {
                debug_assert!(false, "overflow_min points at empty spill");
                return None;
            };
            let entry = self.overflow.swap_remove(pos);
            debug_assert_eq!((entry.time, entry.seq), min);
            self.refresh_overflow_min();
            self.maybe_refill();
            Some(entry)
        }
    }

    /// Recomputes `bucket_min` by scanning from the cursor to the first
    /// non-empty bucket. Bounded by the window width; amortized O(1) as
    /// the cursor only moves forward while the window is occupied.
    fn refresh_bucket_min(&mut self) {
        if self.in_buckets == 0 {
            self.bucket_min = None;
            return;
        }
        while self.buckets[(self.cursor as usize) & (WHEEL_BUCKETS - 1)].is_empty() {
            self.cursor += 1;
        }
        let idx = (self.cursor as usize) & (WHEEL_BUCKETS - 1);
        let Some(pos) = min_pos(&self.buckets[idx]) else {
            debug_assert!(false, "in_buckets > 0 but no occupied bucket");
            self.bucket_min = None;
            return;
        };
        let e = &self.buckets[idx][pos];
        self.bucket_min = Some((e.time, e.seq));
    }

    fn refresh_overflow_min(&mut self) {
        self.overflow_min = min_pos(&self.overflow).map(|p| {
            let e = &self.overflow[p];
            (e.time, e.seq)
        });
    }

    /// Slides the window onto the overflow spill: once the earliest
    /// spilled event falls inside (or behind) the calendar window, move
    /// every in-window spill entry into its bucket. Keeps the invariant
    /// that the spill only holds events beyond the window, so bucketed
    /// events always pop before spilled ones.
    fn maybe_refill(&mut self) {
        let Some((t, _)) = self.overflow_min else {
            return;
        };
        if self.in_buckets == 0 {
            // Nothing ahead of the spill: jump the window to it.
            self.cursor = slot_of(t);
        } else if slot_of(t) >= self.cursor + WHEEL_BUCKETS as u64 {
            return;
        }
        let end = self.cursor + WHEEL_BUCKETS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            if slot_of(self.overflow[i].time) < end {
                let entry = self.overflow.swap_remove(i);
                let key = (entry.time, entry.seq);
                let slot = slot_of(entry.time).max(self.cursor);
                self.buckets[(slot as usize) & (WHEEL_BUCKETS - 1)].push(entry);
                self.in_buckets += 1;
                if self.bucket_min.is_none_or(|m| key < m) {
                    self.bucket_min = Some(key);
                }
            } else {
                i += 1;
            }
        }
        self.refresh_overflow_min();
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.fast.front().map(|f| f.time), self.slow_min()) {
            (Some(f), Some((s, _))) => Some(f.min(s)),
            (Some(f), None) => Some(f),
            (None, Some((s, _))) => Some(s),
            (None, None) => None,
        }
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Useful for lock-step co-simulation of several queues.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.in_buckets + self.overflow.len() + self.fast.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.in_buckets = 0;
        self.bucket_min = None;
        self.overflow_min = None;
        self.fast.clear();
    }
}

/// Index of the `(time, seq)`-minimal entry, or `None` if empty. The
/// scan is what makes bucket-internal order (and `swap_remove` churn)
/// invisible: selection is by key, never by position.
fn min_pos<E>(entries: &[Entry<E>]) -> Option<usize> {
    let mut best: Option<(usize, (SimTime, u64))> = None;
    for (i, e) in entries.iter().enumerate() {
        let key = (e.time, e.seq);
        if best.is_none_or(|(_, b)| key < b) {
            best = Some((i, key));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        q.push(SimTime::from_nanos(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert!(q.pop_due(SimTime::from_nanos(5)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(10)).unwrap().1, "a");
        assert!(q.pop_due(SimTime::from_nanos(15)).is_none());
        assert_eq!(q.pop_due(SimTime::from_nanos(25)).unwrap().1, "b");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }

    #[test]
    fn push_batch_is_fifo_with_plain_push() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 0);
        q.push_batch((1..4).map(|i| (SimTime::from_nanos(5), i)));
        q.push(SimTime::from_nanos(2), 99);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![99, 0, 1, 2, 3]);
    }

    #[test]
    fn interleaved_lanes_merge_in_order() {
        // Alternate monotonic pushes (fast lane) with earlier ones (the
        // wheel) and check the merged pop order globally.
        let mut q = EventQueue::new();
        let times = [10u64, 20, 5, 30, 7, 30, 1];
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort();
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn far_future_events_spill_and_return() {
        // Events far beyond the calendar window spill to overflow and
        // still pop in global order — including one near the end of the
        // representable time range.
        let mut q = EventQueue::new();
        let far = u64::MAX / 4;
        q.push(SimTime::from_nanos(far), "far");
        q.push(SimTime::from_nanos(100), "soon");
        q.push(SimTime::from_nanos(far + 1), "farther");
        q.push(SimTime::from_nanos(50), "sooner");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(50)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["sooner", "soon", "far", "farther"]);
    }

    #[test]
    fn overflow_refills_into_wheel_as_window_slides() {
        // Spread events across many windows (forcing spill + refill on
        // every window slide) with FIFO ties inside each cluster.
        let window_ns = (WHEEL_BUCKETS as u64) << WHEEL_SHIFT;
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        // Seed the wheel with an early anchor so every later cluster is
        // out-of-window at push time.
        q.push(SimTime::from_nanos(1), 0usize);
        q.push(SimTime::ZERO, 1); // past push: files under the cursor bucket
        expect.push((0u64, 1usize));
        expect.push((1u64, 0usize));
        let mut id = 2usize;
        for w in 1..20u64 {
            for k in 0..3u64 {
                let t = w * window_ns + (k % 2) * 17;
                q.push(SimTime::from_nanos(t), id);
                expect.push((t, id));
                id += 1;
            }
        }
        // Sorting on (time, insertion id) is exactly the FIFO tie-break.
        expect.sort();
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_nanos(), e))).collect();
        assert_eq!(got, expect);
    }

    /// Reference model: the exact `BinaryHeap` the wheel replaced.
    struct HeapModel {
        heap: BinaryHeap<std::cmp::Reverse<(u64, usize)>>,
        seq: usize,
    }

    impl HeapModel {
        fn new() -> Self {
            HeapModel {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }
        fn push(&mut self, t: u64) -> usize {
            let id = self.seq;
            self.seq += 1;
            self.heap.push(std::cmp::Reverse((t, id)));
            id
        }
        fn pop(&mut self) -> Option<(u64, usize)> {
            self.heap.pop().map(|std::cmp::Reverse(p)| p)
        }
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and ties
        /// preserve insertion order.
        #[test]
        fn prop_monotonic_pop(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut seen_at_time: Vec<usize> = Vec::new();
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t > last_time {
                    seen_at_time.clear();
                }
                // FIFO tie-break: indices at the same timestamp are increasing.
                if let Some(&prev) = seen_at_time.last() {
                    prop_assert!(idx > prev);
                }
                seen_at_time.push(idx);
                last_time = t;
            }
        }

        /// Mixed push / push_batch / pop interleavings agree with a sort on
        /// (time, insertion index): lane merging and wheel bucketing are
        /// externally indistinguishable from the old single heap.
        #[test]
        fn prop_two_lane_merge_matches_single_heap(
            ops in proptest::collection::vec((0u8..4, 0u64..100, 1usize..5), 1..80)
        ) {
            let mut q = EventQueue::new();
            let mut model: Vec<(u64, usize)> = Vec::new();
            let mut next = 0usize;
            let mut popped: Vec<(u64, usize)> = Vec::new();
            for &(kind, t, n) in &ops {
                match kind {
                    0 | 1 => {
                        q.push(SimTime::from_nanos(t), next);
                        model.push((t, next));
                        next += 1;
                    }
                    2 => {
                        let batch: Vec<_> = (0..n)
                            .map(|j| (SimTime::from_nanos(t + j as u64), next + j))
                            .collect();
                        model.extend(batch.iter().map(|&(st, e)| (st.as_nanos(), e)));
                        q.push_batch(batch);
                        next += n;
                    }
                    _ => {
                        if let Some((pt, e)) = q.pop() {
                            popped.push((pt.as_nanos(), e));
                        }
                    }
                }
            }
            while let Some((pt, e)) = q.pop() {
                popped.push((pt.as_nanos(), e));
            }
            // Stable order: sorting (time, insertion-index) is exactly the
            // FIFO tie-break. Interleaved pops only ever remove the current
            // minimum, so the concatenation is a sorted merge of model...
            // but pops mid-stream can reorder relative to later-inserted
            // earlier-time events, so compare as multisets plus local
            // monotonicity of each pop burst instead.
            let mut all = model.clone();
            all.sort();
            let mut got = popped.clone();
            got.sort();
            prop_assert_eq!(got, all);
        }

        /// Lock-step conformance against a reference `BinaryHeap` keyed on
        /// `(time, seq)` — the exact structure the wheel replaced. Every
        /// interleaved pop must return the identical `(time, id)` pair,
        /// which pins same-timestamp FIFO ties, overflow-bucket spill and
        /// refill (times span many windows), and far-future events.
        #[test]
        fn prop_wheel_matches_heap_reference(
            ops in proptest::collection::vec((0u8..3, 0u8..3, 0u64..1000), 1..200)
        ) {
            let mut q = EventQueue::new();
            let mut model = HeapModel::new();
            for &(kind, band, raw) in &ops {
                // Three time bands: a dense near cluster (lots of ties),
                // a few calendar windows out (exercises bucketing and the
                // sliding window), and the far future (overflow spill).
                let t = match band {
                    0 => raw % 200,
                    1 => raw << (WHEEL_SHIFT + 1),
                    _ => u64::MAX / 4 + raw,
                };
                if kind < 2 {
                    let id = model.push(t);
                    q.push(SimTime::from_nanos(t), id);
                } else {
                    let got = q.pop().map(|(pt, e)| (pt.as_nanos(), e));
                    prop_assert_eq!(got, model.pop());
                }
            }
            loop {
                let got = q.pop().map(|(pt, e)| (pt.as_nanos(), e));
                let want = model.pop();
                prop_assert_eq!(got, want);
                if want.is_none() {
                    break;
                }
            }
        }
    }
}
