//! The NVMe-over-NeSC controller.
//!
//! [`NvmeController`] fronts a [`NescDevice`] with NVMe queue pairs.
//! Namespaces are created by the hypervisor exactly like VFs — from an
//! extent-tree root — so *"what an address space represents"* (the
//! question the paper says NVMe leaves open, §III) has a concrete answer
//! here: **namespace = file**, enforced by the device's translation
//! hardware. Commands flow: driver pushes encoded SQEs → doorbell →
//! controller decodes, validates, submits block requests to the NeSC
//! engine → completions are posted to the CQ with phase tags.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use nesc_core::{CompletionStatus, FuncId, IrqReason, NescConfig, NescDevice, NescOutput};
use nesc_extent::{validate_cid, validate_nlb, validate_slba};
use nesc_pcie::{HostAddr, HostMemory};
use nesc_sim::{SimDuration, SimTime};
use nesc_storage::{BlockOp, BlockRequest, RequestId};

use crate::command::{CompletionEntry, NvmeOpcode, NvmeStatus, SubmissionEntry};
use crate::queue::{CompletionQueue, QueueFull, SubmissionQueue};

/// A namespace: an NVMe-visible identity for one NeSC virtual function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Namespace {
    /// Namespace id (1-based).
    pub nsid: u32,
    /// The backing virtual function.
    pub func: FuncId,
    /// Capacity in 1 KiB logical blocks.
    pub size_blocks: u64,
}

/// Controller-level error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeError {
    /// No VF slot available for a new namespace.
    VfExhausted,
    /// The namespace id is not live.
    UnknownNamespace {
        /// The offending id.
        nsid: u32,
    },
    /// The queue id is not live.
    UnknownQueue {
        /// The offending id.
        qid: u16,
    },
    /// The submission ring was full.
    Full(QueueFull),
}

impl std::fmt::Display for NvmeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmeError::VfExhausted => write!(f, "no VF slot for a new namespace"),
            NvmeError::UnknownNamespace { nsid } => write!(f, "unknown namespace {nsid}"),
            NvmeError::UnknownQueue { qid } => write!(f, "unknown queue {qid}"),
            NvmeError::Full(q) => write!(f, "{q}"),
        }
    }
}

impl std::error::Error for NvmeError {}

impl From<QueueFull> for NvmeError {
    fn from(q: QueueFull) -> Self {
        NvmeError::Full(q)
    }
}

struct QueuePair {
    sq: SubmissionQueue,
    cq: CompletionQueue,
}

/// The controller: NVMe rings in front of the NeSC engine.
///
/// # Example
///
/// ```
/// use nesc_nvme::{NvmeController, SubmissionEntry, NvmeOpcode, NvmeStatus};
/// use nesc_core::NescConfig;
/// use nesc_extent::{ExtentTree, ExtentMapping, Vlba, Plba};
/// use nesc_pcie::HostMemory;
/// use nesc_sim::SimTime;
/// use std::{cell::RefCell, rc::Rc};
///
/// let mem = Rc::new(RefCell::new(HostMemory::new()));
/// let mut ctrl = NvmeController::new(NescConfig::prototype(), Rc::clone(&mem));
/// let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(64), 16)].into_iter().collect();
/// let root = tree.serialize(&mut mem.borrow_mut());
/// let ns = ctrl.create_namespace(root, 16).unwrap();
/// let qid = ctrl.create_queue_pair(8);
///
/// let buf = mem.borrow_mut().alloc(1024, 4096);
/// mem.borrow_mut().write(buf, &[0x42; 1024]);
/// let sqe = SubmissionEntry::new(NvmeOpcode::Write, 1, ns, buf, Vlba(0), 0);
/// let done = ctrl.submit_and_process(SimTime::ZERO, qid, &[sqe]).unwrap();
/// assert_eq!(done[0].0.status, NvmeStatus::Success);
/// // The bytes landed on the namespace's *file* blocks (pLBA 64).
/// assert_eq!(ctrl.device().store().read_block(Plba(64)).unwrap(), vec![0x42; 1024]);
/// ```
pub struct NvmeController {
    dev: NescDevice,
    mem: Rc<RefCell<HostMemory>>,
    namespaces: BTreeMap<u32, Namespace>,
    next_nsid: u32,
    qpairs: Vec<QueuePair>,
    /// Outstanding commands: device request id → (qid, cid, sq_head).
    inflight: BTreeMap<RequestId, (u16, u16, u16)>,
    next_req: u64,
    /// Controller firmware cost to decode and dispatch one command.
    cmd_cost: SimDuration,
    /// Translation-miss interrupts awaiting the embedding hypervisor.
    pending_misses: Vec<(u32, IrqReason, SimTime)>,
}

impl std::fmt::Debug for NvmeController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmeController")
            .field("namespaces", &self.namespaces.len())
            .field("queues", &self.qpairs.len())
            .finish()
    }
}

impl NvmeController {
    /// Creates a controller over a fresh NeSC device.
    pub fn new(cfg: NescConfig, mem: Rc<RefCell<HostMemory>>) -> Self {
        NvmeController {
            dev: NescDevice::new(cfg, Rc::clone(&mem)),
            mem,
            namespaces: BTreeMap::new(),
            next_nsid: 1,
            qpairs: Vec::new(),
            inflight: BTreeMap::new(),
            next_req: 0x4E56_0000_0000,
            cmd_cost: SimDuration::from_nanos(250),
            pending_misses: Vec::new(),
        }
    }

    /// The underlying device (statistics, store inspection).
    pub fn device(&self) -> &NescDevice {
        &self.dev
    }

    /// Admin: creates a namespace over the extent tree at `root`.
    ///
    /// # Errors
    ///
    /// [`NvmeError::VfExhausted`] when the device's VF table is full.
    pub fn create_namespace(&mut self, root: HostAddr, size_blocks: u64) -> Result<u32, NvmeError> {
        let func = self
            .dev
            .create_vf(root, size_blocks)
            .map_err(|_| NvmeError::VfExhausted)?;
        let nsid = self.next_nsid;
        self.next_nsid += 1;
        self.namespaces.insert(
            nsid,
            Namespace {
                nsid,
                func,
                size_blocks,
            },
        );
        Ok(nsid)
    }

    /// Admin: deletes a namespace and its VF.
    ///
    /// # Errors
    ///
    /// [`NvmeError::UnknownNamespace`] for dead or unknown ids.
    pub fn delete_namespace(&mut self, nsid: u32) -> Result<(), NvmeError> {
        let ns = self
            .namespaces
            .remove(&nsid)
            .ok_or(NvmeError::UnknownNamespace { nsid })?;
        self.dev
            .delete_vf(ns.func)
            .map_err(|_| NvmeError::UnknownNamespace { nsid })?;
        Ok(())
    }

    /// Admin: identify — the namespace's descriptor.
    pub fn identify(&self, nsid: u32) -> Option<Namespace> {
        self.namespaces.get(&nsid).copied()
    }

    /// Admin: creates an I/O queue pair of `entries` slots; returns its id.
    pub fn create_queue_pair(&mut self, entries: u16) -> u16 {
        let mut mem = self.mem.borrow_mut();
        let qp = QueuePair {
            sq: SubmissionQueue::new(&mut mem, entries),
            cq: CompletionQueue::new(&mut mem, entries),
        };
        drop(mem);
        self.qpairs.push(qp);
        (self.qpairs.len() - 1) as u16
    }

    /// Telemetry probe: the instantaneous `(SQ depth, CQ depth)` of a
    /// queue pair — commands the driver has pushed but the controller has
    /// not consumed, and completions posted but not yet reaped.
    pub fn queue_depths(&self, qid: u16) -> Option<(u16, u16)> {
        let qp = self.qpairs.get(qid as usize)?;
        Some((qp.sq.len(), qp.cq.len()))
    }

    /// Driver side: pushes one encoded command into a queue (no doorbell
    /// yet — batch then ring, like a real driver).
    ///
    /// # Errors
    ///
    /// [`NvmeError::UnknownQueue`] / [`NvmeError::Full`].
    pub fn push(&mut self, qid: u16, sqe: SubmissionEntry) -> Result<(), NvmeError> {
        let qp = self
            .qpairs
            .get_mut(qid as usize)
            .ok_or(NvmeError::UnknownQueue { qid })?;
        qp.sq.push(&mut self.mem.borrow_mut(), sqe)?;
        Ok(())
    }

    /// Rings the submission doorbell at `now`: the controller consumes all
    /// pending SQEs, validates them, and dispatches block requests.
    ///
    /// # Errors
    ///
    /// [`NvmeError::UnknownQueue`].
    pub fn ring_doorbell(&mut self, qid: u16, now: SimTime) -> Result<(), NvmeError> {
        if qid as usize >= self.qpairs.len() {
            return Err(NvmeError::UnknownQueue { qid });
        }
        let arrival = self.dev.ring_doorbell(now);
        let mut t = arrival;
        loop {
            let (sqe, sq_head) = {
                let qp = &mut self.qpairs[qid as usize];
                let mem = self.mem.borrow();
                match qp.sq.pop(&mem) {
                    Some(s) => (s, qp.sq.head()),
                    None => break,
                }
            };
            t += self.cmd_cost;
            self.dispatch(qid, sqe, sq_head, t);
        }
        Ok(())
    }

    fn post_now(&mut self, qid: u16, cid: u16, sq_head: u16, status: NvmeStatus) {
        let qp = &mut self.qpairs[qid as usize];
        qp.cq.post(
            &mut self.mem.borrow_mut(),
            CompletionEntry {
                sq_head,
                cid,
                status,
                phase: false,
            },
        );
    }

    fn dispatch(&mut self, qid: u16, sqe: SubmissionEntry, sq_head: u16, t: SimTime) {
        // The cid only flows back into the completion entry (total
        // validation); the nsid is a lookup key that fails closed.
        let cid = validate_cid(sqe.cid);
        let Some(ns) = self.namespaces.get(&sqe.nsid()).copied() else {
            self.post_now(qid, cid, sq_head, NvmeStatus::InvalidNamespace);
            return;
        };
        match sqe.opcode {
            NvmeOpcode::Flush => {
                // Completes once prior writes to the namespace are durable;
                // with the in-order pump this is immediate at reap time.
                self.post_now(qid, cid, sq_head, NvmeStatus::Success);
            }
            NvmeOpcode::Read | NvmeOpcode::Write => {
                // Wire-decoded SLBA/NLB are untrusted until the bounds
                // proofs release them; validate_slba's checked add also
                // rejects ranges that wrap the address space.
                let Ok(blocks) = validate_nlb(sqe.nlb, ns.size_blocks) else {
                    self.post_now(qid, cid, sq_head, NvmeStatus::LbaOutOfRange);
                    return;
                };
                let Ok(slba) = validate_slba(sqe.slba, blocks, ns.size_blocks) else {
                    self.post_now(qid, cid, sq_head, NvmeStatus::LbaOutOfRange);
                    return;
                };
                let op = if sqe.opcode == NvmeOpcode::Read {
                    BlockOp::Read
                } else {
                    BlockOp::Write
                };
                self.next_req += 1;
                let id = RequestId(self.next_req);
                self.inflight.insert(id, (qid, cid, sq_head));
                self.dev.submit(
                    t,
                    ns.func,
                    BlockRequest::new(id, op, slba, blocks),
                    sqe.prp1,
                );
            }
        }
    }

    /// Advances the device and posts CQEs for everything that completed by
    /// `until`. Returns `(entry, completion time, qid)` triples in
    /// completion order. Host interrupts (translation misses) are *not*
    /// handled here — the embedding hypervisor resolves them through the
    /// device, exactly as for raw NeSC VFs; thin namespaces therefore need
    /// the same miss handler.
    pub fn process(&mut self, until: SimTime) -> Vec<(CompletionEntry, SimTime, u16)> {
        let mut posted = Vec::new();
        for out in self.dev.advance(until) {
            if let NescOutput::HostInterrupt { at, func, reason } = out {
                // Thin namespace: surface the miss for the hypervisor to
                // resolve via resolve_miss().
                if let Some(ns) = self.namespaces.values().find(|n| n.func == func) {
                    self.pending_misses.push((ns.nsid, reason, at));
                }
                continue;
            }
            if let NescOutput::Completion { at, id, status, .. } = out {
                if let Some((qid, cid, sq_head)) = self.inflight.remove(&id) {
                    let st = match status {
                        CompletionStatus::Ok => NvmeStatus::Success,
                        CompletionStatus::OutOfRange => NvmeStatus::LbaOutOfRange,
                        CompletionStatus::WriteFailed => NvmeStatus::CapacityExceeded,
                        CompletionStatus::DeviceError => NvmeStatus::InternalError,
                    };
                    self.post_now(qid, cid, sq_head, st);
                    let entry = CompletionEntry {
                        sq_head,
                        cid,
                        status: st,
                        phase: false,
                    };
                    posted.push((entry, at, qid));
                }
            }
        }
        posted
    }

    /// Translation misses awaiting hypervisor resolution (thin
    /// namespaces hit these exactly like raw NeSC VFs).
    pub fn pending_misses(&self) -> &[(u32, IrqReason, SimTime)] {
        &self.pending_misses
    }

    /// Hypervisor side: resolves a namespace's pending miss after
    /// allocating backing blocks — installs the rebuilt tree root, flushes
    /// the VF's cached translations, and signals `RewalkTree`.
    ///
    /// # Errors
    ///
    /// [`NvmeError::UnknownNamespace`].
    pub fn resolve_miss(
        &mut self,
        nsid: u32,
        new_root: HostAddr,
        now: SimTime,
    ) -> Result<(), NvmeError> {
        let ns = self
            .namespaces
            .get(&nsid)
            .copied()
            .ok_or(NvmeError::UnknownNamespace { nsid })?;
        self.dev
            .set_tree_root(ns.func, new_root)
            .map_err(|_| NvmeError::UnknownNamespace { nsid })?;
        self.dev
            .mmio_write(ns.func, nesc_core::regs::offsets::REWALK_TREE, 1, now);
        self.pending_misses.retain(|&(n, _, _)| n != nsid);
        Ok(())
    }

    /// Driver side: reaps one completion from a queue's CQ.
    pub fn reap(&mut self, qid: u16) -> Option<CompletionEntry> {
        let qp = self.qpairs.get_mut(qid as usize)?;
        qp.cq.reap(&self.mem.borrow())
    }

    /// Convenience: push a batch, ring the doorbell, process to idle, and
    /// reap every completion. Returns `(entry, time)` pairs.
    ///
    /// # Errors
    ///
    /// Queue/namespace errors from the submission side.
    pub fn submit_and_process(
        &mut self,
        now: SimTime,
        qid: u16,
        entries: &[SubmissionEntry],
    ) -> Result<Vec<(CompletionEntry, SimTime)>, NvmeError> {
        for &sqe in entries {
            self.push(qid, sqe)?;
        }
        self.ring_doorbell(qid, now)?;
        let horizon = SimTime::from_nanos(u64::MAX / 4);
        let done = self.process(horizon);
        let mut out = Vec::new();
        // Reap from the CQ (validates ring contents match what we posted).
        while let Some(cqe) = self.reap(qid) {
            let t = done
                .iter()
                .find(|(e, _, q)| *q == qid && e.cid == cqe.cid)
                .map(|&(_, t, _)| t)
                .unwrap_or(now);
            out.push((cqe, t));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_extent::{ExtentMapping, ExtentTree, Plba, Vlba};

    fn setup() -> (Rc<RefCell<HostMemory>>, NvmeController, u32, u16) {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 8192;
        let mut ctrl = NvmeController::new(cfg, Rc::clone(&mem));
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(100), 64)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let ns = ctrl.create_namespace(root, 64).unwrap();
        let qid = ctrl.create_queue_pair(8);
        (mem, ctrl, ns, qid)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (mem, mut ctrl, ns, qid) = setup();
        let wbuf = mem.borrow_mut().alloc(4096, 4096);
        mem.borrow_mut().write(wbuf, &[0xBE; 4096]);
        let done = ctrl
            .submit_and_process(
                SimTime::ZERO,
                qid,
                &[SubmissionEntry::new(
                    NvmeOpcode::Write,
                    1,
                    ns,
                    wbuf,
                    Vlba(8),
                    3,
                )],
            )
            .unwrap();
        assert_eq!(done.len(), 1);
        assert!(done[0].0.status.is_success());
        assert!(done[0].1 > SimTime::ZERO);

        let rbuf = mem.borrow_mut().alloc(4096, 4096);
        let done = ctrl
            .submit_and_process(
                done[0].1,
                qid,
                &[SubmissionEntry::new(
                    NvmeOpcode::Read,
                    2,
                    ns,
                    rbuf,
                    Vlba(8),
                    3,
                )],
            )
            .unwrap();
        assert!(done[0].0.status.is_success());
        assert_eq!(mem.borrow().read_vec(rbuf, 4096), vec![0xBE; 4096]);
    }

    #[test]
    fn unknown_namespace_and_range_errors() {
        let (mem, mut ctrl, ns, qid) = setup();
        let buf = mem.borrow_mut().alloc(1024, 4096);
        let done = ctrl
            .submit_and_process(
                SimTime::ZERO,
                qid,
                &[
                    SubmissionEntry::new(NvmeOpcode::Read, 1, 99, buf, Vlba(0), 0),
                    // two blocks: 63,64 — past the 64-block ns
                    SubmissionEntry::new(NvmeOpcode::Read, 2, ns, buf, Vlba(63), 1),
                ],
            )
            .unwrap();
        let by_cid = |c: u16| done.iter().find(|(e, _)| e.cid == c).unwrap().0.status;
        assert_eq!(by_cid(1), NvmeStatus::InvalidNamespace);
        assert_eq!(by_cid(2), NvmeStatus::LbaOutOfRange);
    }

    #[test]
    fn flush_completes() {
        let (_mem, mut ctrl, ns, qid) = setup();
        let done = ctrl
            .submit_and_process(
                SimTime::ZERO,
                qid,
                &[SubmissionEntry::new(
                    NvmeOpcode::Flush,
                    5,
                    ns,
                    0,
                    Vlba(0),
                    0,
                )],
            )
            .unwrap();
        assert_eq!(done[0].0.cid, 5);
        assert!(done[0].0.status.is_success());
    }

    #[test]
    fn namespaces_are_isolated_files() {
        let (mem, mut ctrl, ns_a, qid) = setup();
        // Second namespace over different physical blocks.
        let tree: ExtentTree = [ExtentMapping::new(Vlba(0), Plba(500), 64)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        let ns_b = ctrl.create_namespace(root, 64).unwrap();
        let buf = mem.borrow_mut().alloc(1024, 4096);
        mem.borrow_mut().write(buf, &[0xA0; 1024]);
        ctrl.submit_and_process(
            SimTime::ZERO,
            qid,
            &[SubmissionEntry::new(
                NvmeOpcode::Write,
                1,
                ns_a,
                buf,
                Vlba(0),
                0,
            )],
        )
        .unwrap();
        mem.borrow_mut().write(buf, &[0xB0; 1024]);
        ctrl.submit_and_process(
            SimTime::from_nanos(1_000_000),
            qid,
            &[SubmissionEntry::new(
                NvmeOpcode::Write,
                2,
                ns_b,
                buf,
                Vlba(0),
                0,
            )],
        )
        .unwrap();
        assert_eq!(
            ctrl.device().store().read_block(Plba(100)).unwrap(),
            vec![0xA0; 1024]
        );
        assert_eq!(
            ctrl.device().store().read_block(Plba(500)).unwrap(),
            vec![0xB0; 1024]
        );
    }

    #[test]
    fn namespace_lifecycle() {
        let (mem, mut ctrl, ns, qid) = setup();
        assert!(ctrl.identify(ns).is_some());
        ctrl.delete_namespace(ns).unwrap();
        assert!(ctrl.identify(ns).is_none());
        assert_eq!(
            ctrl.delete_namespace(ns),
            Err(NvmeError::UnknownNamespace { nsid: ns })
        );
        // Commands to a deleted namespace fail cleanly.
        let buf = mem.borrow_mut().alloc(1024, 4096);
        let done = ctrl
            .submit_and_process(
                SimTime::ZERO,
                qid,
                &[SubmissionEntry::new(
                    NvmeOpcode::Read,
                    1,
                    ns,
                    buf,
                    Vlba(0),
                    0,
                )],
            )
            .unwrap();
        assert_eq!(done[0].0.status, NvmeStatus::InvalidNamespace);
    }

    #[test]
    fn thin_namespace_miss_resolves_via_hypervisor() {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 8192;
        let mut ctrl = NvmeController::new(cfg, Rc::clone(&mem));
        let empty = ExtentTree::new().serialize(&mut mem.borrow_mut());
        let ns = ctrl.create_namespace(empty, 64).unwrap();
        let qid = ctrl.create_queue_pair(8);
        let buf = mem.borrow_mut().alloc(1024, 4096);
        mem.borrow_mut().write(buf, &[0x7E; 1024]);
        ctrl.push(
            qid,
            SubmissionEntry::new(NvmeOpcode::Write, 9, ns, buf, Vlba(4), 0),
        )
        .unwrap();
        ctrl.ring_doorbell(qid, SimTime::ZERO).unwrap();
        let horizon = SimTime::from_nanos(u64::MAX / 4);
        assert!(ctrl.process(horizon).is_empty(), "stalled on the miss");
        let (miss_ns, _, at) = ctrl.pending_misses()[0];
        assert_eq!(miss_ns, ns);
        // "Hypervisor" allocates pLBA 700 for vLBA 4 and resolves.
        let tree: ExtentTree = [ExtentMapping::new(Vlba(4), Plba(700), 1)]
            .into_iter()
            .collect();
        let root = tree.serialize(&mut mem.borrow_mut());
        ctrl.resolve_miss(ns, root, at + SimDuration::from_micros(15))
            .unwrap();
        let done = ctrl.process(horizon);
        assert_eq!(done.len(), 1);
        assert!(done[0].0.status.is_success());
        assert_eq!(
            ctrl.device().store().read_block(Plba(700)).unwrap(),
            vec![0x7E; 1024]
        );
        assert!(ctrl.pending_misses().is_empty());
    }

    #[test]
    fn queue_depth_probes_feed_a_sampler() {
        use nesc_sim::{Sampler, SeriesKind};

        let (mem, mut ctrl, ns, qid) = setup();
        let mut sampler = Sampler::new(SimDuration::from_micros(10), 16);
        let sq = sampler.register("nvme.sq_depth.q0", "entries", SeriesKind::Gauge);
        let cq = sampler.register("nvme.cq_depth.q0", "entries", SeriesKind::Gauge);
        let poll = |sampler: &mut Sampler, ctrl: &NvmeController, now: SimTime| {
            while sampler.due(now).is_some() {
                let (s, c) = ctrl.queue_depths(qid).unwrap();
                sampler.sample(sq, s as u64);
                sampler.sample(cq, c as u64);
            }
        };
        let t = |us: u64| SimTime::ZERO + SimDuration::from_micros(us);
        let buf = mem.borrow_mut().alloc(1024, 4096);
        // Window 0: the driver batches four commands, doorbell unrung.
        for cid in 0..4 {
            ctrl.push(
                qid,
                SubmissionEntry::new(NvmeOpcode::Read, cid, ns, buf, Vlba(cid as u64), 0),
            )
            .unwrap();
        }
        poll(&mut sampler, &ctrl, t(10));
        // Window 1: doorbell rung, device drained, completions posted.
        ctrl.ring_doorbell(qid, t(10)).unwrap();
        ctrl.process(SimTime::from_nanos(u64::MAX / 4));
        poll(&mut sampler, &ctrl, t(20));
        // Window 2: the driver reaps everything.
        while ctrl.reap(qid).is_some() {}
        poll(&mut sampler, &ctrl, t(30));
        let depths = |name: &str| {
            sampler
                .series_by_name(name)
                .unwrap()
                .samples()
                .map(|(_, v)| v)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            depths("nvme.sq_depth.q0"),
            vec![4, 0, 0],
            "SQ fills then drains"
        );
        assert_eq!(
            depths("nvme.cq_depth.q0"),
            vec![0, 4, 0],
            "CQ fills after dispatch, empties on reap"
        );
    }

    #[test]
    fn queue_full_surfaces() {
        let (mem, mut ctrl, ns, _) = setup();
        let qid = ctrl.create_queue_pair(2); // capacity 1
        let buf = mem.borrow_mut().alloc(1024, 4096);
        let sqe = SubmissionEntry::new(NvmeOpcode::Read, 1, ns, buf, Vlba(0), 0);
        ctrl.push(qid, sqe).unwrap();
        assert!(matches!(ctrl.push(qid, sqe), Err(NvmeError::Full(_))));
        assert!(matches!(
            ctrl.push(77, sqe),
            Err(NvmeError::UnknownQueue { qid: 77 })
        ));
    }
}
