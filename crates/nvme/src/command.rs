//! Command and completion encodings.
//!
//! Entries are encoded to/from real bytes in host memory at NVMe's sizes
//! (64-byte submission entries, 16-byte completion entries) with the key
//! fields at their spec offsets:
//!
//! ```text
//! SQE: [0]     opcode          CQE: [0..4]   command-specific
//!      [2..4]  command id            [8..10]  SQ head
//!      [4..8]  namespace id          [12..14] command id
//!      [24..32] PRP1 (data)          [14..16] status | phase (bit 0)
//!      [40..48] SLBA
//!      [48..52] NLB (0-based)
//! ```

use nesc_extent::{Untrusted, Vlba};
use nesc_pcie::HostAddr;

/// Supported opcodes (NVM command set subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeOpcode {
    /// `Flush` (0x00) — a barrier; completes once prior writes are durable.
    Flush,
    /// `Write` (0x01).
    Write,
    /// `Read` (0x02).
    Read,
}

impl NvmeOpcode {
    /// The wire opcode byte.
    pub fn byte(self) -> u8 {
        match self {
            NvmeOpcode::Flush => 0x00,
            NvmeOpcode::Write => 0x01,
            NvmeOpcode::Read => 0x02,
        }
    }

    /// Decodes a wire opcode.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x00 => Some(NvmeOpcode::Flush),
            0x01 => Some(NvmeOpcode::Write),
            0x02 => Some(NvmeOpcode::Read),
            _ => None,
        }
    }
}

/// Completion status codes (generic command set subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeStatus {
    /// Successful completion.
    Success,
    /// Invalid namespace or format.
    InvalidNamespace,
    /// LBA out of range.
    LbaOutOfRange,
    /// Invalid opcode field.
    InvalidOpcode,
    /// Capacity exceeded (thin-provisioned namespace could not allocate).
    CapacityExceeded,
    /// Internal device error.
    InternalError,
}

impl NvmeStatus {
    /// Status-field code (SC) value.
    pub fn code(self) -> u16 {
        match self {
            NvmeStatus::Success => 0x00,
            NvmeStatus::InvalidOpcode => 0x01,
            NvmeStatus::InvalidNamespace => 0x0B,
            NvmeStatus::LbaOutOfRange => 0x80,
            NvmeStatus::CapacityExceeded => 0x81,
            NvmeStatus::InternalError => 0x06,
        }
    }

    /// Decodes a status code.
    pub fn from_code(c: u16) -> Option<Self> {
        match c {
            0x00 => Some(NvmeStatus::Success),
            0x01 => Some(NvmeStatus::InvalidOpcode),
            0x0B => Some(NvmeStatus::InvalidNamespace),
            0x80 => Some(NvmeStatus::LbaOutOfRange),
            0x81 => Some(NvmeStatus::CapacityExceeded),
            0x06 => Some(NvmeStatus::InternalError),
            _ => None,
        }
    }

    /// Whether the command succeeded.
    pub fn is_success(self) -> bool {
        self == NvmeStatus::Success
    }
}

/// Size of a submission entry.
pub const SQE_BYTES: u64 = 64;
/// Size of a completion entry.
pub const CQE_BYTES: u64 = 16;

/// One submission-queue entry.
///
/// Every field the guest controls arrives quarantined in
/// [`Untrusted`]: the controller's dispatch path must run it through a
/// `nesc_extent::validate_*` bounds proof before it can drive an extent
/// walk or a DMA transfer. `prp1` stays a bare [`HostAddr`] — buffer
/// pointers are policed by the DMA layer's address-space checks, not
/// the block-address validators.
// nesc-lint: guest-input
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmissionEntry {
    /// Command opcode.
    pub opcode: NvmeOpcode,
    /// Command identifier, echoed in the completion.
    pub cid: Untrusted<u16>,
    /// Target namespace (1-based, NVMe convention).
    pub nsid: Untrusted<u32>,
    /// Data buffer (PRP1) in host memory.
    pub prp1: HostAddr,
    /// Starting logical block (in the namespace's 1 KiB blocks). A
    /// namespace is a guest-visible virtual disk, so the address is
    /// virtual by construction — and unproven until validated.
    pub slba: Untrusted<Vlba>,
    /// Number of logical blocks, **0-based** per the NVMe convention
    /// (`0` means one block).
    pub nlb: Untrusted<u32>,
}

impl SubmissionEntry {
    /// Builds an entry from trusted host-side values (drivers, tests,
    /// benches), quarantining them exactly as a wire decode would.
    pub fn new(
        opcode: NvmeOpcode,
        cid: u16,
        nsid: u32,
        prp1: HostAddr,
        slba: Vlba,
        nlb: u32,
    ) -> Self {
        SubmissionEntry {
            opcode,
            cid: Untrusted::new(cid),
            nsid: Untrusted::new(nsid),
            prp1,
            slba: Untrusted::new(slba),
            nlb: Untrusted::new(nlb),
        }
    }

    /// The target namespace id. Releasing it raw is a *total*
    /// validation: the value is only ever used as a lookup key, and an
    /// unknown nsid fails closed with `InvalidNamespace`.
    pub fn nsid(&self) -> u32 {
        self.nsid.into_unchecked()
    }

    /// Number of blocks (1-based), for sizing host-side buffers. The
    /// device-side bound check happens in dispatch via `validate_nlb`.
    pub fn blocks(&self) -> u64 {
        self.nlb.into_unchecked() as u64 + 1
    }

    /// Encodes into the 64-byte wire form.
    pub fn encode(&self) -> [u8; SQE_BYTES as usize] {
        let mut b = [0u8; SQE_BYTES as usize];
        b[0] = self.opcode.byte();
        b[2..4].copy_from_slice(&self.cid.into_unchecked().to_le_bytes());
        b[4..8].copy_from_slice(&self.nsid.into_unchecked().to_le_bytes());
        b[24..32].copy_from_slice(&self.prp1.to_le_bytes());
        b[40..48].copy_from_slice(&self.slba.into_unchecked().0.to_le_bytes());
        b[48..52].copy_from_slice(&self.nlb.into_unchecked().to_le_bytes());
        b
    }

    /// Decodes the wire form; `None` for unknown opcodes.
    // nesc-lint: guest-input
    pub fn decode(b: &[u8; SQE_BYTES as usize]) -> Option<SubmissionEntry> {
        let le32 = |off: usize| {
            b.get(off..off + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
        };
        let le64 = |off: usize| {
            b.get(off..off + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
        };
        Some(SubmissionEntry {
            opcode: NvmeOpcode::from_byte(b[0])?,
            cid: Untrusted::new(u16::from_le_bytes([b[2], b[3]])),
            nsid: Untrusted::new(le32(4)?),
            prp1: le64(24)?,
            slba: Untrusted::new(Vlba(le64(40)?)),
            nlb: Untrusted::new(le32(48)?),
        })
    }
}

/// One completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionEntry {
    /// Submission-queue head pointer at completion time.
    pub sq_head: u16,
    /// The completed command's identifier.
    pub cid: u16,
    /// Completion status.
    pub status: NvmeStatus,
    /// Phase tag — flips each time the queue wraps; the driver detects
    /// new entries by watching it.
    pub phase: bool,
}

impl CompletionEntry {
    /// Encodes into the 16-byte wire form.
    pub fn encode(&self) -> [u8; CQE_BYTES as usize] {
        let mut b = [0u8; CQE_BYTES as usize];
        b[8..10].copy_from_slice(&self.sq_head.to_le_bytes());
        b[12..14].copy_from_slice(&self.cid.to_le_bytes());
        let sf: u16 = (self.status.code() << 1) | self.phase as u16;
        b[14..16].copy_from_slice(&sf.to_le_bytes());
        b
    }

    /// Decodes the wire form; `None` for unknown status codes.
    pub fn decode(b: &[u8; CQE_BYTES as usize]) -> Option<Self> {
        let sf = u16::from_le_bytes([b[14], b[15]]);
        Some(CompletionEntry {
            sq_head: u16::from_le_bytes([b[8], b[9]]),
            cid: u16::from_le_bytes([b[12], b[13]]),
            status: NvmeStatus::from_code(sf >> 1)?,
            phase: sf & 1 == 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn opcode_roundtrip() {
        for op in [NvmeOpcode::Flush, NvmeOpcode::Write, NvmeOpcode::Read] {
            assert_eq!(NvmeOpcode::from_byte(op.byte()), Some(op));
        }
        assert_eq!(NvmeOpcode::from_byte(0x99), None);
    }

    #[test]
    fn status_roundtrip() {
        for st in [
            NvmeStatus::Success,
            NvmeStatus::InvalidNamespace,
            NvmeStatus::LbaOutOfRange,
            NvmeStatus::InvalidOpcode,
            NvmeStatus::CapacityExceeded,
            NvmeStatus::InternalError,
        ] {
            assert_eq!(NvmeStatus::from_code(st.code()), Some(st));
        }
        assert!(NvmeStatus::Success.is_success());
        assert!(!NvmeStatus::InternalError.is_success());
    }

    #[test]
    fn nlb_is_zero_based() {
        let sqe = SubmissionEntry::new(NvmeOpcode::Read, 1, 1, 0, Vlba(0), 0);
        assert_eq!(sqe.blocks(), 1);
    }

    proptest! {
        #[test]
        fn prop_sqe_roundtrip(
            cid in any::<u16>(),
            nsid in 1u32..1000,
            prp1 in any::<u64>(),
            slba in any::<u64>(),
            nlb in any::<u32>(),
            op in 0u8..3,
        ) {
            let sqe = SubmissionEntry::new(
                NvmeOpcode::from_byte(op).unwrap(),
                cid,
                nsid,
                prp1,
                Vlba(slba),
                nlb,
            );
            prop_assert_eq!(SubmissionEntry::decode(&sqe.encode()), Some(sqe));
        }

        #[test]
        fn prop_cqe_roundtrip(sq_head in any::<u16>(), cid in any::<u16>(), phase in any::<bool>()) {
            for status in [NvmeStatus::Success, NvmeStatus::LbaOutOfRange] {
                let cqe = CompletionEntry { sq_head, cid, status, phase };
                prop_assert_eq!(CompletionEntry::decode(&cqe.encode()), Some(cqe));
            }
        }
    }
}
