#![warn(missing_docs)]

//! NVMe-style queue pairs over NeSC.
//!
//! The paper argues (§III) that NVMe "defines an abstract concept of
//! address spaces through which applications and VMs can access subsets
//! of the target storage device", but "does not specify how address
//! spaces are defined, how they are maintained, and what they represent
//! — NeSC therefore complements the abstract NVMe address spaces and
//! enables the protocol to support protected, self-virtualizing storage
//! devices."
//!
//! This crate makes that composition concrete: an NVMe-flavoured command
//! interface where **each namespace is a NeSC virtual function** — i.e. a
//! file of the hypervisor's filesystem, isolated by the hardware-walked
//! extent tree. The queue mechanics are real: submission and completion
//! rings live in host memory as encoded bytes ([`SubmissionQueue`] /
//! [`CompletionQueue`], 64-byte SQEs, 16-byte CQEs with a phase bit), the
//! driver rings a doorbell, and the controller decodes commands, pushes
//! them through the underlying [`NescDevice`](nesc_core::NescDevice), and
//! posts completions.
//!
//! The layout follows NVMe's structure (opcode/CID/NSID/PRP/SLBA/NLB
//! fields at their customary offsets) but is deliberately a *subset*: one
//! PRP data pointer (contiguous buffers), no SGLs, no interrupts
//! coalescing — enough to demonstrate the composition and test the
//! protocol invariants (phase-bit wraparound, queue-full behaviour,
//! per-namespace isolation).

pub mod command;
pub mod controller;
pub mod queue;

pub use command::{CompletionEntry, NvmeOpcode, NvmeStatus, SubmissionEntry};
pub use controller::{Namespace, NvmeController, NvmeError};
pub use queue::{CompletionQueue, QueueFull, SubmissionQueue};
