//! Submission/completion rings in host memory.
//!
//! The rings hold *encoded bytes* in [`HostMemory`] — the same memory the
//! device DMAs — and the two sides keep only their own indices, exactly
//! like a real driver/controller pair:
//!
//! * the **driver** owns the SQ tail (writes entries, rings the doorbell)
//!   and the CQ head (consumes completions, watching the phase bit);
//! * the **controller** owns the SQ head (consumes commands) and the CQ
//!   tail + phase (produces completions).

use nesc_pcie::{HostAddr, HostMemory};

use crate::command::{CompletionEntry, SubmissionEntry, CQE_BYTES, SQE_BYTES};

/// Error returned when a ring has no free slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The ring's entry count.
    pub entries: u16,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue full ({} entries)", self.entries)
    }
}

impl std::error::Error for QueueFull {}

/// A submission ring.
///
/// # Example
///
/// ```
/// use nesc_nvme::{SubmissionQueue, SubmissionEntry, NvmeOpcode};
/// use nesc_extent::Vlba;
/// use nesc_pcie::HostMemory;
///
/// let mut mem = HostMemory::new();
/// let mut sq = SubmissionQueue::new(&mut mem, 4);
/// let sqe = SubmissionEntry::new(NvmeOpcode::Read, 7, 1, 0x9000, Vlba(0), 3);
/// sq.push(&mut mem, sqe).unwrap();
/// // Controller side:
/// assert_eq!(sq.pop(&mem), Some(sqe));
/// assert_eq!(sq.pop(&mem), None);
/// ```
#[derive(Debug)]
pub struct SubmissionQueue {
    base: HostAddr,
    entries: u16,
    /// Driver-owned producer index.
    tail: u16,
    /// Controller-owned consumer index.
    head: u16,
}

impl SubmissionQueue {
    /// Allocates a ring of `entries` slots in host memory.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two ≥ 2 (NVMe requires at
    /// least 2 entries; powers of two keep the arithmetic honest).
    pub fn new(mem: &mut HostMemory, entries: u16) -> Self {
        assert!(entries >= 2 && entries.is_power_of_two(), "ring size");
        let base = mem.alloc(entries as u64 * SQE_BYTES, 4096);
        SubmissionQueue {
            base,
            entries,
            tail: 0,
            head: 0,
        }
    }

    /// Ring capacity (one slot is kept empty to distinguish full from
    /// empty, per the spec).
    pub fn capacity(&self) -> u16 {
        self.entries - 1
    }

    /// Entries waiting to be consumed.
    pub fn len(&self) -> u16 {
        self.tail.wrapping_sub(self.head) % self.entries
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Driver: writes an entry at the tail and advances it. The caller
    /// still has to ring the controller's doorbell with [`tail`](Self::tail).
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when the ring has no free slot.
    pub fn push(&mut self, mem: &mut HostMemory, sqe: SubmissionEntry) -> Result<u16, QueueFull> {
        if self.len() == self.capacity() {
            return Err(QueueFull {
                entries: self.entries,
            });
        }
        let slot = self.tail % self.entries;
        mem.write(self.base + slot as u64 * SQE_BYTES, &sqe.encode());
        self.tail = self.tail.wrapping_add(1) % self.entries;
        Ok(self.tail)
    }

    /// Controller: consumes the entry at the head, if any. Malformed
    /// entries (unknown opcode) are consumed and returned as `None` by
    /// [`pop_raw`](Self::pop_raw); this convenience skips them.
    pub fn pop(&mut self, mem: &HostMemory) -> Option<SubmissionEntry> {
        while !self.is_empty() {
            if let Some(sqe) = self.pop_raw(mem) {
                return Some(sqe);
            }
        }
        None
    }

    /// Controller: consumes one slot; `None` if it failed to decode.
    pub fn pop_raw(&mut self, mem: &HostMemory) -> Option<SubmissionEntry> {
        if self.is_empty() {
            return None;
        }
        let slot = self.head % self.entries;
        let mut buf = [0u8; SQE_BYTES as usize];
        mem.read(self.base + slot as u64 * SQE_BYTES, &mut buf);
        self.head = self.head.wrapping_add(1) % self.entries;
        SubmissionEntry::decode(&buf)
    }

    /// Current head (reported back in completions).
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Current tail (the doorbell value).
    pub fn tail(&self) -> u16 {
        self.tail
    }
}

/// A completion ring with phase-bit semantics.
#[derive(Debug)]
pub struct CompletionQueue {
    base: HostAddr,
    entries: u16,
    /// Controller-owned producer index.
    tail: u16,
    /// Controller's current phase tag.
    phase: bool,
    /// Driver-owned consumer index.
    head: u16,
    /// Driver's expected phase tag.
    driver_phase: bool,
}

impl CompletionQueue {
    /// Allocates a ring of `entries` slots in host memory.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two ≥ 2.
    pub fn new(mem: &mut HostMemory, entries: u16) -> Self {
        assert!(entries >= 2 && entries.is_power_of_two(), "ring size");
        let base = mem.alloc(entries as u64 * CQE_BYTES, 4096);
        CompletionQueue {
            base,
            entries,
            tail: 0,
            phase: true, // first pass posts with phase=1; ring starts zeroed
            head: 0,
            driver_phase: true,
        }
    }

    /// Controller: posts a completion at the tail, stamping the current
    /// phase, and advances (flipping phase on wrap). Completion queues
    /// cannot overflow in this model because the submission ring bounds
    /// outstanding commands.
    pub fn post(&mut self, mem: &mut HostMemory, mut cqe: CompletionEntry) {
        cqe.phase = self.phase;
        let slot = self.tail % self.entries;
        mem.write(self.base + slot as u64 * CQE_BYTES, &cqe.encode());
        self.tail = self.tail.wrapping_add(1) % self.entries;
        if self.tail == 0 {
            self.phase = !self.phase;
        }
    }

    /// Completions the controller has posted but the driver has not yet
    /// reaped.
    pub fn len(&self) -> u16 {
        self.tail.wrapping_sub(self.head) % self.entries
    }

    /// Whether no completions are waiting to be reaped.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Driver: reaps the next completion if its phase tag matches the
    /// expected phase (i.e. the controller has produced it).
    pub fn reap(&mut self, mem: &HostMemory) -> Option<CompletionEntry> {
        let slot = self.head % self.entries;
        let mut buf = [0u8; CQE_BYTES as usize];
        mem.read(self.base + slot as u64 * CQE_BYTES, &mut buf);
        let cqe = CompletionEntry::decode(&buf)?;
        if cqe.phase != self.driver_phase {
            return None; // not produced yet
        }
        self.head = self.head.wrapping_add(1) % self.entries;
        if self.head == 0 {
            self.driver_phase = !self.driver_phase;
        }
        Some(cqe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{NvmeOpcode, NvmeStatus};
    use nesc_extent::{Untrusted, Vlba};

    fn sqe(cid: u16) -> SubmissionEntry {
        SubmissionEntry::new(NvmeOpcode::Write, cid, 1, 0x4000, Vlba(cid as u64), 0)
    }

    #[test]
    fn sq_fifo_and_full() {
        let mut mem = HostMemory::new();
        let mut sq = SubmissionQueue::new(&mut mem, 4);
        assert_eq!(sq.capacity(), 3);
        for i in 0..3 {
            sq.push(&mut mem, sqe(i)).unwrap();
        }
        assert_eq!(sq.push(&mut mem, sqe(9)), Err(QueueFull { entries: 4 }));
        for i in 0..3 {
            assert_eq!(sq.pop(&mem).unwrap().cid, Untrusted::new(i));
        }
        assert!(sq.pop(&mem).is_none());
        // Freed slots are reusable across the wrap.
        for i in 10..13 {
            sq.push(&mut mem, sqe(i)).unwrap();
        }
        assert_eq!(sq.len(), 3);
    }

    #[test]
    fn cq_phase_wraparound() {
        let mut mem = HostMemory::new();
        let mut cq = CompletionQueue::new(&mut mem, 4);
        // Two full passes over the ring: phase flips keep reaping correct.
        for round in 0..2 {
            for i in 0..4u16 {
                cq.post(
                    &mut mem,
                    CompletionEntry {
                        sq_head: 0,
                        cid: round * 10 + i,
                        status: NvmeStatus::Success,
                        phase: false, // overwritten by post()
                    },
                );
                let got = cq.reap(&mem).expect("posted entry is visible");
                assert_eq!(got.cid, round * 10 + i);
            }
        }
        // Nothing further to reap: the stale phase blocks re-reading.
        assert!(cq.reap(&mem).is_none());
    }

    #[test]
    fn reap_before_post_sees_nothing() {
        let mut mem = HostMemory::new();
        let mut cq = CompletionQueue::new(&mut mem, 8);
        assert!(cq.reap(&mem).is_none());
    }

    #[test]
    fn malformed_entries_are_skipped() {
        let mut mem = HostMemory::new();
        let mut sq = SubmissionQueue::new(&mut mem, 4);
        sq.push(&mut mem, sqe(1)).unwrap();
        // Corrupt the opcode of the pending entry.
        mem.write(sq.base, &[0xFFu8]);
        sq.push(&mut mem, sqe(2)).unwrap();
        // pop() skips the corrupt entry and yields the good one.
        assert_eq!(sq.pop(&mem).unwrap().cid, Untrusted::new(2));
    }

    #[test]
    #[should_panic(expected = "ring size")]
    fn tiny_ring_rejected() {
        let mut mem = HostMemory::new();
        SubmissionQueue::new(&mut mem, 1);
    }
}
