#![warn(missing_docs)]

//! Hypervisor, guest VMs, and the storage virtualization paths.
//!
//! This crate assembles the full evaluated system of the NeSC paper
//! (Table I): a host whose filesystem lives on the NeSC physical function,
//! guest VMs whose virtual disks are image files on that filesystem, and
//! the four ways a guest (or the host itself) reaches storage that the
//! evaluation compares (Fig. 1):
//!
//! | path | paper name | model |
//! |------|------------|-------|
//! | [`DiskKind::NescDirect`] | NeSC VF direct assignment | guest driver → doorbell → VF; misses handled by the hypervisor's allocate-and-`RewalkTree` interrupt handler |
//! | [`DiskKind::Virtio`] | virtio | virtqueue kick → vmexit → host backend thread → host filesystem mapping → PF |
//! | [`DiskKind::Emulated`] | full device emulation | several trapped MMIO accesses + QEMU device model per request, then the virtio host path |
//! | [`DiskKind::HostRaw`] | Host (baseline) | the hypervisor's own stack straight to the PF |
//!
//! The CPU costs of every software layer are parameters ([`SoftwareCosts`])
//! calibrated so the *relative* behaviour matches the paper's measurements
//! (§VII): NeSC ≈ host, ~6× faster than virtio and ~20× faster than
//! emulation at small blocks, 2.5–3× virtio's bandwidth at 32 KiB, and
//! convergence at multi-megabyte requests.
//!
//! [`System`] exposes synchronous per-request I/O (latency experiments),
//! pipelined streams (bandwidth experiments), and a guest-filesystem layer
//! ([`GuestFilesystem`]) for the filesystem-overhead and application
//! benchmarks.
//!
//! # Facade
//!
//! Construct systems with [`SystemBuilder`] (or `System::builder()`), pull
//! the common names from [`prelude`], and handle failures through the one
//! public [`NescError`] enum:
//!
//! ```
//! use nesc_hypervisor::prelude::*;
//!
//! let mut sys = SystemBuilder::new().tracing(true).build();
//! let disk = sys.quick_disk(DiskKind::NescDirect, "data.img", 1 << 20).disk;
//! let latency = sys.write(disk, 0, &[7u8; 4096]);
//! assert!(latency > SimDuration::ZERO);
//! ```

pub mod builder;
pub mod costs;
pub mod error;
pub mod guestfs;
pub mod system;
pub mod telemetry;
pub mod workload;

pub use builder::SystemBuilder;
pub use costs::SoftwareCosts;
pub use error::NescError;
pub use guestfs::GuestFilesystem;
pub use system::{
    DiskId, DiskKind, OpenRequest, ProvisionedDisk, StreamResult, StreamSpec, System, VmId,
};
pub use telemetry::{Telemetry, TelemetryConfig};
pub use workload::{ScenarioSpec, TenantClass, TenantIo, TenantSpec, Workload, WorkloadReport};

/// One-stop imports for harnesses, examples, and tests.
///
/// Pulls in the facade types (builder, system handles, error enum), the
/// simulation time types, and the observability surface (tracer, spans,
/// metrics) so a typical experiment needs a single `use`.
pub mod prelude {
    pub use crate::builder::SystemBuilder;
    pub use crate::costs::SoftwareCosts;
    pub use crate::error::NescError;
    pub use crate::guestfs::GuestFilesystem;
    pub use crate::system::{
        DiskId, DiskKind, OpenRequest, ProvisionedDisk, StreamResult, StreamSpec, System, VmId,
    };
    pub use crate::telemetry::{Telemetry, TelemetryConfig};
    pub use crate::workload::{
        ScenarioSpec, TenantClass, TenantIo, TenantSpec, Workload, WorkloadReport,
    };
    pub use nesc_core::NescConfig;
    pub use nesc_sim::{
        chrome_trace_json, AnomalyEvent, Exemplar, FlightConfig, FlightEvent, FlightEventKind,
        FlightHandle, Metrics, Sampler, SimDuration, SimTime, SloRule, SloWatchdog, Span, SpanId,
        SpanTree, Tracer,
    };
    pub use nesc_storage::BlockOp;
}
