#![warn(missing_docs)]

//! Hypervisor, guest VMs, and the storage virtualization paths.
//!
//! This crate assembles the full evaluated system of the NeSC paper
//! (Table I): a host whose filesystem lives on the NeSC physical function,
//! guest VMs whose virtual disks are image files on that filesystem, and
//! the four ways a guest (or the host itself) reaches storage that the
//! evaluation compares (Fig. 1):
//!
//! | path | paper name | model |
//! |------|------------|-------|
//! | [`DiskKind::NescDirect`] | NeSC VF direct assignment | guest driver → doorbell → VF; misses handled by the hypervisor's allocate-and-`RewalkTree` interrupt handler |
//! | [`DiskKind::Virtio`] | virtio | virtqueue kick → vmexit → host backend thread → host filesystem mapping → PF |
//! | [`DiskKind::Emulated`] | full device emulation | several trapped MMIO accesses + QEMU device model per request, then the virtio host path |
//! | [`DiskKind::HostRaw`] | Host (baseline) | the hypervisor's own stack straight to the PF |
//!
//! The CPU costs of every software layer are parameters ([`SoftwareCosts`])
//! calibrated so the *relative* behaviour matches the paper's measurements
//! (§VII): NeSC ≈ host, ~6× faster than virtio and ~20× faster than
//! emulation at small blocks, 2.5–3× virtio's bandwidth at 32 KiB, and
//! convergence at multi-megabyte requests.
//!
//! [`System`] exposes synchronous per-request I/O (latency experiments),
//! pipelined streams (bandwidth experiments), and a guest-filesystem layer
//! ([`GuestFilesystem`]) for the filesystem-overhead and application
//! benchmarks.

pub mod costs;
pub mod guestfs;
pub mod system;

pub use costs::SoftwareCosts;
pub use guestfs::GuestFilesystem;
pub use system::{DiskId, DiskKind, StreamResult, StreamSpec, System, VmId};
