//! Typed construction of a [`System`].
//!
//! [`SystemBuilder`] is the front door of the facade: it gathers the
//! device configuration, the software cost model, and the observability
//! options (span tracing, media throttling) into one fluent call chain,
//! so harnesses and examples don't have to thread `NescConfig` /
//! `SoftwareCosts` pairs around by hand.
//!
//! # Example
//!
//! ```
//! use nesc_hypervisor::prelude::*;
//!
//! let mut sys = SystemBuilder::new()
//!     .capacity_blocks(64 * 1024)
//!     .tracing(true)
//!     .build();
//! let disk = sys.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
//! sys.write(disk, 0, &[0xAB; 1024]);
//! assert!(!sys.tracer().is_empty());
//! ```

use nesc_core::NescConfig;
use nesc_pcie::LinkParams;
use nesc_sim::{FlightConfig, SimDuration};
use nesc_storage::Media;

use crate::costs::SoftwareCosts;
use crate::system::System;
use crate::telemetry::TelemetryConfig;

/// Fluent builder over [`NescConfig`] + [`SoftwareCosts`] + observability
/// options. Defaults reproduce the paper's prototype
/// ([`NescConfig::prototype`], [`SoftwareCosts::calibrated`]) with tracing
/// off.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    cfg: NescConfig,
    costs: SoftwareCosts,
    tracing: bool,
    request_tracing: bool,
    media_throttle: Option<u64>,
    telemetry: Option<TelemetryConfig>,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        SystemBuilder::new()
    }
}

impl SystemBuilder {
    /// The prototype system: paper configuration, calibrated costs, no
    /// tracing.
    pub fn new() -> Self {
        SystemBuilder {
            cfg: NescConfig::prototype(),
            costs: SoftwareCosts::calibrated(),
            tracing: false,
            request_tracing: false,
            media_throttle: None,
            telemetry: None,
        }
    }

    /// Replaces the whole device configuration.
    pub fn config(mut self, cfg: NescConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Replaces the whole software cost model.
    pub fn costs(mut self, costs: SoftwareCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Uses the calibrated costs with the paging trampoline enabled
    /// (the paper's measured configuration includes it).
    pub fn with_trampoline(mut self) -> Self {
        self.costs = SoftwareCosts::calibrated_with_trampoline();
        self
    }

    /// Physical device capacity in 1 KiB blocks.
    pub fn capacity_blocks(mut self, blocks: u64) -> Self {
        self.cfg.capacity_blocks = blocks;
        self
    }

    /// BTLB capacity in entries (0 disables caching).
    pub fn btlb_entries(mut self, entries: usize) -> Self {
        self.cfg.btlb_entries = entries;
        self
    }

    /// Maximum number of live virtual functions.
    pub fn max_vfs(mut self, max_vfs: u16) -> Self {
        self.cfg.max_vfs = max_vfs;
        self
    }

    /// Replaces the storage medium (e.g. `Media::Flash(FlashMedia::pcie_ssd())`
    /// for the extension studies).
    pub fn media(mut self, media: Media) -> Self {
        self.cfg.media = media;
        self
    }

    /// Replaces the PCIe link parameters (e.g. [`LinkParams::gen3_x8`]).
    pub fn link(mut self, link: LinkParams) -> Self {
        self.cfg.link = link;
        self
    }

    /// Throttles the medium to `bytes_per_sec` (the Fig. 2 device-speed
    /// sweep).
    pub fn media_throttle(mut self, bytes_per_sec: u64) -> Self {
        self.media_throttle = Some(bytes_per_sec);
        self
    }

    /// Enables hierarchical span tracing across every layer
    /// (guest/hypervisor/virtio/core/extent/pcie/storage). Off by default:
    /// disabled tracing costs one branch per instrumentation site.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enables deterministic time-series telemetry: a perfmon sampler
    /// closing windows of `cfg.interval` across every layer, plus the SLO
    /// watchdog rules in `cfg`. Off by default: disabled telemetry costs
    /// one `Option` check per request.
    pub fn telemetry(mut self, cfg: TelemetryConfig) -> Self {
        self.telemetry = Some(cfg);
        self
    }

    /// Adds one declarative SLO watchdog rule (the `perfmon` rule
    /// grammar, e.g. `"hv.vf3.p99_ns above 500000 for 2"`) at build time.
    /// Enables telemetry with the default 50 µs window if
    /// [`telemetry`](Self::telemetry) was not called first; call it
    /// before this to control the window or capacity.
    ///
    /// # Panics
    ///
    /// Panics if the rule does not parse.
    pub fn slo_rule(mut self, rule: &str) -> Self {
        let cfg = self
            .telemetry
            .take()
            .unwrap_or_else(|| TelemetryConfig::windowed(SimDuration::from_micros(50)));
        self.telemetry = Some(cfg.rule_text(rule));
        self
    }

    /// Adds a batch of declarative SLO rules — the per-tenant form used
    /// by scenario specs, where every tenant contributes one rule string.
    ///
    /// # Panics
    ///
    /// Panics if any rule does not parse.
    pub fn slo_rules<I>(mut self, rules: I) -> Self
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        for r in rules {
            self = self.slo_rule(r.as_ref());
        }
        self
    }

    /// Enables the deterministic flight recorder: a bounded ring of
    /// queue/scheduler/BTLB/media/link events plus worst-K exemplar span
    /// trees per telemetry window, snapshotted into a forensic dump when
    /// the SLO watchdog first fires. Enables telemetry with the default
    /// 50 µs window if [`telemetry`](Self::telemetry) was not called
    /// first. Does *not* enable span tracing — without a tracer the
    /// exemplars carry timing and identity but empty span lists.
    pub fn flight(mut self, cfg: FlightConfig) -> Self {
        let tel = self
            .telemetry
            .take()
            .unwrap_or_else(|| TelemetryConfig::windowed(SimDuration::from_micros(50)));
        self.telemetry = Some(tel.flight(cfg));
        self
    }

    /// Enables the device's per-request [`RequestTrace`] recording
    /// (BTLB hits, walks, stall flags) alongside or instead of spans.
    ///
    /// [`RequestTrace`]: nesc_core::RequestTrace
    pub fn request_tracing(mut self, on: bool) -> Self {
        self.request_tracing = on;
        self
    }

    /// Assembles the system.
    ///
    /// # Panics
    ///
    /// Panics if the accumulated configuration fails
    /// [`NescConfig::validate`].
    pub fn build(self) -> System {
        let mut sys = System::new(self.cfg, self.costs);
        if self.tracing {
            sys.set_tracing(true);
        }
        if self.request_tracing {
            sys.device_mut().set_tracing(true);
        }
        if let Some(b) = self.media_throttle {
            sys.device_mut().set_media_throttle(Some(b));
        }
        if let Some(cfg) = self.telemetry {
            sys.set_telemetry(cfg);
        }
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::DiskKind;

    #[test]
    fn builder_defaults_match_direct_construction() {
        let mut a = SystemBuilder::new().capacity_blocks(64 * 1024).build();
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024;
        let mut b = System::new(cfg, SoftwareCosts::calibrated());
        let da = a.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
        let db = b.quick_disk(DiskKind::NescDirect, "b.img", 1 << 20).disk;
        let la = a.write(da, 0, &[1u8; 1024]);
        let lb = b.write(db, 0, &[1u8; 1024]);
        assert_eq!(la, lb, "builder must not perturb timing");
    }

    #[test]
    fn slo_rules_enable_telemetry_and_register_every_rule() {
        let sys = SystemBuilder::new()
            .slo_rules([
                "hv.vf0.p99_ns above 500000 for 2",
                "hv.vf1.p99_ns above 500000 for 2",
            ])
            .build();
        let tel = sys.telemetry().expect("slo_rules must enable telemetry");
        assert_eq!(tel.watchdog().rules().len(), 2);
    }

    #[test]
    #[should_panic(expected = "rule")]
    fn malformed_slo_rule_panics_at_build_configuration() {
        let _ = SystemBuilder::new().slo_rule("this is not a rule");
    }

    #[test]
    fn builder_knobs_apply() {
        let sys = SystemBuilder::new()
            .capacity_blocks(32 * 1024)
            .btlb_entries(4)
            .max_vfs(3)
            .tracing(true)
            .build();
        assert_eq!(sys.device().config().capacity_blocks, 32 * 1024);
        assert_eq!(sys.device().config().btlb_entries, 4);
        assert_eq!(sys.device().config().max_vfs, 3);
        assert!(sys.tracer().is_enabled());
    }
}
