//! The common workload API: one trait, one I/O context, one report.
//!
//! Historically every workload generator (dd, sysbench fileio/oltp,
//! postmark) hand-rolled its own setup — build a system, provision a
//! disk, maybe mkfs, thread `(&mut System, &mut GuestFilesystem, ...)`
//! argument lists around. [`Workload`] + [`TenantIo`] replace that
//! plumbing: a workload is a value describing *what* to run, `run`
//! receives a [`TenantIo`] saying *where*, and every run yields the same
//! [`WorkloadReport`].
//!
//! The declarative scale-out layer builds on the same vocabulary:
//! [`TenantSpec`] describes a population of tenants (class, traffic
//! shape, working-set skew, SLO), and [`ScenarioSpec`] aggregates tenant
//! populations into a named, seeded scenario — data that a scenario
//! engine (see `nesc_workloads::scenario`) turns into arrivals. Both are
//! plain data: scenarios are declared, not coded.

use nesc_sim::{FlightConfig, Histogram, SimDuration};

use crate::guestfs::GuestFilesystem;
use crate::system::{DiskId, DiskKind, System, VmId};

/// What every workload run reports.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload name (for harness output).
    pub name: String,
    /// Operations (or transactions) completed.
    pub ops: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Simulated wall-clock the run took.
    pub elapsed: SimDuration,
    /// Per-operation latency histogram (nanoseconds).
    pub latency: Histogram,
}

impl WorkloadReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadReport {
            name: name.into(),
            ops: 0,
            bytes: 0,
            elapsed: SimDuration::ZERO,
            latency: Histogram::new(),
        }
    }

    /// Records one completed operation.
    pub fn record(&mut self, bytes: u64, latency: SimDuration) {
        self.ops += 1;
        self.bytes += bytes;
        self.latency.record_duration(latency);
    }

    /// Operations per second over the run.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.ops as f64 / s
        }
    }

    /// Decimal MB/s over the run.
    pub fn mbps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / s
        }
    }

    /// Mean operation latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1e3
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ops, {:.2} MB, {:.3} s -> {:.0} ops/s, {:.1} MB/s, mean {:.1} us, p99 {:.1} us",
            self.name,
            self.ops,
            self.bytes as f64 / 1e6,
            self.elapsed.as_secs_f64(),
            self.ops_per_sec(),
            self.mbps(),
            self.mean_latency_us(),
            self.latency.percentile(99.0) as f64 / 1e3,
        )
    }
}

/// One tenant's I/O context: the system, its VM, its disk, and (lazily)
/// a guest filesystem on that disk.
///
/// Filesystem workloads call [`fs`](Self::fs), which formats the disk on
/// first use; raw-block workloads just use [`system`](Self::system) +
/// [`disk`](Self::disk). Formatting is untimed (as [`GuestFilesystem::mkfs`]
/// always was), so wrapping an existing disk perturbs no timing.
#[derive(Debug)]
pub struct TenantIo<'a> {
    system: &'a mut System,
    vm: VmId,
    disk: DiskId,
    gfs: Option<GuestFilesystem>,
}

impl<'a> TenantIo<'a> {
    /// Wraps an already-attached disk.
    pub fn attached(system: &'a mut System, disk: DiskId) -> Self {
        let vm = system.disk_vm(disk);
        TenantIo {
            system,
            vm,
            disk,
            gfs: None,
        }
    }

    /// Provisions a fresh VM + disk of `size_bytes` on `kind` and wraps
    /// it (the common one-tenant benchmark setup).
    pub fn provision(system: &'a mut System, kind: DiskKind, name: &str, size_bytes: u64) -> Self {
        let p = system.quick_disk(kind, name, size_bytes);
        TenantIo {
            system,
            vm: p.vm,
            disk: p.disk,
            gfs: None,
        }
    }

    /// The underlying system.
    pub fn system(&mut self) -> &mut System {
        self.system
    }

    /// The tenant's disk.
    pub fn disk(&self) -> DiskId {
        self.disk
    }

    /// The tenant's VM.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The system together with a guest filesystem on the disk,
    /// formatting on first use. Returned as a pair because every
    /// [`GuestFilesystem`] operation takes the system as an argument.
    pub fn fs(&mut self) -> (&mut System, &mut GuestFilesystem) {
        if self.gfs.is_none() {
            self.gfs = Some(GuestFilesystem::mkfs(self.system, self.vm, self.disk));
        }
        (self.system, self.gfs.as_mut().expect("just initialized"))
    }
}

/// A runnable workload: a value describing the work, executed against
/// any [`TenantIo`].
pub trait Workload {
    /// Short family name ("dd", "sysbench-oltp", ...), used for labels.
    fn name(&self) -> String;

    /// Runs the workload (including any prepare phase) to completion.
    fn run(&self, io: &mut TenantIo<'_>) -> WorkloadReport;
}

/// Tenant behavior classes for scale-out scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// A well-behaved tenant issuing small requests at a steady rate.
    Steady,
    /// An ON/OFF tenant: bursts of closely spaced requests separated by
    /// long idle gaps.
    Bursty,
    /// A noisy neighbor: large requests at a sustained high rate,
    /// typically demoted to a lower QoS priority class.
    NoisyNeighbor,
}

impl TenantClass {
    /// Class label used in reports and rule names.
    pub fn label(self) -> &'static str {
        match self {
            TenantClass::Steady => "steady",
            TenantClass::Bursty => "bursty",
            TenantClass::NoisyNeighbor => "noisy",
        }
    }
}

/// A population of identically configured tenants in a scenario.
///
/// Construct with a class constructor ([`steady`](Self::steady),
/// [`bursty`](Self::bursty), [`noisy`](Self::noisy)), then override
/// fields with the fluent setters. All rates are expressed as integer
/// nanosecond gaps and permille fractions so the whole spec is usable in
/// the deterministic core (nesc-lint D rules).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Behavior class.
    pub class: TenantClass,
    /// Number of tenants (VFs) in this population.
    pub count: u32,
    /// Each tenant's virtual disk size in bytes.
    pub disk_bytes: u64,
    /// Request size in bytes.
    pub req_bytes: u64,
    /// Open-loop arrivals generated per tenant.
    pub requests: u64,
    /// Writes per 1000 requests (rest are reads).
    pub write_permille: u64,
    /// Working-set skew: hot fraction of the disk, in permille.
    pub hot_permille: u64,
    /// Working-set skew: fraction of accesses hitting the hot end,
    /// in permille.
    pub weight_permille: u64,
    /// Nominal gap between arrivals inside a burst (and between all
    /// arrivals, for steady tenants).
    pub gap: SimDuration,
    /// Nominal idle gap between bursts (ignored for steady tenants).
    pub idle_gap: SimDuration,
    /// Mean burst length in requests (ignored for steady tenants).
    pub mean_burst: u64,
    /// Device QoS priority class (0 = highest).
    pub priority: u8,
    /// Per-tenant p99 SLO bound; generates one watchdog rule per tenant
    /// when set.
    pub slo_p99: Option<SimDuration>,
}

impl TenantSpec {
    /// `count` steady tenants: 4 KiB requests every ~12 ms (≈0.33 MB/s
    /// each — 850 of them fill about a third of the prototype's 800 MB/s
    /// engine), skewed working set, 2 ms p99 SLO armed.
    pub fn steady(count: u32) -> Self {
        TenantSpec {
            class: TenantClass::Steady,
            count,
            disk_bytes: 1 << 20,
            req_bytes: 4 * 1024,
            requests: 64,
            write_permille: 300,
            hot_permille: 200,
            weight_permille: 800,
            gap: SimDuration::from_millis(12),
            idle_gap: SimDuration::from_millis(12),
            mean_burst: u64::MAX,
            priority: 1,
            slo_p99: Some(SimDuration::from_millis(2)),
        }
    }

    /// `count` bursty tenants: 4 KiB requests in ~24-request bursts
    /// spaced ~100 µs apart, with ~48 ms idle gaps between bursts
    /// (≈2.3 MB/s mean, heavily clumped).
    pub fn bursty(count: u32) -> Self {
        TenantSpec {
            class: TenantClass::Bursty,
            mean_burst: 24,
            gap: SimDuration::from_micros(100),
            idle_gap: SimDuration::from_millis(48),
            ..Self::steady(count)
        }
    }

    /// `count` noisy neighbors: 16 KiB requests at a sustained ~6 ms
    /// cadence (≈2.7 MB/s each — 50 of them push a mixed fleet toward the
    /// engine's bandwidth limit), demoted to priority 2, no SLO of their own.
    pub fn noisy(count: u32) -> Self {
        TenantSpec {
            class: TenantClass::NoisyNeighbor,
            req_bytes: 16 * 1024,
            gap: SimDuration::from_millis(6),
            idle_gap: SimDuration::from_millis(6),
            priority: 2,
            slo_p99: None,
            ..Self::steady(count)
        }
    }

    /// Sets the per-tenant disk size in bytes.
    pub fn disk_bytes(mut self, bytes: u64) -> Self {
        self.disk_bytes = bytes;
        self
    }

    /// Sets the request size in bytes.
    pub fn req_bytes(mut self, bytes: u64) -> Self {
        self.req_bytes = bytes;
        self
    }

    /// Sets the number of open-loop arrivals per tenant.
    pub fn requests(mut self, n: u64) -> Self {
        self.requests = n;
        self
    }

    /// Sets the write fraction in permille.
    pub fn write_permille(mut self, permille: u64) -> Self {
        self.write_permille = permille;
        self
    }

    /// Sets the working-set skew (hot fraction, access weight), permille.
    pub fn skew(mut self, hot_permille: u64, weight_permille: u64) -> Self {
        self.hot_permille = hot_permille;
        self.weight_permille = weight_permille;
        self
    }

    /// Sets the device QoS priority class (0 = highest).
    pub fn priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// Sets (or clears) the per-tenant p99 SLO bound.
    pub fn slo_p99(mut self, bound: Option<SimDuration>) -> Self {
        self.slo_p99 = bound;
        self
    }
}

/// A declarative scale-out scenario: tenant populations plus the system
/// knobs the engine needs to assemble them.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (report labels, JSON output).
    pub name: String,
    /// Master seed; every tenant derives a private stream from it.
    pub seed: u64,
    /// Tenant populations, in VF-assignment order.
    pub tenants: Vec<TenantSpec>,
    /// Virtualization path for every tenant disk.
    pub disk_kind: DiskKind,
    /// Telemetry window; per-VF series and SLO rules sample at this
    /// granularity.
    pub telemetry_interval: SimDuration,
    /// Ring capacity per telemetry series (windows retained).
    pub telemetry_capacity: usize,
    /// Flight recorder configuration; `None` (the default) leaves the
    /// recorder off so baseline scenarios pay nothing on the hot path.
    pub flight: Option<FlightConfig>,
}

impl ScenarioSpec {
    /// An empty scenario with a default 200 µs telemetry window on the
    /// NeSC direct path.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            seed: 0x5CA1_AB1E,
            tenants: Vec::new(),
            disk_kind: DiskKind::NescDirect,
            telemetry_interval: SimDuration::from_micros(200),
            telemetry_capacity: 64,
            flight: None,
        }
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Appends a tenant population.
    pub fn tenants(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }

    /// Sets the virtualization path for all tenant disks.
    pub fn disk_kind(mut self, kind: DiskKind) -> Self {
        self.disk_kind = kind;
        self
    }

    /// Sets the telemetry window and per-series ring capacity.
    pub fn telemetry(mut self, interval: SimDuration, capacity: usize) -> Self {
        self.telemetry_interval = interval;
        self.telemetry_capacity = capacity;
        self
    }

    /// Enables the flight recorder for the scenario run (forensic ring +
    /// worst-K exemplars; see [`FlightConfig`]).
    pub fn flight(mut self, cfg: FlightConfig) -> Self {
        self.flight = Some(cfg);
        self
    }

    /// Total tenant (VF) count across all populations.
    pub fn total_tenants(&self) -> u32 {
        self.tenants.iter().map(|t| t.count).sum()
    }

    /// Total open-loop arrivals across all tenants.
    pub fn total_requests(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.count as u64 * t.requests)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_math() {
        let mut r = WorkloadReport::new("t");
        r.record(1_000_000, SimDuration::from_micros(10));
        r.record(1_000_000, SimDuration::from_micros(30));
        r.elapsed = SimDuration::from_millis(1);
        assert_eq!(r.ops, 2);
        assert!((r.ops_per_sec() - 2000.0).abs() < 1e-9);
        assert!((r.mbps() - 2000.0).abs() < 1e-9);
        assert!((r.mean_latency_us() - 20.0).abs() < 0.5);
        assert!(r.summary().contains("t:"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = WorkloadReport::new("e");
        assert_eq!(r.ops_per_sec(), 0.0);
        assert_eq!(r.mbps(), 0.0);
    }

    #[test]
    fn tenant_io_lazy_fs() {
        let mut sys = crate::builder::SystemBuilder::new()
            .capacity_blocks(64 * 1024)
            .build();
        let mut io = TenantIo::provision(&mut sys, DiskKind::NescDirect, "t.img", 4 << 20);
        let disk = io.disk();
        let (sys_ref, gfs) = io.fs();
        let ino = gfs.create(sys_ref, "hello").expect("fresh fs");
        gfs.write(sys_ref, ino, 0, &[7u8; 512]).expect("space");
        assert_eq!(gfs.size_bytes(ino).expect("exists"), 512);
        assert_eq!(io.disk(), disk);
    }

    #[test]
    fn scenario_spec_counts() {
        let spec = ScenarioSpec::new("mix")
            .seed(42)
            .tenants(TenantSpec::steady(10).requests(8))
            .tenants(TenantSpec::bursty(5).requests(4))
            .tenants(TenantSpec::noisy(2));
        assert_eq!(spec.total_tenants(), 17);
        assert_eq!(spec.total_requests(), 10 * 8 + 5 * 4 + 2 * 64);
        assert_eq!(spec.tenants[2].class.label(), "noisy");
        assert_eq!(spec.tenants[2].priority, 2);
    }
}
