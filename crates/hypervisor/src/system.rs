//! The full simulated system.
//!
//! [`System`] owns host memory, the NeSC device, the hypervisor's
//! filesystem (living on the device through the PF), and the guest VMs
//! with their virtual disks. It provides:
//!
//! * image management ([`System::create_image`]) — guest disks are files
//!   on the hypervisor's filesystem, the *nested filesystem* arrangement
//!   of the paper's §II;
//! * disk attachment for each virtualization path ([`System::attach`]);
//! * synchronous I/O ([`System::read`] / [`System::write`]) returning
//!   per-request latency — the Fig. 9/11 measurements;
//! * pipelined streams ([`System::stream`]) with a queue depth — the
//!   Fig. 2/10 bandwidth measurements;
//! * the hypervisor's NeSC **miss handler**: on a `WriteMiss` or
//!   `MappingPruned` interrupt it allocates backing blocks in the host
//!   filesystem, rebuilds and re-serializes the VF's extent tree, updates
//!   `ExtentTreeRoot`, and signals `RewalkTree` (paper Fig. 5b).
//!
//! All calls advance one global simulated clock; per-VM vCPUs and per-disk
//! host backend threads are FIFO service units, so concurrency and
//! queueing behave like the real stack.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use nesc_core::ring::{RingDescriptor, DESCRIPTOR_BYTES};
use nesc_core::{CompletionStatus, FuncId, IrqReason, NescConfig, NescDevice, NescOutput};
use nesc_extent::{Plba, Untrusted, Vlba};
use nesc_fs::{Filesystem, FsError, Ino};
use nesc_pcie::{HostAddr, HostMemory};
use nesc_sim::{
    FlightEventKind, FlightHandle, Metrics, ServiceUnit, SimDuration, SimTime, Span, SpanId,
    Throughput, Tracer,
};
use nesc_storage::{BlockOp, BlockRequest, RequestId, BLOCK_SIZE};
use nesc_virtio::{BlkRequest, BlkRequestType, BlkStatus, Virtqueue};

use crate::costs::SoftwareCosts;
use crate::error::NescError;
use crate::telemetry::{Telemetry, TelemetryConfig};

/// Identifier of a guest VM (or the host pseudo-VM for baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmId(pub usize);

/// Identifier of an attached virtual disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskId(pub usize);

/// Handles returned by [`System::quick_disk`]: the VM, its attached
/// disk, and the backing image (None for [`DiskKind::HostRaw`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvisionedDisk {
    /// The created VM.
    pub vm: VmId,
    /// The attached disk.
    pub disk: DiskId,
    /// The backing image file, if the path is file-backed.
    pub image: Option<Ino>,
}

/// Which virtualization path a disk uses (paper Fig. 1 plus the host
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// A directly-assigned NeSC virtual function.
    NescDirect,
    /// Paravirtual virtio-blk through the hypervisor.
    Virtio,
    /// Full trap-and-emulate device emulation.
    Emulated,
    /// The hypervisor's own raw access to the PF (the "Host" baseline; no
    /// virtualization, no image file).
    HostRaw,
}

/// One tenant's stream description for [`System::run_mixed`].
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// The tenant's disk.
    pub disk: DiskId,
    /// Read or write.
    pub op: BlockOp,
    /// First byte offset.
    pub start_offset: u64,
    /// Bytes per request.
    pub req_bytes: u64,
    /// Number of requests.
    pub count: u64,
}

/// One arrival of an open-loop schedule for
/// [`System::run_open_loop`]: a request that enters the system at a
/// predetermined instant regardless of earlier completions.
#[derive(Debug, Clone, Copy)]
pub struct OpenRequest {
    /// Target disk.
    pub disk: DiskId,
    /// Read or write.
    pub op: BlockOp,
    /// First byte offset.
    pub offset: u64,
    /// Request size in bytes.
    pub bytes: u64,
    /// Arrival instant (absolute simulated time).
    pub at: SimTime,
}

/// Result of a pipelined stream run.
#[derive(Debug, Clone, Copy)]
pub struct StreamResult {
    /// Wall-clock span from first issue to last completion.
    pub elapsed: SimDuration,
    /// Bytes transferred.
    pub bytes: u64,
    /// Requests issued.
    pub ops: u64,
    /// Decimal megabytes per second.
    pub mbps: f64,
}

#[derive(Debug)]
struct Vm {
    vcpu: ServiceUnit,
}

#[derive(Debug)]
struct Disk {
    kind: DiskKind,
    vm: VmId,
    /// Backing image file on the host filesystem (None for HostRaw).
    ino: Option<Ino>,
    /// Assigned virtual function (NescDirect only).
    vf: Option<FuncId>,
    size_blocks: u64,
    /// The host I/O thread serving this disk's paravirtual requests.
    backend: ServiceUnit,
    /// Guest-visible virtqueue (Virtio only).
    vq: Option<Virtqueue>,
    /// Guest data buffer.
    buf: HostAddr,
    /// Host bounce buffer (paravirtual paths).
    bounce: HostAddr,
    /// virtio header/status scratch addresses.
    hdr: HostAddr,
    status: HostAddr,
    /// Set by [`System::detach`]; further I/O is rejected.
    detached: bool,
    /// Command-ring base (NescDirect only): the guest driver's descriptor
    /// array in guest memory.
    ring_base: HostAddr,
    /// Driver-side producer index.
    ring_tail: u32,
}

/// Largest single request the scratch buffers support (the Fig. 10
/// convergence point uses 2 MiB requests).
pub const MAX_REQUEST_BYTES: u64 = 4 << 20;

/// Command-ring slots per NescDirect disk.
const RING_ENTRIES: u32 = 256;

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 4);

/// The assembled host + device + guests system.
pub struct System {
    mem: Rc<RefCell<HostMemory>>,
    dev: NescDevice,
    fs: Filesystem,
    costs: SoftwareCosts,
    vms: Vec<Vm>,
    disks: Vec<Disk>,
    func_to_disk: BTreeMap<FuncId, DiskId>,
    host_cpu: ServiceUnit,
    now: SimTime,
    next_req: u64,
    completed: BTreeMap<RequestId, (SimTime, CompletionStatus)>,
    /// Span tracer shared with the device (no-op until enabled).
    tracer: Tracer,
    /// Named counters + latency histograms accumulated per request.
    metrics: Metrics,
    /// Deterministic time-series sampling + SLO watchdog (None = off; the
    /// request path pays one `Option` check when disabled).
    telemetry: Option<Telemetry>,
    /// Flight recorder handle cloned from the telemetry subsystem
    /// (disabled unless configured there); the issue path appends
    /// request lifecycle events through it.
    flight: FlightHandle,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("vms", &self.vms.len())
            .field("disks", &self.disks.len())
            .finish()
    }
}

impl System {
    /// Builds a system: NeSC device + hypervisor filesystem formatted over
    /// the whole physical device.
    pub fn new(dev_cfg: NescConfig, costs: SoftwareCosts) -> Self {
        let mem = Rc::new(RefCell::new(HostMemory::new()));
        let dev = NescDevice::new(dev_cfg, Rc::clone(&mem));
        let fs = Filesystem::format(dev.config().capacity_blocks);
        System {
            mem,
            dev,
            fs,
            costs,
            vms: Vec::new(),
            disks: Vec::new(),
            func_to_disk: BTreeMap::new(),
            host_cpu: ServiceUnit::new(),
            now: SimTime::ZERO,
            next_req: 1,
            completed: BTreeMap::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::new(),
            telemetry: None,
            flight: FlightHandle::disabled(),
        }
    }

    /// A [`SystemBuilder`](crate::SystemBuilder) with prototype defaults.
    pub fn builder() -> crate::SystemBuilder {
        crate::SystemBuilder::new()
    }

    /// Enables or disables span tracing across every layer of the stack.
    /// Enabling installs a fresh shared tracer in the hypervisor *and* the
    /// device (so PCIe / translation / media spans stitch under the same
    /// request roots); disabling swaps in a no-op tracer.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracer = if on {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        self.dev.set_tracer(self.tracer.clone());
    }

    /// The span tracer (a cheap handle; disabled unless
    /// [`set_tracing`](Self::set_tracing) enabled it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drains all spans recorded so far, in creation order.
    pub fn take_spans(&mut self) -> Vec<Span> {
        self.tracer.take_spans()
    }

    /// The accumulated metrics registry (per-path request counters and
    /// latency histograms).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (harnesses fold their own counters in
    /// before exporting).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Enables telemetry: installs the perfmon sampler + SLO watchdog and
    /// registers per-disk series for every already-attached disk (disks
    /// attached later register at attach time). Replaces any previous
    /// telemetry state.
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig) {
        let mut tel = Telemetry::new(cfg);
        for (i, d) in self.disks.iter().enumerate() {
            tel.register_disk(DiskId(i), d.vf);
        }
        // One recorder, every layer: the device appends queue/scheduler/
        // BTLB/media/link events, the issue path the request lifecycle.
        self.flight = tel.flight().clone();
        self.dev.set_flight(self.flight.clone());
        self.telemetry = Some(tel);
    }

    /// The flight-recorder handle (disabled unless telemetry configured
    /// it).
    pub fn flight(&self) -> &FlightHandle {
        &self.flight
    }

    /// The telemetry subsystem, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// Closes every telemetry window ending at or before the current
    /// simulated time (the still-open partial window is dropped, keeping
    /// exports a function of whole windows only). Call at the end of a
    /// run, before exporting.
    pub fn telemetry_finish(&mut self) {
        self.poll_telemetry(self.now);
    }

    /// Drives the sampler to `at`. Disjoint-field borrows let the
    /// telemetry subsystem read the device and tracer in place — no
    /// take/put-back move of the whole subsystem per call.
    fn poll_telemetry(&mut self, at: SimTime) {
        if let Some(tel) = self.telemetry.as_mut() {
            tel.poll(at, &self.dev, &self.tracer);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Idles until `self.now + d` (think time between operations).
    pub fn think(&mut self, d: SimDuration) {
        self.now += d;
        if self.telemetry.is_some() {
            self.poll_telemetry(self.now);
        }
    }

    /// Shared host memory (examples and tests inspect buffers through it).
    pub fn memory(&self) -> Rc<RefCell<HostMemory>> {
        Rc::clone(&self.mem)
    }

    /// The device, for statistics and ablation knobs.
    pub fn device(&self) -> &NescDevice {
        &self.dev
    }

    /// Mutable device access (media throttling for Fig. 2).
    pub fn device_mut(&mut self) -> &mut NescDevice {
        &mut self.dev
    }

    /// The hypervisor's filesystem.
    pub fn host_fs(&self) -> &Filesystem {
        &self.fs
    }

    /// Mutable access to the hypervisor's filesystem (setup tooling; data
    /// moved this way is functional-only, not timed).
    pub fn host_fs_mut(&mut self) -> &mut Filesystem {
        &mut self.fs
    }

    /// The cost model in force.
    pub fn costs(&self) -> &SoftwareCosts {
        &self.costs
    }

    /// Creates a guest VM.
    pub fn create_vm(&mut self) -> VmId {
        self.vms.push(Vm {
            vcpu: ServiceUnit::new(),
        });
        VmId(self.vms.len() - 1)
    }

    /// Creates an image file of `size_bytes` on the hypervisor's
    /// filesystem. With `prealloc`, blocks are fully allocated up front
    /// (`fallocate` style); otherwise the file is sparse and NeSC writes
    /// will take the miss-interrupt path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (duplicate name, no space).
    pub fn create_image(
        &mut self,
        name: &str,
        size_bytes: u64,
        prealloc: bool,
    ) -> Result<Ino, FsError> {
        let ino = self.fs.create(name)?;
        self.fs.truncate(ino, size_bytes)?;
        if prealloc {
            self.fs
                .allocate_range(ino, Vlba(0), size_bytes.div_ceil(BLOCK_SIZE))?;
        }
        Ok(ino)
    }

    /// Attaches an image (or, for [`DiskKind::HostRaw`], the raw device)
    /// to a VM through the given virtualization path.
    ///
    /// # Panics
    ///
    /// Panics if the VF table is exhausted or the image is missing — both
    /// indicate harness bugs, not modeled error paths. Use
    /// [`try_attach`](Self::try_attach) where attachment can legitimately
    /// fail (e.g. provisioning more tenants than the device has VFs).
    pub fn attach(&mut self, vm: VmId, kind: DiskKind, image: Option<Ino>) -> DiskId {
        self.try_attach(vm, kind, image)
            .expect("attach failed; use try_attach for fallible paths")
    }

    /// Fallible [`attach`](Self::attach): a missing backing image or an
    /// exhausted VF table surfaces as [`NescError::Device`] instead of a
    /// panic.
    ///
    /// # Errors
    ///
    /// [`NescError::Device`] when a non-host disk has no backing image or
    /// the device cannot create another VF; filesystem failures map
    /// through `From<FsError>`.
    pub fn try_attach(
        &mut self,
        vm: VmId,
        kind: DiskKind,
        image: Option<Ino>,
    ) -> Result<DiskId, NescError> {
        let (ino, size_blocks) = match kind {
            DiskKind::HostRaw => (None, self.dev.config().capacity_blocks),
            _ => {
                let ino = image.ok_or(NescError::Device)?;
                let size = self.fs.size_bytes(ino)?.div_ceil(BLOCK_SIZE);
                (Some(ino), size)
            }
        };
        let (buf, bounce, hdr, status) = {
            let mut mem = self.mem.borrow_mut();
            (
                mem.alloc(MAX_REQUEST_BYTES, 4096),
                mem.alloc(MAX_REQUEST_BYTES, 4096),
                mem.alloc(64, 64),
                mem.alloc(8, 8),
            )
        };
        let (vf, ring_base) = if kind == DiskKind::NescDirect {
            let ino = ino.ok_or(NescError::Device)?;
            let tree = self.fs.extent_tree(ino)?.clone();
            let root = tree.serialize(&mut self.mem.borrow_mut());
            let vf = self.dev.create_vf(root, size_blocks)?;
            // The guest driver allocates its command ring and programs the
            // VF's ring registers (paper §V's DMA ring buffer).
            let ring_base = self
                .mem
                .borrow_mut()
                .alloc(RING_ENTRIES as u64 * DESCRIPTOR_BYTES, 4096);
            self.dev
                .mmio_write(vf, nesc_core::regs::offsets::RING_BASE, ring_base, self.now);
            self.dev.mmio_write(
                vf,
                nesc_core::regs::offsets::RING_ENTRIES,
                RING_ENTRIES as u64,
                self.now,
            );
            (Some(vf), ring_base)
        } else {
            (None, 0)
        };
        let vq = (kind == DiskKind::Virtio).then(|| Virtqueue::new(128));
        self.disks.push(Disk {
            kind,
            vm,
            ino,
            vf,
            size_blocks,
            backend: ServiceUnit::new(),
            vq,
            buf,
            bounce,
            hdr,
            status,
            detached: false,
            ring_base,
            ring_tail: 0,
        });
        let id = DiskId(self.disks.len() - 1);
        if let Some(vf) = vf {
            self.func_to_disk.insert(vf, id);
        }
        if let Some(tel) = self.telemetry.as_mut() {
            tel.register_disk(id, vf);
        }
        Ok(id)
    }

    /// Convenience: VM + image + disk in one call.
    ///
    /// # Panics
    ///
    /// Panics on provisioning failure — use
    /// [`try_quick_disk`](Self::try_quick_disk) where that is a modeled
    /// outcome.
    // nesc-lint::allow(P1): thin infallible wrapper for harness/setup
    // code; the fallible logic lives in try_quick_disk.
    pub fn quick_disk(&mut self, kind: DiskKind, name: &str, size_bytes: u64) -> ProvisionedDisk {
        self.try_quick_disk(kind, name, size_bytes)
            .expect("provisioning failed; use try_quick_disk for fallible paths")
    }

    /// Fallible [`quick_disk`](Self::quick_disk): VM + image + disk in
    /// one call, with image-creation and attach failures reported instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Filesystem failures (duplicate name, no space) map through
    /// `From<FsError>`; attach failures as in
    /// [`try_attach`](Self::try_attach).
    pub fn try_quick_disk(
        &mut self,
        kind: DiskKind,
        name: &str,
        size_bytes: u64,
    ) -> Result<ProvisionedDisk, NescError> {
        let vm = self.create_vm();
        let image = match kind {
            DiskKind::HostRaw => None,
            _ => Some(self.create_image(name, size_bytes, true)?),
        };
        Ok(ProvisionedDisk {
            vm,
            disk: self.try_attach(vm, kind, image)?,
            image,
        })
    }

    fn fresh_id(&mut self) -> RequestId {
        let id = RequestId(self.next_req);
        self.next_req += 1;
        id
    }

    // ------------------------------------------------------------------
    // Device pump and the NeSC miss handler
    // ------------------------------------------------------------------

    fn pump(&mut self) {
        loop {
            let outs = self.dev.advance(HORIZON);
            if outs.is_empty() {
                break;
            }
            for o in outs {
                match o {
                    NescOutput::Completion { at, id, status, .. } => {
                        self.completed.insert(id, (at, status));
                    }
                    NescOutput::HostInterrupt { at, func, reason } => {
                        self.handle_miss(func, reason, at);
                    }
                }
            }
        }
    }

    /// The hypervisor's interrupt handler for NeSC translation misses
    /// (paper Fig. 5b): allocate, rebuild, `RewalkTree`.
    fn handle_miss(&mut self, func: FuncId, reason: IrqReason, at: SimTime) {
        // Both lookups hold by construction (only attached, file-backed
        // VFs can interrupt); an inconsistency drops the interrupt, which
        // stalls that VF's request rather than the whole simulation.
        let Some(&disk_id) = self.func_to_disk.get(&func) else {
            debug_assert!(false, "interrupting VF is attached");
            return;
        };
        let Some(ino) = self.disks[disk_id.0].ino else {
            debug_assert!(false, "direct disks are file-backed");
            return;
        };
        let t = self.host_cpu.serve(at, self.costs.miss_handler).end;
        if let Some(tel) = self.telemetry.as_mut() {
            tel.record_rewalk(t - at);
        }
        if self.flight.is_enabled() {
            self.flight.append(
                t,
                FlightEventKind::Rewalk,
                u32::from(func.0),
                at.as_nanos(),
                disk_id.0 as u64,
            );
        }
        match reason {
            IrqReason::WriteMiss {
                miss_vlba,
                miss_blocks,
            } => {
                match self.fs.allocate_range(ino, miss_vlba, miss_blocks) {
                    Ok(_) => {}
                    Err(_) => {
                        // Out of space or quota: signal the write failure
                        // back through the PF (paper §IV-C).
                        self.dev.fail_stalled(func, t);
                        return;
                    }
                }
            }
            IrqReason::MappingPruned { .. } => {
                // The mapping exists in the filesystem; only the
                // device-visible tree was pruned. Rebuilding below is
                // enough.
            }
        }
        let tree = match self.fs.extent_tree(ino) {
            Ok(t) => t.clone(),
            Err(_) => {
                debug_assert!(false, "image exists");
                return;
            }
        };
        let root = tree.serialize(&mut self.mem.borrow_mut());
        if self.dev.set_tree_root(func, root).is_err() {
            debug_assert!(false, "VF is live during miss handling");
            return;
        }
        self.dev
            .mmio_write(func, nesc_core::regs::offsets::REWALK_TREE, 1, t);
    }

    fn wait_for(&mut self, id: RequestId) -> (SimTime, CompletionStatus) {
        self.pump();
        match self.completed.remove(&id) {
            Some(c) => c,
            None => {
                // A request the device never completed (a model bug, not a
                // modeled outcome) reports a device error at the current
                // clock instead of wedging the run.
                debug_assert!(false, "request completed during pump");
                (self.now, CompletionStatus::DeviceError)
            }
        }
    }

    // ------------------------------------------------------------------
    // I/O paths
    // ------------------------------------------------------------------

    /// Covering block range of a byte range.
    fn covering(offset: u64, len: u64) -> (u64, u64) {
        let first = offset / BLOCK_SIZE;
        let last = (offset + len - 1) / BLOCK_SIZE;
        (first, last - first + 1)
    }

    fn trampoline_time(&self, bytes: u64) -> SimDuration {
        match self.costs.trampoline_bytes_per_sec {
            Some(bw) => SimDuration::for_bytes(bytes, bw),
            None => SimDuration::ZERO,
        }
    }

    fn pages(len: u64) -> u64 {
        len.div_ceil(4096)
    }

    /// Issues one request on a disk at `issue` time without advancing the
    /// global clock; returns the guest-observed completion time and the
    /// request's final status. `data` is written for writes; for reads the
    /// caller extracts from the buffer.
    /// Metric key suffix of a path.
    fn path_name(kind: DiskKind) -> &'static str {
        match kind {
            DiskKind::NescDirect => "nesc_direct",
            DiskKind::Virtio => "virtio",
            DiskKind::Emulated => "emulated",
            DiskKind::HostRaw => "host_raw",
        }
    }

    fn issue_once(
        &mut self,
        disk_id: DiskId,
        op: BlockOp,
        offset: u64,
        len: u64,
        issue: SimTime,
        data: Option<&[u8]>,
    ) -> (SimTime, CompletionStatus) {
        debug_assert!(len > 0 && len <= MAX_REQUEST_BYTES, "request size {len}");
        let len = len.clamp(1, MAX_REQUEST_BYTES);
        if self.disks[disk_id.0].detached {
            return (issue, CompletionStatus::DeviceError);
        }
        let kind = self.disks[disk_id.0].kind;
        // The request root span: the path below emits children that tile
        // [issue, done] exactly, so the root's direct children always sum
        // to the guest-observed end-to-end latency.
        let root = if self.tracer.is_enabled() {
            let layer = if kind == DiskKind::HostRaw {
                "hypervisor"
            } else {
                "guest"
            };
            let s = self.tracer.start(SpanId::NONE, layer, "request", issue);
            self.tracer.attr(s, "disk", disk_id.0 as u64);
            self.tracer.attr(s, "bytes", len);
            self.tracer.attr(s, "write", (op == BlockOp::Write) as u64);
            s
        } else {
            SpanId::NONE
        };
        // The id the engine below will mint first — what the flight
        // recorder's exemplar notes and ring events join on.
        let seq = self.next_req;
        let (done, status) = match kind {
            DiskKind::NescDirect => self.direct_io(disk_id, op, offset, len, issue, data, root),
            DiskKind::HostRaw => self.host_io(disk_id, op, offset, len, issue, data, root),
            DiskKind::Virtio | DiskKind::Emulated => {
                self.paravirt_io(disk_id, op, offset, len, issue, data, root)
            }
        };
        if root.is_some() {
            self.tracer
                .attr(root, "failed", (status != CompletionStatus::Ok) as u64);
            self.tracer.end(root, done);
        }
        let path = Self::path_name(kind);
        self.metrics.inc(&format!("requests_{path}"), 1);
        self.metrics.inc(&format!("bytes_{path}"), len);
        if status == CompletionStatus::Ok {
            self.metrics
                .record(&format!("latency_ns_{path}"), (done - issue).as_nanos());
        } else {
            self.metrics.inc(&format!("errors_{path}"), 1);
        }
        // Deferred telemetry: append one fixed-size observation record and
        // poll only when this completion crosses a window boundary. The
        // poll folds records into windows by timestamp, so the observation
        // lands in the window containing its completion time exactly as
        // the historical poll-then-record sequence did.
        // nesc-lint: hot
        if self.flight.is_enabled() {
            // Note the completion for exemplar selection *before* the
            // poll below, so a window closing at `done` folds it in.
            self.flight
                .note_request(done, seq, disk_id.0 as u32, (done - issue).as_nanos(), root);
        }
        // nesc-lint: hot
        if let Some(tel) = self.telemetry.as_mut() {
            tel.record_request(done, disk_id, len, done - issue);
            if tel.due(done) {
                tel.poll(done, &self.dev, &self.tracer);
            }
        }
        (done, status)
    }

    // allow: the per-path I/O engines thread the same eight request
    // parameters (disk, op, range, issue time, payload, span root); they
    // are internal call targets of try_read/try_write, not public API.
    #[allow(clippy::too_many_arguments)]
    fn direct_io(
        &mut self,
        disk_id: DiskId,
        op: BlockOp,
        offset: u64,
        len: u64,
        issue: SimTime,
        data: Option<&[u8]>,
        root: SpanId,
    ) -> (SimTime, CompletionStatus) {
        let (vm, vf, buf) = {
            let d = &self.disks[disk_id.0];
            let Some(vf) = d.vf else {
                debug_assert!(false, "direct disk has a VF");
                return (issue, CompletionStatus::DeviceError);
            };
            (d.vm, vf, d.buf)
        };
        let (first_block, nblocks) = Self::covering(offset, len);
        // Guest stack + page handling on the vCPU.
        let submit_cost = self.costs.guest_stack_submit
            + self.costs.guest_per_page * Self::pages(len)
            + if op == BlockOp::Write {
                self.trampoline_time(len)
            } else {
                SimDuration::ZERO
            };
        let t = self.vms[vm.0].vcpu.serve(issue, submit_cost).end;
        // Functional: place write data in the guest buffer.
        if let (BlockOp::Write, Some(bytes)) = (op, data) {
            let in_block = offset % BLOCK_SIZE;
            self.mem.borrow_mut().write(buf + in_block, bytes);
        }
        // The guest driver writes a ring descriptor and rings the tail
        // doorbell; the device DMAs the descriptor and queues the request.
        let id = self.fresh_id();
        {
            let d = &mut self.disks[disk_id.0];
            let desc = RingDescriptor::new(op, id, Vlba(first_block), nblocks as u32, buf);
            let slot = d.ring_tail % RING_ENTRIES;
            self.mem
                .borrow_mut()
                .write(d.ring_base + slot as u64 * DESCRIPTOR_BYTES, &desc.encode());
            d.ring_tail = (d.ring_tail + 1) % RING_ENTRIES;
        }
        let t_db = self.dev.ring_doorbell(t);
        if self.flight.is_enabled() {
            self.flight.append(
                issue,
                FlightEventKind::RequestStart,
                u32::from(vf.0),
                id.0,
                disk_id.0 as u64,
            );
            self.flight.append(
                t_db,
                FlightEventKind::Doorbell,
                u32::from(vf.0),
                id.0,
                t.as_nanos(),
            );
        }
        let traced = root.is_some();
        let dev_wait = if traced {
            self.tracer.span(root, "guest", "guest_submit", issue, t);
            self.tracer.span(root, "pcie", "doorbell", t, t_db);
            let s = self.tracer.start(root, "core", "device_wait", t_db);
            self.tracer.bind(id.0, s);
            s
        } else {
            SpanId::NONE
        };
        let tail = self.disks[disk_id.0].ring_tail;
        self.dev
            .mmio_write(vf, nesc_core::regs::offsets::RING_TAIL, tail as u64, t_db);
        let (tc, status) = self.wait_for(id);
        if traced {
            self.tracer.end(dev_wait, tc);
            self.tracer.unbind(id.0);
        }
        // Completion handling is charged additively rather than on the
        // vCPU timeline: serving it there would serialize the *next*
        // request's submission behind this completion (the model issues
        // requests strictly in program order), destroying the pipelining
        // a real guest gets from handling completions in interrupt
        // context.
        let done = tc
            + self.costs.direct_interrupt
            + self.costs.guest_stack_complete
            + if op == BlockOp::Read {
                self.trampoline_time(len)
            } else {
                SimDuration::ZERO
            };
        if traced {
            self.tracer.span(root, "guest", "guest_complete", tc, done);
        }
        if self.flight.is_enabled() {
            self.flight.append(
                done,
                FlightEventKind::RequestComplete,
                u32::from(vf.0),
                id.0,
                tc.as_nanos(),
            );
        }
        (done, status)
    }

    // allow: same eight-parameter internal engine signature as direct_io.
    #[allow(clippy::too_many_arguments)]
    fn host_io(
        &mut self,
        disk_id: DiskId,
        op: BlockOp,
        offset: u64,
        len: u64,
        issue: SimTime,
        data: Option<&[u8]>,
        root: SpanId,
    ) -> (SimTime, CompletionStatus) {
        let buf = self.disks[disk_id.0].buf;
        let (first_block, nblocks) = Self::covering(offset, len);
        let submit_cost =
            self.costs.guest_stack_submit + self.costs.guest_per_page * Self::pages(len);
        let t = self.host_cpu.serve(issue, submit_cost).end;
        if let (BlockOp::Write, Some(bytes)) = (op, data) {
            self.mem
                .borrow_mut()
                .write(buf + offset % BLOCK_SIZE, bytes);
        }
        let t_db = self.dev.ring_doorbell(t);
        let id = self.fresh_id();
        let traced = root.is_some();
        let dev_wait = if traced {
            self.tracer
                .span(root, "hypervisor", "host_submit", issue, t);
            self.tracer.span(root, "pcie", "doorbell", t, t_db);
            let s = self.tracer.start(root, "core", "device_wait", t_db);
            self.tracer.bind(id.0, s);
            s
        } else {
            SpanId::NONE
        };
        // nesc-lint::allow(T2): a HostRaw disk *is* the raw device — its
        // byte offsets are physical by definition, so the covering block
        // index is minted as a pLBA right here, at the hypervisor/device
        // boundary.
        self.dev.submit_pf(
            t_db,
            BlockRequest::new(id, op, Plba(first_block), nblocks),
            buf,
        );
        let (tc, status) = self.wait_for(id);
        let done = tc + self.costs.guest_stack_complete;
        if traced {
            self.tracer.end(dev_wait, tc);
            self.tracer.unbind(id.0);
            self.tracer
                .span(root, "hypervisor", "host_complete", tc, done);
        }
        (done, status)
    }

    // allow: same eight-parameter internal engine signature as direct_io.
    #[allow(clippy::too_many_arguments)]
    fn paravirt_io(
        &mut self,
        disk_id: DiskId,
        op: BlockOp,
        offset: u64,
        len: u64,
        issue: SimTime,
        data: Option<&[u8]>,
        root: SpanId,
    ) -> (SimTime, CompletionStatus) {
        let traced = root.is_some();
        let (vm, kind, ino, buf, bounce, hdr, status_addr) = {
            let d = &self.disks[disk_id.0];
            let Some(ino) = d.ino else {
                debug_assert!(false, "paravirtual disks are file-backed");
                return (issue, CompletionStatus::DeviceError);
            };
            (d.vm, d.kind, ino, d.buf, d.bounce, d.hdr, d.status)
        };
        let pages = Self::pages(len);
        // --- Guest side: stack + publish + kick/trap. ---
        let submit_cost = self.costs.guest_stack_submit + self.costs.guest_per_page * pages;
        let mut t = self.vms[vm.0].vcpu.serve(issue, submit_cost).end;
        if let (BlockOp::Write, Some(bytes)) = (op, data) {
            self.mem
                .borrow_mut()
                .write(buf + offset % BLOCK_SIZE, bytes);
        }
        let t1 = t;
        // Functional virtqueue traffic (Virtio only; emulation traps raw
        // register accesses instead).
        if kind == DiskKind::Virtio {
            let rtype = match op {
                BlockOp::Read => BlkRequestType::In,
                BlockOp::Write => BlkRequestType::Out,
            };
            let blkreq = BlkRequest::new(rtype, offset / 512, buf, len as u32, status_addr);
            let chain = blkreq.build_chain(&mut self.mem.borrow_mut(), hdr);
            let d = &mut self.disks[disk_id.0];
            let Some(vq) = d.vq.as_mut() else {
                debug_assert!(false, "virtio disk has a queue");
                return (t, CompletionStatus::DeviceError);
            };
            if vq.add_chain(&chain).is_err() {
                // The ring is sized for the workload, so a full ring is a
                // model bug; the guest sees a device error for this one
                // request and the ring state is untouched.
                debug_assert!(false, "ring sized for the workload");
                return (t, CompletionStatus::DeviceError);
            }
            vq.kick();
            t += self.costs.vmexit_kick;
        } else {
            t += self.costs.emulation_trap * self.costs.emulation_traps_per_request as u64
                + self.costs.emulation_device_cpu;
        }
        // --- Host backend thread. ---
        let mut backend_cost = self.costs.host_backend_request
            + self.costs.host_per_page * pages
            + self.costs.host_fs_map
            + SimDuration::for_bytes(len, self.costs.memcpy_bytes_per_sec);
        if op == BlockOp::Write {
            backend_cost += self.costs.host_fs_write_extra;
        }
        let tb = self.disks[disk_id.0].backend.serve(t, backend_cost).end;
        if traced {
            self.tracer.span(root, "guest", "guest_submit", issue, t1);
            if kind == DiskKind::Virtio {
                self.tracer.span(root, "virtio", "kick", t1, t);
            } else {
                self.tracer.span(root, "hypervisor", "trap_emulate", t1, t);
            }
            self.tracer.span(root, "hypervisor", "host_backend", t, tb);
        }
        // Functional: consume the chain (Virtio). The chain was published
        // a few lines up, so an empty ring here is a model bug; the
        // backend just skips the ring bookkeeping and serves the request
        // from the parsed parameters it already holds.
        if kind == DiskKind::Virtio {
            let d = &mut self.disks[disk_id.0];
            let chain = d.vq.as_mut().and_then(|vq| vq.pop_avail());
            debug_assert!(chain.is_some(), "chain was just published");
            if let Some(chain) = chain {
                let mem = self.mem.borrow();
                let parsed = BlkRequest::parse_chain(&mem, &chain.descriptors);
                drop(mem);
                debug_assert!(parsed.is_ok(), "well-formed chain");
                if let Ok(parsed) = parsed {
                    debug_assert_eq!(parsed.sector, Untrusted::new(offset / 512));
                    debug_assert_eq!(parsed.start_vlba(), Vlba(offset / BLOCK_SIZE));
                }
                let head = chain.head;
                let written = if op == BlockOp::Read {
                    len as u32 + 1
                } else {
                    1
                };
                if let Some(vq) = self.disks[disk_id.0].vq.as_mut() {
                    vq.push_used(head, written);
                    vq.pop_used();
                }
            }
        }
        // The image file's covering range.
        let (first_block, nblocks) = Self::covering(offset, len);
        // Writes must be backed: the *host* filesystem allocates lazily;
        // failure surfaces to the guest as an I/O error status.
        if op == BlockOp::Write
            && self
                .fs
                .allocate_range(ino, Vlba(first_block), nblocks)
                .is_err()
        {
            if kind == DiskKind::Virtio {
                self.mem
                    .borrow_mut()
                    .write(status_addr, &[BlkStatus::IoErr.byte()]);
            }
            let done = tb + self.costs.interrupt_inject + self.costs.guest_stack_complete;
            if traced {
                self.tracer.span(root, "guest", "guest_complete", tb, done);
            }
            return (done, CompletionStatus::WriteFailed);
        }
        // Functional bounce handling. For writes: existing content +
        // overlay (read-modify-write at the block edges, as the page cache
        // does). For reads the bounce is filled from the mapped blocks.
        if op == BlockOp::Write {
            // The range was just allocated, so it is readable; on the
            // impossible failure the bounce keeps stale bytes and only the
            // unwritten block edges are affected.
            let existing = self.read_image_range(ino, first_block, nblocks);
            debug_assert!(existing.is_ok(), "mapped range readable");
            if let Ok(existing) = existing {
                self.mem.borrow_mut().write(bounce, &existing);
            }
            if let Some(bytes) = data {
                self.mem
                    .borrow_mut()
                    .write(bounce + (offset - first_block * BLOCK_SIZE), bytes);
            }
        }
        // --- Device I/O through the PF, one request per physical run. ---
        let runs = self.image_runs(ino, first_block, nblocks);
        let mut ids: Vec<(RequestId, u64, u64)> = Vec::new(); // (id, buf_off, blocks)
        let mut last = tb;
        let mut final_status = CompletionStatus::Ok;
        let mut buf_off = 0u64;
        let t_db = self.dev.ring_doorbell(tb);
        let dev_wait = if traced {
            self.tracer.start(root, "core", "device_wait", tb)
        } else {
            SpanId::NONE
        };
        for (plba, run_blocks) in runs {
            match plba {
                Some(p) => {
                    let id = self.fresh_id();
                    if traced {
                        self.tracer.bind(id.0, dev_wait);
                    }
                    self.dev.submit_pf(
                        t_db,
                        BlockRequest::new(id, op, p, run_blocks),
                        bounce + buf_off,
                    );
                    ids.push((id, buf_off, run_blocks));
                }
                None => {
                    // A hole in the image: the host page cache serves
                    // zeros without touching the device.
                    if op == BlockOp::Read {
                        self.mem.borrow_mut().write(
                            bounce + buf_off,
                            &vec![0u8; (run_blocks * BLOCK_SIZE) as usize],
                        );
                    }
                }
            }
            buf_off += run_blocks * BLOCK_SIZE;
        }
        for (id, _, _) in &ids {
            let (tc, st) = self.wait_for(*id);
            if !matches!(st, CompletionStatus::Ok) {
                final_status = st;
            }
            last = last.max(tc);
        }
        if traced {
            for (id, _, _) in &ids {
                self.tracer.unbind(id.0);
            }
            self.tracer.end(dev_wait, last);
        }
        // Functional: reads land in the guest buffer via the bounce.
        if op == BlockOp::Read {
            let whole = self
                .mem
                .borrow()
                .read_vec(bounce, (nblocks * BLOCK_SIZE) as usize);
            self.mem.borrow_mut().write(buf, &whole);
            let d = &self.disks[disk_id.0];
            if d.kind == DiskKind::Virtio {
                // Status byte written by the backend.
                self.mem
                    .borrow_mut()
                    .write(status_addr, &[BlkStatus::Ok.byte()]);
            }
        }
        // --- Completion: interrupt injection + guest-side unwinding. ---
        let done = last + self.costs.interrupt_inject + self.costs.guest_stack_complete;
        if traced {
            self.tracer
                .span(root, "guest", "guest_complete", last, done);
        }
        (done, final_status)
    }

    /// The image's physical runs covering `[first, first+nblocks)`:
    /// `(Some(plba), len)` for mapped stretches, `(None, len)` for holes.
    fn image_runs(&self, ino: Ino, first: u64, nblocks: u64) -> Vec<(Option<Plba>, u64)> {
        let tree = match self.fs.extent_tree(ino) {
            Ok(t) => t,
            Err(_) => {
                // A vanished image degrades to an all-hole range: reads
                // see zeros, writes are redone once the map is rebuilt.
                debug_assert!(false, "image exists");
                return vec![(None, nblocks)];
            }
        };
        let mut runs: Vec<(Option<Plba>, u64)> = Vec::new();
        let mut b = first;
        let end = first + nblocks;
        while b < end {
            match tree.lookup(Vlba(b)) {
                Some(e) => {
                    let p = e.translate(Vlba(b));
                    debug_assert!(p.is_some(), "covered");
                    let Some(p) = p else {
                        // Corrupt mapping: treat this block as a hole.
                        runs.push((None, 1));
                        b += 1;
                        continue;
                    };
                    let run = e.end_logical().min(Vlba(end)).distance_from(Vlba(b));
                    match runs.last_mut() {
                        Some((Some(last_p), last_len)) if last_p.offset(*last_len) == p => {
                            *last_len += run;
                        }
                        _ => runs.push((Some(p), run)),
                    }
                    b += run;
                }
                None => {
                    let mut run = 0;
                    while b + run < end && tree.lookup(Vlba(b + run)).is_none() {
                        run += 1;
                    }
                    runs.push((None, run));
                    b += run;
                }
            }
        }
        runs
    }

    /// Reads an image range functionally (device store through the file's
    /// mapping; holes as zeros).
    fn read_image_range(&self, ino: Ino, first: u64, nblocks: u64) -> Result<Vec<u8>, FsError> {
        let mut out = Vec::with_capacity((nblocks * BLOCK_SIZE) as usize);
        for (plba, run) in self.image_runs(ino, first, nblocks) {
            match plba {
                Some(p) => {
                    for i in 0..run {
                        out.extend_from_slice(
                            &self
                                .dev
                                .store()
                                .read_block(p.offset(i))
                                .map_err(|_| FsError::BadInode { ino })?,
                        );
                    }
                }
                None => out.extend(std::iter::repeat_n(0u8, (run * BLOCK_SIZE) as usize)),
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Public I/O API
    // ------------------------------------------------------------------

    /// Synchronous write; returns the guest-observed latency and advances
    /// the clock to completion.
    ///
    /// # Panics
    ///
    /// Panics if the device reports a failure — use
    /// [`try_write`](Self::try_write) for fallible paths (quota tests,
    /// thin provisioning past the device size).
    // nesc-lint::allow(P1): thin infallible wrapper; the data path and
    // every fallible caller use try_write.
    pub fn write(&mut self, disk: DiskId, offset: u64, data: &[u8]) -> SimDuration {
        self.try_write(disk, offset, data)
            .expect("write failed; use try_write for fallible paths")
    }

    /// Fallible synchronous write.
    ///
    /// # Errors
    ///
    /// [`NescError::WriteFailed`] when the hypervisor cannot back the
    /// range, [`NescError::OutOfRange`] / [`NescError::Device`] for the
    /// corresponding device statuses.
    pub fn try_write(
        &mut self,
        disk: DiskId,
        offset: u64,
        data: &[u8],
    ) -> Result<SimDuration, NescError> {
        let start = self.now;
        let (done, status) = self.issue_once(
            disk,
            BlockOp::Write,
            offset,
            data.len() as u64,
            start,
            Some(data),
        );
        self.now = done;
        match NescError::from_status(status) {
            None => Ok(done - start),
            Some(err) => Err(err),
        }
    }

    /// Synchronous read into `out`; returns the latency and advances the
    /// clock.
    ///
    /// # Panics
    ///
    /// Panics if the device reports a failure — use
    /// [`try_read`](Self::try_read) for fallible paths.
    // nesc-lint::allow(P1): thin infallible wrapper; the data path and
    // every fallible caller use try_read.
    pub fn read(&mut self, disk: DiskId, offset: u64, out: &mut [u8]) -> SimDuration {
        self.try_read(disk, offset, out)
            .expect("read failed; use try_read for fallible paths")
    }

    /// Fallible synchronous read.
    ///
    /// # Errors
    ///
    /// The [`NescError`] mapped from the device's completion status.
    pub fn try_read(
        &mut self,
        disk: DiskId,
        offset: u64,
        out: &mut [u8],
    ) -> Result<SimDuration, NescError> {
        let start = self.now;
        let len = out.len() as u64;
        let (done, status) = self.issue_once(disk, BlockOp::Read, offset, len, start, None);
        self.now = done;
        if let Some(err) = NescError::from_status(status) {
            return Err(err);
        }
        // Extract the bytes from the guest buffer.
        let d = &self.disks[disk.0];
        let in_block = offset % BLOCK_SIZE;
        let got = self.mem.borrow().read_vec(d.buf + in_block, out.len());
        out.copy_from_slice(&got);
        Ok(done - start)
    }

    /// A pipelined sequential stream: `total_bytes` moved in `req_bytes`
    /// requests with `qd` requests in flight, starting at byte
    /// `start_offset` of the disk. Models page-cache readahead/writeback
    /// pipelining. Returns throughput; advances the clock.
    ///
    /// # Panics
    ///
    /// Panics if `req_bytes` is zero, larger than the scratch buffers, or
    /// `qd` is zero.
    pub fn stream(
        &mut self,
        disk: DiskId,
        op: BlockOp,
        start_offset: u64,
        total_bytes: u64,
        req_bytes: u64,
        qd: usize,
    ) -> StreamResult {
        assert!(req_bytes > 0 && req_bytes <= MAX_REQUEST_BYTES);
        assert!(qd > 0, "queue depth must be positive");
        let nreq = total_bytes / req_bytes;
        assert!(nreq > 0, "stream needs at least one request");
        let start = self.now;
        let mut meter = Throughput::starting_at(start);
        let mut completions: VecDeque<SimTime> = VecDeque::new();
        let mut t_issue = start;
        let mut last = start;
        let payload = vec![0xA5u8; req_bytes as usize];
        for i in 0..nreq {
            if completions.len() >= qd {
                let c = completions.pop_front().expect("non-empty");
                t_issue = t_issue.max(c);
            }
            let offset = start_offset + i * req_bytes;
            let data = (op == BlockOp::Write).then_some(payload.as_slice());
            let (done, status) = self.issue_once(disk, op, offset, req_bytes, t_issue, data);
            assert!(
                status == CompletionStatus::Ok,
                "stream I/O failed: {status:?}"
            );
            completions.push_back(done);
            last = last.max(done);
            meter.record_op(req_bytes);
        }
        meter.finish(last);
        self.now = last;
        StreamResult {
            elapsed: last - start,
            bytes: meter.bytes(),
            ops: meter.ops(),
            mbps: meter.megabytes_per_sec(),
        }
    }

    /// One tenant's stream in a concurrent [`run_mixed`](Self::run_mixed)
    /// experiment: `count` closed-loop (QD=1) sequential requests.
    ///
    /// Declared here rather than in the workloads crate so device-level
    /// fairness experiments don't need a workload dependency.
    pub fn run_mixed(&mut self, specs: &[StreamSpec]) -> Vec<StreamResult> {
        assert!(!specs.is_empty(), "run_mixed needs at least one stream");
        let start = self.now;
        let payloads: Vec<Vec<u8>> = specs
            .iter()
            .map(|s| vec![0x9Au8; s.req_bytes as usize])
            .collect();
        // Per-stream progress: (next issue time, requests done, last done).
        let mut next_issue = vec![start; specs.len()];
        let mut done_reqs = vec![0u64; specs.len()];
        let mut last_done = vec![start; specs.len()];
        // Issue strictly in global time order so the device sees a
        // causally consistent interleaving of all tenants.
        while let Some(i) = (0..specs.len())
            .filter(|&i| done_reqs[i] < specs[i].count)
            .min_by_key(|&i| next_issue[i])
        {
            let sp = &specs[i];
            let offset = sp.start_offset + done_reqs[i] * sp.req_bytes;
            let data = (sp.op == BlockOp::Write).then(|| payloads[i].as_slice());
            let (done, status) =
                self.issue_once(sp.disk, sp.op, offset, sp.req_bytes, next_issue[i], data);
            assert!(
                status == CompletionStatus::Ok,
                "mixed stream I/O failed: {status:?}"
            );
            done_reqs[i] += 1;
            next_issue[i] = done; // closed loop: QD=1 per tenant
            last_done[i] = done;
        }
        let end = last_done.iter().copied().max().unwrap_or(start);
        self.now = end;
        specs
            .iter()
            .zip(last_done)
            .map(|(sp, done)| {
                let elapsed = done - start;
                let bytes = sp.count * sp.req_bytes;
                StreamResult {
                    elapsed,
                    bytes,
                    ops: sp.count,
                    mbps: if elapsed.is_zero() {
                        0.0
                    } else {
                        bytes as f64 / 1e6 / elapsed.as_secs_f64()
                    },
                }
            })
            .collect()
    }

    /// Drives a pre-computed open-loop arrival schedule: each request is
    /// issued at its own `at`, *not* gated on earlier completions — the
    /// datacenter traffic model, where tenants keep sending regardless of
    /// how the device is coping. Queueing is modeled by the per-resource
    /// service units, so a saturated path shows up as growing latency.
    ///
    /// `observe` is invoked once per request with its index in
    /// `arrivals`, the completion time, the arrival→completion latency,
    /// and the completion status (open-loop runs outlive transient
    /// `WriteFailed`/`OutOfRange` tenants, so errors are reported, not
    /// panicked on). Advances the clock to the last completion.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted by arrival time, starts before
    /// the current clock, or contains a request larger than
    /// [`MAX_REQUEST_BYTES`].
    pub fn run_open_loop(
        &mut self,
        arrivals: &[OpenRequest],
        mut observe: impl FnMut(usize, SimTime, SimDuration, CompletionStatus),
    ) {
        let max_write = arrivals
            .iter()
            .filter(|a| a.op == BlockOp::Write)
            .map(|a| a.bytes)
            .max()
            .unwrap_or(0);
        debug_assert!(max_write <= MAX_REQUEST_BYTES, "request too large");
        // One shared pattern payload serves every write (the simulation
        // cares about sizes and offsets, not tenant-unique bytes); an
        // oversized request is clamped here and in issue_once.
        let payload = vec![0x9Au8; max_write.min(MAX_REQUEST_BYTES) as usize];
        let mut prev = self.now;
        let mut end = self.now;
        for (i, a) in arrivals.iter().enumerate() {
            debug_assert!(a.at >= prev, "open-loop arrivals must be sorted in time");
            prev = a.at;
            let data =
                (a.op == BlockOp::Write).then(|| &payload[..(a.bytes as usize).min(payload.len())]);
            let (done, status) = self.issue_once(a.disk, a.op, a.offset, a.bytes, a.at, data);
            end = end.max(done);
            observe(i, done, done.saturating_since(a.at), status);
        }
        self.now = end;
    }

    /// Charges pure CPU time on a VM's vCPU (guest filesystem logic,
    /// application compute) and advances the clock.
    pub fn charge_vcpu(&mut self, vm: VmId, cost: SimDuration) {
        let t = self.vms[vm.0].vcpu.serve(self.now, cost).end;
        self.now = t;
    }

    /// Simulates hypervisor memory pressure on one NeSC disk: prunes the
    /// device-visible extent subtree covering `vlba` (writes NULL into the
    /// covering node pointer, paper §IV-B). Subsequent device accesses to
    /// that range raise `MappingPruned` interrupts, which the miss handler
    /// resolves by rebuilding the tree. Returns whether anything was
    /// pruned (single-leaf trees have nothing prunable).
    ///
    /// # Panics
    ///
    /// Panics if the disk is not a NeSC direct-assigned disk.
    pub fn prune_image_mapping(&mut self, disk: DiskId, vlba: Vlba) -> bool {
        let vf = self.disks[disk.0].vf.expect("pruning needs a NeSC disk");
        let root = self
            .dev
            .mmio_read(vf, nesc_core::regs::offsets::EXTENT_TREE_ROOT);
        let pruned = nesc_extent::prune_covering(&mut self.mem.borrow_mut(), root, vlba);
        if pruned {
            // Cached translations for the pruned range must not survive.
            self.dev.flush_btlb();
        }
        pruned
    }

    /// Runs the hypervisor's offline deduplication pass over the given
    /// disks' backing images (paper §IV-D): identical blocks are collapsed
    /// onto shared physical copies, every affected VF's extent tree is
    /// rebuilt, and the device's BTLB is flushed "to preserve meta-data
    /// consistency". The deduplicated disks must be used read-only by
    /// their VFs afterwards (the device has no copy-on-write).
    ///
    /// # Panics
    ///
    /// Panics if any disk is not file-backed.
    pub fn dedup_images(&mut self, disks: &[DiskId]) -> nesc_fs::DedupReport {
        let inos: Vec<Ino> = disks
            .iter()
            .map(|d| self.disks[d.0].ino.expect("file-backed disk"))
            .collect();
        let report = self
            .fs
            .dedup(self.dev.store_mut(), &inos)
            .expect("images are readable");
        for d in disks {
            if let Some(vf) = self.disks[d.0].vf {
                let ino = self.disks[d.0].ino.expect("file-backed");
                let tree = self.fs.extent_tree(ino).expect("image exists").clone();
                let root = tree.serialize(&mut self.mem.borrow_mut());
                self.dev
                    .set_tree_root(vf, root)
                    .expect("VF is live during dedup");
            }
        }
        self.dev.flush_btlb();
        report
    }

    /// The VM that owns a disk.
    pub fn disk_vm(&self, disk: DiskId) -> VmId {
        self.disks[disk.0].vm
    }

    /// A disk's size in 1 KiB blocks.
    pub fn disk_size_blocks(&self, disk: DiskId) -> u64 {
        self.disks[disk.0].size_blocks
    }

    /// A disk's virtualization kind.
    pub fn disk_kind(&self, disk: DiskId) -> DiskKind {
        self.disks[disk.0].kind
    }

    /// The backing image of a disk, if file-backed.
    pub fn disk_image(&self, disk: DiskId) -> Option<Ino> {
        self.disks[disk.0].ino
    }

    /// The NeSC virtual function backing a direct-assigned disk.
    pub fn disk_vf(&self, disk: DiskId) -> Option<FuncId> {
        self.disks[disk.0].vf
    }

    /// Hot-unplugs a disk (paper §IV-C discusses virtual device hotplug):
    /// the VF is deleted (its slot becomes reusable) and further I/O to
    /// the disk fails. The backing image survives on the host filesystem.
    ///
    /// Detaching twice is a no-op (the second unplug finds the slot
    /// already empty, as on real hardware).
    pub fn detach(&mut self, disk: DiskId) {
        let d = &mut self.disks[disk.0];
        debug_assert!(!d.detached, "disk already detached");
        if d.detached {
            return;
        }
        d.detached = true;
        if let Some(vf) = d.vf.take() {
            self.func_to_disk.remove(&vf);
            let deleted = self.dev.delete_vf(vf);
            debug_assert!(deleted.is_ok(), "VF was live");
        }
    }

    /// Grows (or shrinks) a disk's backing image and its virtual device
    /// size. For NeSC disks the extent tree is rebuilt and the VF's
    /// `DeviceSize` register updated — the paper's point that "the
    /// hypervisor \[can\] initialize virtual devices whose logical size is
    /// larger than their allocated physical space" (§IV-B) extends
    /// naturally to online resize.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (e.g. shrinking below zero is fine;
    /// growing never allocates, thanks to lazy allocation).
    pub fn resize(&mut self, disk: DiskId, new_size_bytes: u64) -> Result<(), FsError> {
        let Some(ino) = self.disks[disk.0].ino else {
            // Resizing a raw-device disk is a harness bug; a raw disk's
            // size is the device's, so the call is a no-op.
            debug_assert!(false, "resize needs a file-backed disk");
            return Ok(());
        };
        self.fs.truncate(ino, new_size_bytes)?;
        let new_blocks = new_size_bytes.div_ceil(BLOCK_SIZE);
        self.disks[disk.0].size_blocks = new_blocks;
        if let Some(vf) = self.disks[disk.0].vf {
            let tree = self.fs.extent_tree(ino)?.clone();
            let root = tree.serialize(&mut self.mem.borrow_mut());
            let set = self.dev.set_tree_root(vf, root);
            debug_assert!(set.is_ok(), "VF is live");
            self.dev.mmio_write(
                vf,
                nesc_core::regs::offsets::DEVICE_SIZE,
                new_blocks,
                self.now,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> System {
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024; // 64 MiB device keeps tests quick
        System::new(cfg, SoftwareCosts::calibrated())
    }

    #[test]
    fn direct_write_read_roundtrip() {
        let mut sys = small_system();
        let disk = sys.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
        let data = vec![0x5Au8; 4096];
        let wl = sys.write(disk, 8192, &data);
        let mut out = vec![0u8; 4096];
        let rl = sys.read(disk, 8192, &mut out);
        assert_eq!(out, data);
        assert!(wl > SimDuration::ZERO && rl > SimDuration::ZERO);
    }

    #[test]
    fn all_paths_roundtrip_data() {
        for (kind, name) in [
            (DiskKind::NescDirect, "n.img"),
            (DiskKind::Virtio, "v.img"),
            (DiskKind::Emulated, "e.img"),
            (DiskKind::HostRaw, "unused"),
        ] {
            let mut sys = small_system();
            let disk = sys.quick_disk(kind, name, 1 << 20).disk;
            let data: Vec<u8> = (0..8192u32).map(|i| (i % 255) as u8).collect();
            sys.write(disk, 4096, &data);
            let mut out = vec![0u8; 8192];
            sys.read(disk, 4096, &mut out);
            assert_eq!(out, data, "{kind:?} corrupted data");
        }
    }

    #[test]
    fn latency_ordering_matches_paper() {
        // Fig. 9: NeSC ≈ host << virtio << emulation for small requests.
        let mut lat = std::collections::HashMap::new();
        for (kind, name) in [
            (DiskKind::NescDirect, "n.img"),
            (DiskKind::Virtio, "v.img"),
            (DiskKind::Emulated, "e.img"),
            (DiskKind::HostRaw, "unused"),
        ] {
            let mut sys = small_system();
            let disk = sys.quick_disk(kind, name, 1 << 20).disk;
            // Warm up (first-touch allocation on the virtio image path).
            sys.write(disk, 0, &[1u8; 1024]);
            let l = sys.write(disk, 0, &[2u8; 1024]);
            lat.insert(kind, l.as_micros_f64());
        }
        let nesc = lat[&DiskKind::NescDirect];
        let host = lat[&DiskKind::HostRaw];
        let virtio = lat[&DiskKind::Virtio];
        let emu = lat[&DiskKind::Emulated];
        assert!(
            (nesc / host) < 1.5,
            "NeSC ({nesc:.1}us) should be near host ({host:.1}us)"
        );
        assert!(
            virtio / nesc > 4.0 && virtio / nesc < 12.0,
            "virtio {virtio:.1}us vs NeSC {nesc:.1}us"
        );
        assert!(
            emu / nesc > 12.0,
            "emulation {emu:.1}us vs NeSC {nesc:.1}us"
        );
    }

    #[test]
    fn nesc_write_to_sparse_image_takes_miss_path() {
        let mut sys = small_system();
        let vm = sys.create_vm();
        let img = sys.create_image("sparse.img", 1 << 20, false).unwrap();
        let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
        let data = vec![0x77u8; 2048];
        sys.write(disk, 0, &data);
        assert!(
            sys.device().stats().miss_interrupts >= 1,
            "sparse write must interrupt the hypervisor"
        );
        let mut out = vec![0u8; 2048];
        sys.read(disk, 0, &mut out);
        assert_eq!(out, data);
        // The host filesystem now shows the blocks allocated.
        assert!(sys.host_fs().extent_tree(img).unwrap().mapped_blocks() >= 2);
    }

    #[test]
    fn sparse_image_read_returns_zeros_without_alloc() {
        let mut sys = small_system();
        let vm = sys.create_vm();
        let img = sys.create_image("sparse2.img", 1 << 20, false).unwrap();
        let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
        let mut out = vec![0xFFu8; 4096];
        sys.read(disk, 0, &mut out);
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(sys.host_fs().extent_tree(img).unwrap().mapped_blocks(), 0);
        assert_eq!(sys.device().stats().miss_interrupts, 0);
    }

    #[test]
    fn stream_throughput_sane() {
        let mut sys = small_system();
        let disk = sys.quick_disk(DiskKind::NescDirect, "s.img", 16 << 20).disk;
        let r = sys.stream(disk, BlockOp::Read, 0, 8 << 20, 32 * 1024, 8);
        assert_eq!(r.bytes, 8 << 20);
        assert_eq!(r.ops, 256);
        // Should be within the prototype's DMA-engine ballpark.
        assert!(
            r.mbps > 400.0 && r.mbps < 850.0,
            "read stream {:.0} MB/s",
            r.mbps
        );
    }

    #[test]
    fn virtio_stream_slower_than_direct() {
        let mut sys = small_system();
        let nd = sys.quick_disk(DiskKind::NescDirect, "n.img", 16 << 20).disk;
        let direct = sys.stream(nd, BlockOp::Write, 0, 4 << 20, 32 * 1024, 1);
        let mut sys2 = small_system();
        let vd = sys2.quick_disk(DiskKind::Virtio, "v.img", 16 << 20).disk;
        let virtio = sys2.stream(vd, BlockOp::Write, 0, 4 << 20, 32 * 1024, 1);
        let ratio = direct.mbps / virtio.mbps;
        assert!(
            ratio > 2.0 && ratio < 4.5,
            "direct {:.0} MB/s vs virtio {:.0} MB/s (ratio {ratio:.2})",
            direct.mbps,
            virtio.mbps
        );
    }

    #[test]
    fn unaligned_write_preserves_neighbors_on_paravirt() {
        let mut sys = small_system();
        let disk = sys.quick_disk(DiskKind::Virtio, "u.img", 1 << 20).disk;
        sys.write(disk, 0, &vec![0x11u8; 2048]);
        sys.write(disk, 512, &vec![0x22u8; 512]);
        let mut out = vec![0u8; 2048];
        sys.read(disk, 0, &mut out);
        assert!(out[..512].iter().all(|&b| b == 0x11));
        assert!(out[512..1024].iter().all(|&b| b == 0x22));
        assert!(out[1024..].iter().all(|&b| b == 0x11));
    }

    #[test]
    fn pruned_mapping_resolves_transparently() {
        let mut sys = small_system();
        // A fragmented image so the tree has internal (prunable) levels:
        // interleave allocations between two files.
        let vm = sys.create_vm();
        let img = sys.create_image("frag.img", 4 << 20, false).unwrap();
        let other = sys.create_image("other.img", 4 << 20, false).unwrap();
        for b in 0..256u64 {
            sys.host_fs_mut().allocate_range(img, Vlba(b), 1).unwrap();
            sys.host_fs_mut().allocate_range(other, Vlba(b), 1).unwrap();
        }
        let disk = sys.attach(vm, DiskKind::NescDirect, Some(img));
        let data = vec![0x99u8; 4096];
        sys.write(disk, 0, &data);
        assert!(sys.prune_image_mapping(disk, Vlba(0)), "tree is prunable");
        let irqs_before = sys.device().stats().miss_interrupts;
        let mut out = vec![0u8; 4096];
        sys.read(disk, 0, &mut out);
        assert_eq!(out, data, "data survives pruning + rebuild");
        assert!(
            sys.device().stats().miss_interrupts > irqs_before,
            "the pruned walk must have interrupted the hypervisor"
        );
    }

    #[test]
    fn dedup_images_keeps_vf_reads_correct() {
        let mut sys = small_system();
        let da = sys.quick_disk(DiskKind::NescDirect, "da.img", 1 << 20).disk;
        let db = sys.quick_disk(DiskKind::NescDirect, "db.img", 1 << 20).disk;
        // Identical golden content on both disks.
        let golden: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 13) as u8).collect();
        sys.write(da, 0, &golden);
        sys.write(db, 0, &golden);
        let report = sys.dedup_images(&[da, db]);
        assert!(report.deduped_blocks >= 64, "{report:?}");
        // Both VFs still read the right bytes through rebuilt trees.
        let mut out = vec![0u8; golden.len()];
        sys.read(da, 0, &mut out);
        assert_eq!(out, golden);
        sys.read(db, 0, &mut out);
        assert_eq!(out, golden);
    }

    #[test]
    fn detach_rejects_io_and_frees_the_vf_slot() {
        let mut sys = small_system();
        let disk = sys.quick_disk(DiskKind::NescDirect, "d.img", 1 << 20).disk;
        sys.write(disk, 0, &[1u8; 1024]);
        let vfs_before = sys.device().live_vfs();
        sys.detach(disk);
        assert_eq!(sys.device().live_vfs(), vfs_before - 1);
        assert!(matches!(
            sys.try_write(disk, 0, &[2u8; 1024]),
            Err(NescError::Device)
        ));
        // The slot is reusable by a new tenant.
        let disk2 = sys.quick_disk(DiskKind::NescDirect, "d2.img", 1 << 20).disk;
        sys.write(disk2, 0, &[3u8; 1024]);
    }

    #[test]
    fn online_resize_grows_and_shrinks() {
        let mut sys = small_system();
        let disk = sys.quick_disk(DiskKind::NescDirect, "r.img", 1 << 20).disk;
        sys.write(disk, 0, &[7u8; 1024]);
        // Grow: the new tail is addressable (as holes).
        sys.resize(disk, 4 << 20).unwrap();
        let mut buf = vec![0xFFu8; 1024];
        sys.read(disk, 3 << 20, &mut buf);
        assert!(buf.iter().all(|&b| b == 0), "grown tail is a hole");
        // And writable via the miss path.
        sys.write(disk, 3 << 20, &[9u8; 1024]);
        sys.read(disk, 3 << 20, &mut buf);
        assert!(buf.iter().all(|&b| b == 9));
        // Shrink: beyond-end access is rejected by the device.
        sys.resize(disk, 1 << 20).unwrap();
        assert!(matches!(
            sys.try_read(disk, 3 << 20, &mut buf),
            Err(NescError::OutOfRange)
        ));
        // Data inside the shrunk size survives.
        sys.read(disk, 0, &mut buf);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn think_and_charge_advance_clock() {
        let mut sys = small_system();
        let vm = sys.create_vm();
        let t0 = sys.now();
        sys.think(SimDuration::from_micros(5));
        sys.charge_vcpu(vm, SimDuration::from_micros(3));
        assert_eq!(sys.now() - t0, SimDuration::from_micros(8));
    }
}
