//! Calibrated software-layer CPU costs.
//!
//! The paper's §II argument is that as devices reach multi-GB/s, the
//! *software* layers — the guest's replicated I/O stack, the
//! vmexit/vmenter traps, the hypervisor's own filesystem and block layers —
//! become the bottleneck. This module prices those layers.
//!
//! Calibration anchors (from the paper's own measurements, §VII):
//!
//! * small-block latency: NeSC ≈ host; virtio ≈ 6× NeSC; emulation ≈ 20×
//!   NeSC (Fig. 9) — sets the per-kick, per-trap and backend costs;
//! * filesystem overhead: +40 µs on NeSC, +170 µs on virtio (Fig. 11) —
//!   sets the guest journal/allocation costs and their amplification
//!   through the paravirtual path;
//! * the host ramdisk software ceiling of 3.6 GB/s (Fig. 2) — sets the
//!   per-page stack cost (~1.1 µs per 4 KiB).

use nesc_sim::SimDuration;

/// Per-layer CPU costs of the virtualization stack.
#[derive(Debug, Clone)]
pub struct SoftwareCosts {
    /// Guest I/O stack (VFS + block layer + IO scheduler + driver) fixed
    /// cost to submit one request.
    pub guest_stack_submit: SimDuration,
    /// Guest-side completion handling (IRQ + block layer unwinding).
    pub guest_stack_complete: SimDuration,
    /// Guest per-4 KiB-page handling (page cache, sg-list assembly). This
    /// is what caps a ramdisk around 3.6 GB/s in Fig. 2.
    pub guest_per_page: SimDuration,

    /// One virtqueue kick: vmexit + waking the host I/O thread.
    pub vmexit_kick: SimDuration,
    /// Host backend fixed cost per request (virtio parse, bio submit).
    pub host_backend_request: SimDuration,
    /// Host per-4 KiB-page handling along the paravirtual path.
    pub host_per_page: SimDuration,
    /// Host filesystem lookup to map an image-file offset (per request).
    pub host_fs_map: SimDuration,
    /// Extra host filesystem work on writes (allocation checks, ordered
    /// metadata) along the paravirtual path.
    pub host_fs_write_extra: SimDuration,
    /// Guest↔host bounce-copy bandwidth.
    pub memcpy_bytes_per_sec: u64,
    /// Injecting a completion interrupt into the guest (vmenter).
    pub interrupt_inject: SimDuration,

    /// Cost of one trapped MMIO access under full emulation.
    pub emulation_trap: SimDuration,
    /// Trapped MMIO accesses per request under full emulation.
    pub emulation_traps_per_request: u32,
    /// QEMU device-model CPU per emulated request.
    pub emulation_device_cpu: SimDuration,

    /// Hypervisor's NeSC write-miss handler: query the filesystem,
    /// allocate, rebuild the extent tree, poke `RewalkTree`.
    pub miss_handler: SimDuration,
    /// MSI delivery to a guest with direct assignment (posted interrupt).
    pub direct_interrupt: SimDuration,

    /// Guest filesystem CPU per metadata-journaling operation (Fig. 11's
    /// in-guest component).
    pub guest_fs_op_cpu: SimDuration,

    /// The prototype's trampoline buffers (its FPGA's VFs are invisible to
    /// the IOMMU, so VMs copy via a shared buffer, §VI): when set, direct
    /// path transfers pay an extra copy at this bandwidth.
    pub trampoline_bytes_per_sec: Option<u64>,
}

impl SoftwareCosts {
    /// Costs calibrated to the paper's experimental platform (Sandy Bridge
    /// Xeon, QEMU/KVM, Linux 3.13 guests).
    pub fn calibrated() -> Self {
        SoftwareCosts {
            guest_stack_submit: SimDuration::from_nanos(2_000),
            guest_stack_complete: SimDuration::from_nanos(1_000),
            guest_per_page: SimDuration::from_nanos(1_200),
            vmexit_kick: SimDuration::from_nanos(26_000),
            host_backend_request: SimDuration::from_nanos(5_000),
            host_per_page: SimDuration::from_nanos(2_000),
            host_fs_map: SimDuration::from_nanos(4_000),
            host_fs_write_extra: SimDuration::from_nanos(20_000),
            memcpy_bytes_per_sec: 10_000_000_000,
            interrupt_inject: SimDuration::from_nanos(6_000),
            emulation_trap: SimDuration::from_nanos(20_000),
            emulation_traps_per_request: 6,
            emulation_device_cpu: SimDuration::from_nanos(30_000),
            miss_handler: SimDuration::from_nanos(15_000),
            direct_interrupt: SimDuration::from_nanos(1_000),
            guest_fs_op_cpu: SimDuration::from_nanos(22_000),
            trampoline_bytes_per_sec: None,
        }
    }

    /// The calibrated costs plus the prototype's pessimistic trampoline
    /// copies (what the paper actually measured on the VC707).
    pub fn calibrated_with_trampoline() -> Self {
        SoftwareCosts {
            trampoline_bytes_per_sec: Some(8_000_000_000),
            ..SoftwareCosts::calibrated()
        }
    }

    /// Fixed (size-independent) extra latency of the virtio path over the
    /// direct path — useful for sanity checks and documentation.
    pub fn virtio_fixed_overhead(&self) -> SimDuration {
        self.vmexit_kick + self.host_backend_request + self.host_fs_map + self.interrupt_inject
    }

    /// Fixed extra latency of the emulation path over the direct path.
    pub fn emulation_fixed_overhead(&self) -> SimDuration {
        self.emulation_trap * self.emulation_traps_per_request as u64
            + self.emulation_device_cpu
            + self.host_backend_request
            + self.host_fs_map
            + self.interrupt_inject
    }
}

impl Default for SoftwareCosts {
    fn default() -> Self {
        SoftwareCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_orders_the_paths() {
        let c = SoftwareCosts::calibrated();
        // Emulation must cost several times virtio, which must dwarf the
        // direct path's couple of microseconds of guest stack.
        assert!(c.emulation_fixed_overhead() > c.virtio_fixed_overhead() * 3);
        assert!(c.virtio_fixed_overhead() > c.guest_stack_submit * 10);
    }

    #[test]
    fn virtio_overhead_magnitude_matches_paper() {
        // Fig. 9/11: virtio raw ≈ NeSC + ~40 µs for small blocks.
        let c = SoftwareCosts::calibrated();
        let us = c.virtio_fixed_overhead().as_micros_f64();
        assert!((30.0..60.0).contains(&us), "virtio overhead {us} us");
    }

    #[test]
    fn trampoline_preset_sets_bandwidth() {
        assert!(SoftwareCosts::calibrated()
            .trampoline_bytes_per_sec
            .is_none());
        assert!(SoftwareCosts::calibrated_with_trampoline()
            .trampoline_bytes_per_sec
            .is_some());
    }

    #[test]
    fn default_is_calibrated() {
        let d = SoftwareCosts::default();
        assert_eq!(d.vmexit_kick, SoftwareCosts::calibrated().vmexit_kick);
    }
}
