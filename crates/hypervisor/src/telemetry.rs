//! System-level telemetry: the perfmon sampler wired across every layer.
//!
//! [`Telemetry`] owns a [`Sampler`] plus an [`SloWatchdog`] and knows how
//! to feed them from the assembled stack:
//!
//! * **core** — BTLB lookup/hit counters and windowed hit ratio, walk-unit
//!   occupancy, miss-interrupt rate, per-function command-ring depth;
//! * **storage / pcie** — media and link busy time as parts-per-million
//!   utilization per window;
//! * **hypervisor** — per-VF windowed request/byte counters and p50/p99
//!   latency (from a histogram that resets each window), plus the miss
//!   handler's rewalk service rate and p99.
//!
//! Everything is driven by *simulated* time, and sampling is *deferred*
//! off the hot path: each request completion appends one fixed-size
//! observation record ([`Telemetry::record_request`]) and performs a
//! single integer compare against the cached next window end
//! ([`Telemetry::due`]). Only when a completion (or idle think time)
//! crosses a window boundary does [`Telemetry::poll`] run: it folds the
//! pending records into their windows by timestamp, closes every window
//! whose end has passed, commits one sample per series per window, and
//! runs the watchdog. The fold is exact — an observation at time `t` is
//! visible to a window ending at `W` iff `t < W`, which is precisely the
//! window an eager record-after-poll would have landed it in — so the
//! exported series are byte-identical to inline polling while the
//! per-request cost drops to an append. No wall clock, no background
//! thread — the same seed produces byte-identical time series.
//!
//! # Example
//!
//! ```
//! use nesc_hypervisor::prelude::*;
//!
//! let mut sys = SystemBuilder::new()
//!     .telemetry(TelemetryConfig::windowed(SimDuration::from_micros(50)))
//!     .build();
//! let disk = sys.quick_disk(DiskKind::NescDirect, "t.img", 1 << 20).disk;
//! for _ in 0..32 {
//!     sys.write(disk, 0, &[7u8; 4096]);
//!     sys.think(SimDuration::from_micros(20));
//! }
//! sys.telemetry_finish();
//! let sampler = sys.telemetry().unwrap().sampler();
//! assert!(sampler.closed_windows() > 0);
//! assert!(sampler.series_by_name("hv.vf0.requests").is_some());
//! ```

use nesc_core::{FuncId, NescDevice};
use nesc_sim::perfmon::{series_json, utilization_ppm, SeriesKind};
use nesc_sim::{AnomalyEvent, Histogram, Sampler, SeriesId, SimDuration, SloRule, SloWatchdog};
use nesc_sim::{FlightConfig, FlightEventKind, FlightHandle, SimTime, Tracer};

use crate::system::DiskId;

/// Configuration for the telemetry subsystem: sampling interval, ring
/// capacity per series, and the SLO watchdog rules.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Window length; every series commits one sample per window.
    pub interval: SimDuration,
    /// Retained windows per series (older samples are evicted).
    pub capacity: usize,
    /// Declarative SLO rules evaluated at every window close.
    pub rules: Vec<SloRule>,
    /// Flight-recorder configuration; `None` (the default) leaves the
    /// recorder disabled and the hot path untouched.
    pub flight: Option<FlightConfig>,
}

impl TelemetryConfig {
    /// A config with the given window length, 256 retained windows, and
    /// no watchdog rules. A zero interval (a contract violation: windows
    /// must advance simulated time) is widened to one nanosecond.
    pub fn windowed(interval: SimDuration) -> Self {
        debug_assert!(!interval.is_zero(), "telemetry interval must be non-zero");
        let interval = interval.max(SimDuration::from_nanos(1));
        TelemetryConfig {
            interval,
            capacity: 256,
            rules: Vec::new(),
            flight: None,
        }
    }

    /// Sets the per-series ring capacity.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Adds a watchdog rule.
    pub fn rule(mut self, rule: SloRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Parses and adds a watchdog rule from the grammar
    /// `<series> above|below <N> for <K> [while <series> above|below <M>]`.
    ///
    /// # Panics
    ///
    /// Panics on a grammar error — rule texts are harness constants.
    // nesc-lint::allow(P1): builder-time parse of compile-time constant
    // rule strings; runtime-supplied rules go through SloRule::parse and
    // get the typed RuleParseError.
    pub fn rule_text(self, text: &str) -> Self {
        self.rule(SloRule::parse(text).expect("valid SLO rule"))
    }

    /// Enables the flight recorder: queue/scheduler/BTLB/media/link
    /// events stream into its ring, worst-K exemplars are retained per
    /// window, and the first watchdog anomaly snapshots a forensic dump.
    pub fn flight(mut self, cfg: FlightConfig) -> Self {
        self.flight = Some(cfg);
        self
    }
}

/// Per-disk series: windowed request/byte counters, latency percentiles,
/// and (for NescDirect disks) the VF's command-ring depth.
#[derive(Debug)]
struct VfSeries {
    requests: SeriesId,
    bytes: SeriesId,
    p50: SeriesId,
    p99: SeriesId,
    /// Ring-depth gauge and its function, for NescDirect disks.
    ring: Option<(SeriesId, FuncId)>,
    /// Cumulative raws feeding the counter series.
    raw_requests: u64,
    raw_bytes: u64,
    /// Latency samples of the currently open window; reset at each close.
    hist: Histogram,
}

/// One deferred per-request observation: appended by the hot path, folded
/// into its disk's raw counters when the window containing `t_ns` closes.
#[derive(Debug, Clone, Copy)]
struct PendingObs {
    /// Completion time (nanoseconds) — decides the window it lands in.
    t_ns: u64,
    /// Disk index (dense attach order).
    disk: u32,
    /// Request payload bytes.
    bytes: u64,
    /// Completion latency in nanoseconds.
    latency_ns: u64,
}

/// The assembled telemetry subsystem (see the module docs).
#[derive(Debug)]
pub struct Telemetry {
    sampler: Sampler,
    watchdog: SloWatchdog,
    // Core probes.
    s_btlb_lookups: SeriesId,
    s_btlb_hits: SeriesId,
    s_btlb_hit_ppm: SeriesId,
    s_walk_busy_ppm: SeriesId,
    s_miss_irqs: SeriesId,
    // Storage / PCIe probes.
    s_media_util: SeriesId,
    s_link_up: SeriesId,
    s_link_down: SeriesId,
    // Hypervisor probes.
    s_rewalks: SeriesId,
    s_rewalk_p99: SeriesId,
    /// Per-disk accounting, indexed by dense disk index (attach order).
    /// `None` marks an index whose disk was never registered.
    vfs: Vec<Option<VfSeries>>,
    /// Deferred per-request observations since the last window close (the
    /// hot path appends; [`poll`](Self::poll) drains at window
    /// boundaries). Capacity is retained across drains.
    pending: Vec<PendingObs>,
    /// Cached end of the oldest unclosed window, in nanoseconds — the hot
    /// path's single-compare test for "is any window due".
    next_due_ns: u64,
    rewalk_count: u64,
    rewalk_hist: Histogram,
    // Previous cumulative raws for windowed-ratio gauges.
    prev_btlb_lookups: u64,
    prev_btlb_hits: u64,
    prev_walk_busy: SimDuration,
    prev_media_busy: SimDuration,
    prev_link_up: SimDuration,
    prev_link_down: SimDuration,
    /// The flight recorder (disabled unless configured). The same handle
    /// is cloned into the device and the system's issue path.
    flight: FlightHandle,
    /// Anomalies already mirrored into the flight ring / forensic dump.
    anomaly_seen: usize,
    /// The forensic dump captured when the watchdog first fired, if any.
    forensic: Option<serde_json::Value>,
}

/// Growth of a monotonic busy-time counter since the previous window.
fn delta(cur: SimDuration, prev: SimDuration) -> SimDuration {
    SimDuration::from_nanos(cur.as_nanos().saturating_sub(prev.as_nanos()))
}

impl Telemetry {
    /// Builds the subsystem and registers the fixed (non-per-disk)
    /// series. Per-disk series are added by
    /// [`register_disk`](Self::register_disk) as disks attach.
    pub fn new(cfg: TelemetryConfig) -> Self {
        let mut sampler = Sampler::new(cfg.interval, cfg.capacity);
        let mut watchdog = SloWatchdog::new();
        let flight = match cfg.flight {
            Some(fc) => FlightHandle::enabled(fc),
            None => FlightHandle::disabled(),
        };
        for rule in cfg.rules {
            watchdog.add_rule(rule);
        }
        let ops = SeriesKind::Counter;
        let gauge = SeriesKind::Gauge;
        let next_due_ns = (SimTime::ZERO + cfg.interval).as_nanos();
        Telemetry {
            s_btlb_lookups: sampler.register("core.btlb_lookups", "ops", ops),
            s_btlb_hits: sampler.register("core.btlb_hits", "ops", ops),
            s_btlb_hit_ppm: sampler.register("core.btlb_hit_ppm", "ppm", gauge),
            s_walk_busy_ppm: sampler.register("core.walk_busy_ppm", "ppm", gauge),
            s_miss_irqs: sampler.register("core.miss_interrupts", "ops", ops),
            s_media_util: sampler.register("storage.media_util_ppm", "ppm", gauge),
            s_link_up: sampler.register("pcie.link_up_util_ppm", "ppm", gauge),
            s_link_down: sampler.register("pcie.link_down_util_ppm", "ppm", gauge),
            s_rewalks: sampler.register("hv.rewalks", "ops", ops),
            s_rewalk_p99: sampler.register("hv.rewalk_p99_ns", "ns", gauge),
            sampler,
            watchdog,
            vfs: Vec::new(),
            pending: Vec::new(),
            next_due_ns,
            rewalk_count: 0,
            rewalk_hist: Histogram::new(),
            prev_btlb_lookups: 0,
            prev_btlb_hits: 0,
            prev_walk_busy: SimDuration::ZERO,
            prev_media_busy: SimDuration::ZERO,
            prev_link_up: SimDuration::ZERO,
            prev_link_down: SimDuration::ZERO,
            flight,
            anomaly_seen: 0,
            forensic: None,
        }
    }

    /// Registers the per-disk series (`hv.vf<d>.*`; and
    /// `core.ring_depth.f<f>` when the disk has a VF). A disk attached
    /// after windows have already closed starts sampling at the current
    /// window.
    pub fn register_disk(&mut self, disk: DiskId, func: Option<FuncId>) {
        let d = disk.0;
        let vf = VfSeries {
            requests: self.sampler.register(
                &format!("hv.vf{d}.requests"),
                "ops",
                SeriesKind::Counter,
            ),
            bytes: self
                .sampler
                .register(&format!("hv.vf{d}.bytes"), "bytes", SeriesKind::Counter),
            p50: self
                .sampler
                .register(&format!("hv.vf{d}.p50_ns"), "ns", SeriesKind::Gauge),
            p99: self
                .sampler
                .register(&format!("hv.vf{d}.p99_ns"), "ns", SeriesKind::Gauge),
            ring: func.map(|f| {
                let id = self.sampler.register(
                    &format!("core.ring_depth.f{}", f.0),
                    "entries",
                    SeriesKind::Gauge,
                );
                (id, f)
            }),
            raw_requests: 0,
            raw_bytes: 0,
            hist: Histogram::new(),
        };
        if self.vfs.len() <= d {
            self.vfs.resize_with(d + 1, || None);
        }
        self.vfs[d] = Some(vf);
    }

    /// Accounts one completed request against its disk — the hot-path
    /// append. The observation is *deferred*: nothing but a fixed-size
    /// record push happens here; [`poll`](Self::poll) folds it into the
    /// disk's raw counters when the window containing `done` closes, so it
    /// lands in exactly the window an eager record-after-poll would have
    /// (a record at `t` is visible to a window ending at `W` iff `t < W`).
    // nesc-lint: hot
    #[inline]
    pub fn record_request(
        &mut self,
        done: SimTime,
        disk: DiskId,
        bytes: u64,
        latency: SimDuration,
    ) {
        self.pending.push(PendingObs {
            t_ns: done.as_nanos(),
            disk: disk.0 as u32,
            bytes,
            latency_ns: latency.as_nanos(),
        });
    }

    /// Whether any telemetry window ends at or before `now` — the hot
    /// path's single branch deciding if [`poll`](Self::poll) must run.
    // nesc-lint: hot
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now.as_nanos() >= self.next_due_ns
    }

    /// Folds every deferred observation earlier than `window_end_ns` into
    /// its disk's raw counters, removing it from the pending list.
    /// Application order does not matter: the raws are sums and a
    /// histogram, both commutative.
    fn fold_pending(&mut self, window_end_ns: u64) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].t_ns < window_end_ns {
                let r = self.pending.swap_remove(i);
                if let Some(Some(vf)) = self.vfs.get_mut(r.disk as usize) {
                    vf.raw_requests += 1;
                    vf.raw_bytes += r.bytes;
                    vf.hist.record(r.latency_ns);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Accounts one miss-handler rewalk service (interrupt to
    /// `RewalkTree` write-back).
    pub fn record_rewalk(&mut self, latency: SimDuration) {
        self.rewalk_count += 1;
        self.rewalk_hist.record(latency.as_nanos());
    }

    /// Closes every window whose end time has passed, committing one
    /// sample per series per window and running the watchdog. Busy-time
    /// probes are read from the device; an idle stretch closes several
    /// windows in one call (counters record zeros after the first).
    pub fn poll(&mut self, now: SimTime, dev: &NescDevice, tracer: &Tracer) {
        if !self.due(now) {
            return;
        }
        while let Some(end) = self.sampler.due(now) {
            self.fold_pending(end.as_nanos());
            let interval = self.sampler.interval();
            let stats = dev.stats();
            self.sampler.sample(self.s_btlb_lookups, stats.btlb_lookups);
            self.sampler.sample(self.s_btlb_hits, stats.btlb_hits);
            let dl = stats.btlb_lookups - self.prev_btlb_lookups;
            let dh = stats.btlb_hits - self.prev_btlb_hits;
            let hit_ppm = (dh * 1_000_000).checked_div(dl).unwrap_or(0);
            self.sampler.sample(self.s_btlb_hit_ppm, hit_ppm);
            self.prev_btlb_lookups = stats.btlb_lookups;
            self.prev_btlb_hits = stats.btlb_hits;
            self.sampler.sample(self.s_miss_irqs, stats.miss_interrupts);

            // Busy-time deltas over the window, normalized to ppm. Work is
            // attributed to the window in which it was *accepted* (service
            // units book busy time at serve time), so a burst can exceed
            // the window and the clamp in `utilization_ppm` applies.
            let walk = dev.walk_busy_time();
            let walk_span = interval * dev.walk_slot_count() as u64;
            self.sampler.sample(
                self.s_walk_busy_ppm,
                utilization_ppm(delta(walk, self.prev_walk_busy), walk_span),
            );
            self.prev_walk_busy = walk;
            let media = dev.media_busy_time();
            self.sampler.sample(
                self.s_media_util,
                utilization_ppm(delta(media, self.prev_media_busy), interval),
            );
            self.prev_media_busy = media;
            let (up, down) = dev.link_busy_time();
            self.sampler.sample(
                self.s_link_up,
                utilization_ppm(delta(up, self.prev_link_up), interval),
            );
            self.prev_link_up = up;
            self.sampler.sample(
                self.s_link_down,
                utilization_ppm(delta(down, self.prev_link_down), interval),
            );
            self.prev_link_down = down;

            self.sampler.sample(self.s_rewalks, self.rewalk_count);
            let rewalk_p99 = if self.rewalk_hist.count() == 0 {
                0
            } else {
                self.rewalk_hist.percentile(99.0)
            };
            self.sampler.sample(self.s_rewalk_p99, rewalk_p99);
            self.rewalk_hist.reset();

            for vf in self.vfs.iter_mut().flatten() {
                self.sampler.sample(vf.requests, vf.raw_requests);
                self.sampler.sample(vf.bytes, vf.raw_bytes);
                let (p50, p99) = if vf.hist.count() == 0 {
                    (0, 0)
                } else {
                    vf.hist.percentile_pair(50.0, 99.0)
                };
                self.sampler.sample(vf.p50, p50);
                self.sampler.sample(vf.p99, p99);
                vf.hist.reset();
                if let Some((id, func)) = vf.ring {
                    self.sampler.sample(id, dev.ring_depth(func) as u64);
                }
            }
            self.watchdog.evaluate(&self.sampler, tracer);
            if self.flight.is_enabled() {
                let window = self.sampler.closed_windows().saturating_sub(1);
                self.flight.close_window(end.as_nanos(), window, tracer);
                self.note_anomalies(end);
            }
        }
        self.next_due_ns = self
            .sampler
            .window_end(self.sampler.closed_windows())
            .as_nanos();
    }

    /// Mirrors watchdog anomalies the recorder has not seen yet into the
    /// flight ring, and snapshots the forensic dump when the first one
    /// fires — after the window's exemplar fold, so the dump holds the
    /// breaching window's worst requests.
    fn note_anomalies(&mut self, end: SimTime) {
        let anomalies = self.watchdog.anomalies();
        if anomalies.len() <= self.anomaly_seen {
            return;
        }
        let first_new = self.anomaly_seen;
        for a in &anomalies[self.anomaly_seen..] {
            self.flight.append(
                end,
                FlightEventKind::Anomaly,
                0,
                a.rule_index as u64,
                a.window,
            );
        }
        self.anomaly_seen = anomalies.len();
        if self.forensic.is_none() {
            if let Some(first) = self.watchdog.anomalies().get(first_new) {
                let first = first.clone();
                let dump = self.forensic_json(&first);
                self.forensic = Some(dump);
            }
        }
    }

    /// Assembles the deterministic forensic dump: the triggering anomaly,
    /// the active window series, and the flight ring + exemplars as of
    /// the breach.
    fn forensic_json(&self, a: &AnomalyEvent) -> serde_json::Value {
        serde_json::json!({
            "anomaly": {
                "rule": a.rule.clone(),
                "rule_index": a.rule_index,
                "text": a.text.clone(),
                "series": a.series.clone(),
                "window": a.window,
                "at_ns": a.at.as_nanos(),
                "value": a.value,
                "consecutive": a.consecutive,
            },
            "series": series_json(&self.sampler),
            "flight": self.flight.snapshot_json(),
        })
    }

    /// The sampler (series, windows, exporters).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The watchdog (rules and recorded anomalies).
    pub fn watchdog(&self) -> &SloWatchdog {
        &self.watchdog
    }

    /// All anomalies recorded so far, in emission order.
    pub fn anomalies(&self) -> &[AnomalyEvent] {
        self.watchdog.anomalies()
    }

    /// The flight-recorder handle (disabled unless configured). The
    /// system clones this into the device so every layer records into
    /// one ring.
    pub fn flight(&self) -> &FlightHandle {
        &self.flight
    }

    /// The forensic dump captured when the watchdog first fired, if any.
    pub fn forensic_dump(&self) -> Option<&serde_json::Value> {
        self.forensic.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use nesc_sim::perfmon;

    fn run_workload(mut sys: System) -> System {
        let a = sys.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
        let b = sys.quick_disk(DiskKind::Virtio, "b.img", 1 << 20).disk;
        let mut out = [0u8; 2048];
        for i in 0..24u64 {
            sys.write(a, (i % 8) * 4096, &[i as u8; 4096]);
            sys.read(b, 0, &mut out);
            sys.think(SimDuration::from_micros(5));
        }
        // Idle past the open window so the last observations are committed
        // before the partial window is dropped.
        sys.think(SimDuration::from_micros(50));
        sys.telemetry_finish();
        sys
    }

    fn telemetry_system() -> System {
        SystemBuilder::new()
            .capacity_blocks(64 * 1024)
            .telemetry(TelemetryConfig::windowed(SimDuration::from_micros(25)).capacity(4096))
            .build()
    }

    #[test]
    fn probes_cover_every_layer() {
        let sys = run_workload(telemetry_system());
        let sampler = sys.telemetry().unwrap().sampler();
        assert!(sampler.closed_windows() > 2, "workload spans windows");
        for name in [
            "core.btlb_lookups",
            "core.btlb_hits",
            "core.btlb_hit_ppm",
            "core.walk_busy_ppm",
            "core.miss_interrupts",
            "core.ring_depth.f1",
            "storage.media_util_ppm",
            "pcie.link_up_util_ppm",
            "pcie.link_down_util_ppm",
            "hv.vf0.requests",
            "hv.vf0.bytes",
            "hv.vf0.p50_ns",
            "hv.vf0.p99_ns",
            "hv.vf1.requests",
            "hv.rewalks",
            "hv.rewalk_p99_ns",
        ] {
            let s = sampler.series_by_name(name).unwrap_or_else(|| {
                panic!("series {name} missing");
            });
            assert!(!s.is_empty(), "series {name} never sampled");
        }
        // Per-VF counters account for the whole workload: 24 writes of
        // 4 KiB on disk 0, 24 reads of 2 KiB on disk 1.
        let total = |name: &str| {
            sampler
                .series_by_name(name)
                .unwrap()
                .samples()
                .map(|(_, v)| v)
                .sum::<u64>()
        };
        assert_eq!(total("hv.vf0.requests"), 24);
        assert_eq!(total("hv.vf0.bytes"), 24 * 4096);
        assert_eq!(total("hv.vf1.requests"), 24);
        // The direct path exercised the BTLB; hits were recorded.
        assert!(total("core.btlb_lookups") > 0);
        assert_eq!(
            total("core.btlb_lookups"),
            sys.device().stats().btlb_lookups
        );
    }

    #[test]
    fn telemetry_is_deterministic_across_runs() {
        let a = run_workload(telemetry_system());
        let b = run_workload(telemetry_system());
        let (sa, sb) = (
            a.telemetry().unwrap().sampler(),
            b.telemetry().unwrap().sampler(),
        );
        assert_eq!(perfmon::digest_hash(sa), perfmon::digest_hash(sb));
        assert_eq!(perfmon::series_json(sa), perfmon::series_json(sb));
    }

    #[test]
    fn telemetry_does_not_perturb_timing() {
        let mut plain = SystemBuilder::new().capacity_blocks(64 * 1024).build();
        let mut instr = telemetry_system();
        let dp = plain
            .quick_disk(DiskKind::NescDirect, "a.img", 1 << 20)
            .disk;
        let di = instr
            .quick_disk(DiskKind::NescDirect, "a.img", 1 << 20)
            .disk;
        for i in 0..16u64 {
            let lp = plain.write(dp, i * 4096, &[3u8; 4096]);
            let li = instr.write(di, i * 4096, &[3u8; 4096]);
            assert_eq!(lp, li, "telemetry must be timing-invisible");
        }
    }

    #[test]
    fn watchdog_rule_fires_through_the_system() {
        let cfg = TelemetryConfig::windowed(SimDuration::from_micros(25))
            .rule_text("hv.vf0.requests above 0 for 3");
        let mut sys = SystemBuilder::new()
            .capacity_blocks(64 * 1024)
            .telemetry(cfg)
            .build();
        let d = sys.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
        for i in 0..40u64 {
            sys.write(d, (i % 16) * 4096, &[1u8; 4096]);
            sys.think(SimDuration::from_micros(10));
        }
        sys.telemetry_finish();
        let anomalies = sys.telemetry().unwrap().anomalies();
        assert!(
            !anomalies.is_empty(),
            "sustained traffic must trip the rule"
        );
        assert_eq!(anomalies[0].consecutive, 3);
        assert_eq!(anomalies[0].series, "hv.vf0.requests");
    }

    #[test]
    fn flight_recorder_captures_events_exemplars_and_a_dump() {
        let cfg = TelemetryConfig::windowed(SimDuration::from_micros(25))
            .rule_text("hv.vf0.requests above 0 for 3")
            .flight(FlightConfig::default());
        let mut sys = SystemBuilder::new()
            .capacity_blocks(64 * 1024)
            .tracing(true)
            .telemetry(cfg)
            .build();
        let d = sys.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
        for i in 0..40u64 {
            sys.write(d, (i % 16) * 4096, &[1u8; 4096]);
            sys.think(SimDuration::from_micros(10));
        }
        sys.telemetry_finish();
        let tel = sys.telemetry().unwrap();
        assert!(!tel.anomalies().is_empty(), "rule must fire");
        let fl = tel.flight();
        assert!(fl.is_enabled());
        assert!(fl.with(|r| r.total()).unwrap() > 0, "ring recorded events");
        let exemplars_with_spans = fl
            .with(|r| r.exemplars().iter().filter(|e| !e.spans.is_empty()).count())
            .unwrap();
        assert!(
            exemplars_with_spans > 0,
            "tracing is on, so exemplars keep span trees"
        );
        let dump = tel.forensic_dump().expect("first anomaly captured a dump");
        for key in ["anomaly", "series", "flight"] {
            assert!(dump.get(key).is_some(), "dump missing {key}");
        }
    }

    #[test]
    fn flight_recorder_does_not_perturb_timing() {
        let mut plain = telemetry_system();
        let mut instr = SystemBuilder::new()
            .capacity_blocks(64 * 1024)
            .telemetry(
                TelemetryConfig::windowed(SimDuration::from_micros(25))
                    .capacity(4096)
                    .flight(FlightConfig::default()),
            )
            .build();
        let dp = plain
            .quick_disk(DiskKind::NescDirect, "a.img", 1 << 20)
            .disk;
        let di = instr
            .quick_disk(DiskKind::NescDirect, "a.img", 1 << 20)
            .disk;
        for i in 0..16u64 {
            let lp = plain.write(dp, i * 4096, &[3u8; 4096]);
            let li = instr.write(di, i * 4096, &[3u8; 4096]);
            assert_eq!(lp, li, "the recorder must be timing-invisible");
        }
    }

    #[test]
    fn late_attach_registers_series() {
        let mut sys = telemetry_system();
        let a = sys.quick_disk(DiskKind::NescDirect, "a.img", 1 << 20).disk;
        for _ in 0..8 {
            sys.write(a, 0, &[1u8; 1024]);
            sys.think(SimDuration::from_micros(30));
        }
        // Attach a second disk after several windows have closed.
        let b = sys.quick_disk(DiskKind::NescDirect, "b.img", 1 << 20).disk;
        sys.write(b, 0, &[2u8; 1024]);
        sys.think(SimDuration::from_micros(60));
        sys.telemetry_finish();
        let sampler = sys.telemetry().unwrap().sampler();
        let s = sampler.series_by_name("hv.vf1.requests").unwrap();
        assert!(s.first_window() > 0, "late series starts late");
        assert_eq!(s.samples().map(|(_, v)| v).sum::<u64>(), 1);
        let _ = (a, b);
    }
}
