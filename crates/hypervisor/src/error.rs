//! The unified error type of the public I/O surface.

use std::fmt;

use nesc_core::CompletionStatus;

/// Why a [`System`](crate::System) I/O call failed.
///
/// Every fallible public I/O entry point (`try_read`, `try_write`, and the
/// guest-filesystem layer above them) reports this one enum instead of
/// leaking the device's raw [`CompletionStatus`]; the conversion is exact
/// for every non-`Ok` status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NescError {
    /// The hypervisor could not allocate backing space for a write
    /// (quota exhausted / device full) — the paper's write-failure
    /// interrupt surfacing to the guest.
    WriteFailed,
    /// The request addressed blocks beyond the virtual device size.
    OutOfRange,
    /// Device-level failure: corrupt extent tree, a detached disk, or a
    /// request to a dead function.
    Device,
    /// A guest-supplied value failed its bounds proof at the trust
    /// boundary (out-of-range LBA, wrapping length, bad doorbell, …). The
    /// inner fault says exactly which proof failed.
    Guest(nesc_extent::GuestFault),
}

impl NescError {
    /// Maps a device completion status to the public error; `Ok` maps to
    /// `None` (not an error).
    pub fn from_status(status: CompletionStatus) -> Option<NescError> {
        match status {
            CompletionStatus::Ok => None,
            CompletionStatus::WriteFailed => Some(NescError::WriteFailed),
            CompletionStatus::OutOfRange => Some(NescError::OutOfRange),
            CompletionStatus::DeviceError => Some(NescError::Device),
        }
    }
}

// The lower-layer error enums collapse into the three public categories
// here, at the hypervisor boundary, so `?` threads typed errors through
// the whole data path without the callers ever seeing crate internals.
// (The layering DAG keeps nvme out of this crate, so `NvmeError` has no
// impl — NVMe completions reach the guest as status codes, not errors.)

impl From<nesc_fs::FsError> for NescError {
    fn from(e: nesc_fs::FsError) -> Self {
        match e {
            nesc_fs::FsError::NoSpace { .. } => NescError::WriteFailed,
            _ => NescError::Device,
        }
    }
}

impl From<nesc_storage::StoreError> for NescError {
    fn from(e: nesc_storage::StoreError) -> Self {
        match e {
            nesc_storage::StoreError::OutOfRange { .. } => NescError::OutOfRange,
            _ => NescError::Device,
        }
    }
}

impl From<nesc_core::VfError> for NescError {
    fn from(_: nesc_core::VfError) -> Self {
        NescError::Device
    }
}

impl From<nesc_virtio::QueueError> for NescError {
    fn from(_: nesc_virtio::QueueError) -> Self {
        NescError::Device
    }
}

impl From<nesc_extent::GuestFault> for NescError {
    fn from(e: nesc_extent::GuestFault) -> Self {
        NescError::Guest(e)
    }
}

impl fmt::Display for NescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NescError::WriteFailed => {
                write!(f, "write failed: the hypervisor could not back the range")
            }
            NescError::OutOfRange => write!(f, "request beyond the virtual device size"),
            NescError::Device => write!(f, "device error"),
            NescError::Guest(fault) => write!(f, "guest input rejected: {fault}"),
        }
    }
}

impl std::error::Error for NescError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_is_total() {
        assert_eq!(NescError::from_status(CompletionStatus::Ok), None);
        assert_eq!(
            NescError::from_status(CompletionStatus::WriteFailed),
            Some(NescError::WriteFailed)
        );
        assert_eq!(
            NescError::from_status(CompletionStatus::OutOfRange),
            Some(NescError::OutOfRange)
        );
        assert_eq!(
            NescError::from_status(CompletionStatus::DeviceError),
            Some(NescError::Device)
        );
    }

    #[test]
    fn display_is_human_readable() {
        assert!(NescError::WriteFailed
            .to_string()
            .contains("back the range"));
        assert!(NescError::OutOfRange.to_string().contains("device size"));
    }
}
