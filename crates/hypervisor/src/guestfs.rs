//! The guest's own filesystem on its virtual disk.
//!
//! Every benchmark in the paper "used the virtual device through an
//! underlying ext4 filesystem" in the guest (§VI), and Fig. 11 measures
//! precisely the overhead that guest filesystem adds on each path. This
//! module runs the same extent-based filesystem the host uses (crate
//! `nesc-fs`) *inside* the guest, over any attached virtual disk — the
//! *nested filesystem* arrangement.
//!
//! Costs charged per operation:
//!
//! * guest filesystem CPU (allocation, journal bookkeeping) on the vCPU;
//! * the data I/O itself, issued run-by-run to the virtual disk;
//! * when metadata changed, a journal descriptor + commit-block write into
//!   the disk's reserved metadata region — the writes whose cost gets
//!   amplified ~4× when each of them has to cross the virtio path instead
//!   of a directly-assigned VF (the heart of Fig. 11).
//!
//! The *nested journaling* remedy the paper discusses (§IV-D) is exposed
//! as [`GuestFilesystem::set_journal_data`]: with data journaling on, data
//! is written twice (journal + home location), which the nested-journaling
//! ablation uses.

use nesc_extent::Vlba;
use nesc_fs::{Filesystem, FsError, Ino};
use nesc_sim::SimDuration;
use nesc_storage::BLOCK_SIZE;

use crate::system::{DiskId, System, VmId};

/// A guest-side filesystem mounted on a virtual disk.
#[derive(Debug)]
pub struct GuestFilesystem {
    fs: Filesystem,
    vm: VmId,
    disk: DiskId,
    /// Rotating cursor within the reserved metadata region for journal
    /// writes.
    journal_cursor: u64,
    journal_area_blocks: u64,
    /// If true, file data is also journaled (ext4 `data=journal`), the
    /// doubly-logging configuration nested journaling warns about.
    journal_data: bool,
}

impl GuestFilesystem {
    /// Formats a filesystem over the whole virtual disk (`mkfs` in the
    /// guest).
    pub fn mkfs(system: &System, vm: VmId, disk: DiskId) -> Self {
        let blocks = system.disk_size_blocks(disk);
        let fs = Filesystem::format(blocks);
        let journal_area_blocks = fs.metadata_blocks();
        GuestFilesystem {
            fs,
            vm,
            disk,
            journal_cursor: 1,
            journal_area_blocks,
            journal_data: false,
        }
    }

    /// Enables/disables guest data journaling (`data=journal` vs the
    /// default `data=ordered`).
    pub fn set_journal_data(&mut self, on: bool) {
        self.journal_data = on;
    }

    /// The wrapped filesystem (metadata inspection in tests).
    pub fn fs(&self) -> &Filesystem {
        &self.fs
    }

    /// The VM this filesystem runs in.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The virtual disk it is mounted on.
    pub fn disk(&self) -> DiskId {
        self.disk
    }

    /// Creates a file.
    ///
    /// # Errors
    ///
    /// Propagates [`FsError`] (duplicate names).
    pub fn create(&mut self, system: &mut System, name: &str) -> Result<Ino, FsError> {
        let ino = self.fs.create(name)?;
        system.charge_vcpu(self.vm, system.costs().guest_fs_op_cpu);
        self.commit_journal(system, 64);
        Ok(ino)
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates [`FsError::NotFound`].
    pub fn unlink(&mut self, system: &mut System, name: &str) -> Result<(), FsError> {
        self.fs.unlink(name)?;
        system.charge_vcpu(self.vm, system.costs().guest_fs_op_cpu);
        self.commit_journal(system, 64);
        Ok(())
    }

    /// Looks a file up.
    pub fn lookup(&self, name: &str) -> Option<Ino> {
        self.fs.lookup(name)
    }

    /// File size in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] for stale inodes.
    pub fn size_bytes(&self, ino: Ino) -> Result<u64, FsError> {
        self.fs.size_bytes(ino)
    }

    /// Writes through the filesystem: allocation + data I/O + journal
    /// commit. Returns the operation's total latency.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures ([`FsError::NoSpace`]).
    pub fn write(
        &mut self,
        system: &mut System,
        ino: Ino,
        offset: u64,
        data: &[u8],
    ) -> Result<SimDuration, FsError> {
        let start = system.now();
        // Filesystem CPU: mapping lookup, allocator, journal bookkeeping.
        system.charge_vcpu(self.vm, system.costs().guest_fs_op_cpu);
        // Allocate (lazily) the covering blocks inside the guest FS.
        let first = offset / BLOCK_SIZE;
        let last = (offset + data.len().max(1) as u64 - 1) / BLOCK_SIZE;
        let stats = self.fs.allocate_range(ino, Vlba(first), last - first + 1)?;
        // Grow the size when writing past EOF (journaled metadata).
        let end = offset + data.len() as u64;
        let mut journal_bytes = stats.journal_bytes;
        if end > self.fs.size_bytes(ino)? {
            journal_bytes += self.fs.truncate(ino, end)?.journal_bytes;
        }
        // Data I/O, one virtual-disk write per physically-contiguous run.
        let mut cursor = 0usize;
        while cursor < data.len() {
            let file_block = (offset + cursor as u64) / BLOCK_SIZE;
            // allocate_range succeeded above, so the block is mapped and
            // covered; losing it mid-write is map corruption.
            let e = self
                .fs
                .extent_tree(ino)?
                .lookup(Vlba(file_block))
                .ok_or(FsError::BadInode { ino })?;
            let run_end_byte = e.end_logical().byte_offset();
            let n = ((run_end_byte - (offset + cursor as u64)) as usize).min(data.len() - cursor);
            let disk_byte = e
                .translate(Vlba(file_block))
                .ok_or(FsError::BadInode { ino })?
                .byte_offset()
                + (offset + cursor as u64) % BLOCK_SIZE;
            system.write(self.disk, disk_byte, &data[cursor..cursor + n]);
            cursor += n;
        }
        // Data journaling doubles the data write.
        if self.journal_data {
            self.journal_write(system, data.len() as u64);
        }
        // Metadata journal: descriptor + commit block when anything
        // changed.
        if journal_bytes > 0 {
            self.commit_journal(system, journal_bytes);
        }
        Ok(system.now() - start)
    }

    /// Reads through the filesystem; holes return zeros without touching
    /// the disk. Returns `(data, latency)`.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] for stale inodes.
    pub fn read(
        &mut self,
        system: &mut System,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> Result<(Vec<u8>, SimDuration), FsError> {
        let start = system.now();
        system.charge_vcpu(self.vm, system.costs().guest_fs_op_cpu / 2);
        let size = self.fs.size_bytes(ino)?;
        if offset >= size {
            return Ok((Vec::new(), system.now() - start));
        }
        let len = len.min((size - offset) as usize);
        let mut out = vec![0u8; len];
        let mut cursor = 0usize;
        while cursor < len {
            let file_block = (offset + cursor as u64) / BLOCK_SIZE;
            match self.fs.extent_tree(ino)?.lookup(Vlba(file_block)) {
                Some(e) => {
                    let run_end_byte = e.end_logical().byte_offset();
                    let n = ((run_end_byte - (offset + cursor as u64)) as usize).min(len - cursor);
                    let disk_byte = e
                        .translate(Vlba(file_block))
                        .ok_or(FsError::BadInode { ino })?
                        .byte_offset()
                        + (offset + cursor as u64) % BLOCK_SIZE;
                    system.read(self.disk, disk_byte, &mut out[cursor..cursor + n]);
                    cursor += n;
                }
                None => {
                    // Hole: zeros, no disk I/O.
                    let hole_end = (file_block + 1) * BLOCK_SIZE;
                    let n = ((hole_end - (offset + cursor as u64)) as usize).min(len - cursor);
                    cursor += n;
                }
            }
        }
        Ok((out, system.now() - start))
    }

    /// Journal commit: a descriptor write and a commit-block write into
    /// the reserved metadata region.
    fn commit_journal(&mut self, system: &mut System, bytes: u64) {
        // One descriptor block per 4 KiB of records (almost always one),
        // plus the commit block.
        let blocks = bytes.div_ceil(4096).max(1) + 1;
        for _ in 0..blocks {
            let jblock = Vlba(1 + (self.journal_cursor % (self.journal_area_blocks - 1)));
            self.journal_cursor += 1;
            system.write(self.disk, jblock.byte_offset(), &[0u8; BLOCK_SIZE as usize]);
        }
    }

    /// Data-journal write of `bytes` into the journal region.
    fn journal_write(&mut self, system: &mut System, bytes: u64) {
        let blocks = bytes.div_ceil(BLOCK_SIZE).max(1);
        for _ in 0..blocks {
            let jblock = Vlba(1 + (self.journal_cursor % (self.journal_area_blocks - 1)));
            self.journal_cursor += 1;
            system.write(self.disk, jblock.byte_offset(), &[0u8; BLOCK_SIZE as usize]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::SoftwareCosts;
    use crate::system::{DiskKind, ProvisionedDisk};
    use nesc_core::NescConfig;

    fn system() -> System {
        let mut cfg = NescConfig::prototype();
        cfg.capacity_blocks = 64 * 1024;
        System::new(cfg, SoftwareCosts::calibrated())
    }

    #[test]
    fn guest_fs_roundtrip_over_direct_disk() {
        let mut sys = system();
        let ProvisionedDisk { vm, disk, .. } =
            sys.quick_disk(DiskKind::NescDirect, "g.img", 8 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        let f = gfs.create(&mut sys, "hello.txt").unwrap();
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        gfs.write(&mut sys, f, 123, &data).unwrap();
        let (got, _) = gfs.read(&mut sys, f, 123, data.len()).unwrap();
        assert_eq!(got, data);
        assert_eq!(gfs.size_bytes(f).unwrap(), 123 + data.len() as u64);
    }

    #[test]
    fn fs_overhead_smaller_on_direct_than_virtio() {
        // The essence of Fig. 11: the same guest filesystem costs much
        // more over virtio because its journal writes cross the slow path.
        let mut overhead = Vec::new();
        for (kind, name) in [(DiskKind::NescDirect, "d.img"), (DiskKind::Virtio, "v.img")] {
            let mut sys = system();
            let ProvisionedDisk { vm, disk, .. } = sys.quick_disk(kind, name, 8 << 20);
            // Raw write latency (steady state).
            sys.write(disk, 1 << 20, &[0u8; 4096]);
            let raw = sys.write(disk, 1 << 20, &[1u8; 4096]);
            // Filesystem write latency (allocating fresh blocks so the
            // journal is active, as in the paper's measurement).
            let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
            let f = gfs.create(&mut sys, "x").unwrap();
            let fs_lat = gfs.write(&mut sys, f, 0, &[2u8; 4096]).unwrap();
            overhead.push((fs_lat - raw.min(fs_lat)).as_micros_f64());
        }
        let (direct, virtio) = (overhead[0], overhead[1]);
        assert!(
            virtio > direct * 2.5,
            "virtio FS overhead ({virtio:.0}us) must dwarf direct ({direct:.0}us)"
        );
        // Magnitudes in the Fig. 11 ballpark.
        assert!(
            (10.0..120.0).contains(&direct),
            "direct overhead {direct:.0}us"
        );
        assert!(
            (80.0..400.0).contains(&virtio),
            "virtio overhead {virtio:.0}us"
        );
    }

    #[test]
    fn data_journaling_doubles_data_writes() {
        let mut sys = system();
        let ProvisionedDisk { vm, disk, .. } =
            sys.quick_disk(DiskKind::NescDirect, "j.img", 8 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        gfs.set_journal_data(true);
        let f = gfs.create(&mut sys, "x").unwrap();
        let with_dj = gfs.write(&mut sys, f, 0, &[0u8; 16384]).unwrap();

        let mut sys2 = system();
        let ProvisionedDisk {
            vm: vm2,
            disk: disk2,
            ..
        } = sys2.quick_disk(DiskKind::NescDirect, "j2.img", 8 << 20);
        let mut gfs2 = GuestFilesystem::mkfs(&sys2, vm2, disk2);
        let f2 = gfs2.create(&mut sys2, "x").unwrap();
        let without = gfs2.write(&mut sys2, f2, 0, &[0u8; 16384]).unwrap();
        assert!(
            with_dj > without + SimDuration::from_micros(10),
            "data journaling must cost extra ({with_dj} vs {without})"
        );
    }

    #[test]
    fn holes_read_zero_without_io() {
        let mut sys = system();
        let ProvisionedDisk { vm, disk, .. } =
            sys.quick_disk(DiskKind::NescDirect, "h.img", 8 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        let f = gfs.create(&mut sys, "sparse").unwrap();
        gfs.write(&mut sys, f, 100 * BLOCK_SIZE, b"tail").unwrap();
        let before = sys.device().stats().blocks_read;
        let (got, _) = gfs.read(&mut sys, f, 0, 4096).unwrap();
        assert!(got.iter().all(|&b| b == 0));
        assert_eq!(
            sys.device().stats().blocks_read,
            before,
            "no device reads for holes"
        );
    }

    #[test]
    fn unlink_then_lookup_fails() {
        let mut sys = system();
        let ProvisionedDisk { vm, disk, .. } =
            sys.quick_disk(DiskKind::NescDirect, "u.img", 8 << 20);
        let mut gfs = GuestFilesystem::mkfs(&sys, vm, disk);
        gfs.create(&mut sys, "a").unwrap();
        assert!(gfs.lookup("a").is_some());
        gfs.unlink(&mut sys, "a").unwrap();
        assert!(gfs.lookup("a").is_none());
        assert!(gfs.unlink(&mut sys, "a").is_err());
    }
}
