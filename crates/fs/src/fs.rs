//! The filesystem proper.
//!
//! [`Filesystem`] combines the allocator, inode table, namespace and
//! journal into the ext4-flavoured substrate the hypervisor runs on. The
//! pieces NeSC interacts with are:
//!
//! * [`Filesystem::extent_tree`] — the fiemap-style query the hypervisor
//!   uses to build a VF's tree when exporting a file as a virtual disk;
//! * [`Filesystem::allocate_range`] — the allocation path the NeSC
//!   write-miss interrupt handler invokes before signalling `RewalkTree`;
//! * lazy allocation and hole semantics — reads of unwritten ranges return
//!   zeros, matching what the device's zero-fill DMA produces.

use std::collections::BTreeMap;
use std::fmt;

use nesc_extent::{ExtentMapping, ExtentTree, InsertError, Plba, Vlba};
use nesc_storage::BLOCK_SIZE;

use crate::alloc::{AllocError, BitmapAllocator, Run};
use crate::inode::Inode;
use crate::io::{BlockIo, IoError};
use crate::journal::{CommitInfo, Journal, JournalRecord};

/// An inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u32);

impl fmt::Display for Ino {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino{}", self.0)
    }
}

/// Filesystem operation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file by that name.
    NotFound {
        /// The name looked up.
        name: String,
    },
    /// A file by that name already exists.
    Exists {
        /// The conflicting name.
        name: String,
    },
    /// The inode number is not live.
    BadInode {
        /// The offending inode number.
        ino: Ino,
    },
    /// The device is out of blocks (or quota).
    NoSpace {
        /// Blocks requested.
        requested: u64,
        /// Blocks free.
        free: u64,
    },
    /// The underlying device failed.
    Io(IoError),
    /// An extent insert collided with a live mapping — the extent map is
    /// inconsistent with the allocator.
    Mapping(InsertError),
    /// A block that must be mapped (its range was just allocated) is not.
    Unmapped {
        /// The inode whose map lost the range.
        ino: Ino,
        /// The unmapped file block.
        vlba: Vlba,
    },
}

impl From<InsertError> for FsError {
    fn from(e: InsertError) -> Self {
        FsError::Mapping(e)
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound { name } => write!(f, "no such file: {name}"),
            FsError::Exists { name } => write!(f, "file exists: {name}"),
            FsError::BadInode { ino } => write!(f, "stale inode: {ino}"),
            FsError::NoSpace { requested, free } => {
                write!(f, "no space: requested {requested} blocks, {free} free")
            }
            FsError::Io(e) => write!(f, "I/O error: {e}"),
            FsError::Mapping(e) => write!(f, "extent map inconsistency: {e}"),
            FsError::Unmapped { ino, vlba } => {
                write!(f, "allocated range lost from {ino} at {vlba}")
            }
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for FsError {
    fn from(e: IoError) -> Self {
        FsError::Io(e)
    }
}

impl From<AllocError> for FsError {
    fn from(e: AllocError) -> Self {
        let AllocError::NoSpace { requested, free } = e;
        FsError::NoSpace { requested, free }
    }
}

/// Cost accounting returned by mutating operations, consumed by the timing
/// model (journal bytes become journal-write time; allocated blocks become
/// allocator CPU time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Blocks newly allocated by this operation.
    pub allocated_blocks: u64,
    /// Journal bytes committed by this operation.
    pub journal_bytes: u64,
}

/// An extent-based filesystem over any [`BlockIo`] device.
///
/// # Example
///
/// ```
/// use nesc_fs::Filesystem;
/// use nesc_storage::BlockStore;
///
/// let mut store = BlockStore::new(4096); // 4 MiB device
/// let mut fs = Filesystem::format(store.capacity_blocks());
/// let ino = fs.create("disk.img").unwrap();
/// fs.write(&mut store, ino, 0, b"hello world").unwrap();
/// assert_eq!(fs.read(&mut store, ino, 0, 11).unwrap(), b"hello world");
/// assert_eq!(fs.size_bytes(ino).unwrap(), 11);
/// ```
#[derive(Debug)]
pub struct Filesystem {
    allocator: BitmapAllocator,
    inodes: BTreeMap<Ino, Inode>,
    names: BTreeMap<String, Ino>,
    journal: Journal,
    next_ino: u32,
    metadata_blocks: u64,
    /// Extra references to physical blocks shared by deduplication:
    /// `plba -> sharers beyond the first`. Absent means exclusively owned.
    shared: BTreeMap<Plba, u32>,
}

impl Filesystem {
    /// Formats a filesystem over `capacity_blocks` blocks, reserving a
    /// small metadata region at the front (superblock, inode table,
    /// journal area) like a real mkfs. A device too small for the nominal
    /// metadata region (a contract violation: systems are built with
    /// thousands of blocks) shrinks the region to leave at least one data
    /// block.
    pub fn format(capacity_blocks: u64) -> Self {
        let metadata_blocks = (capacity_blocks / 64)
            .clamp(16, 4096)
            .min(capacity_blocks.saturating_sub(1));
        debug_assert!(
            capacity_blocks > metadata_blocks,
            "device too small: {capacity_blocks} blocks"
        );
        let mut allocator = BitmapAllocator::new(capacity_blocks);
        allocator.reserve(Run::prefix(metadata_blocks));
        Filesystem {
            allocator,
            inodes: BTreeMap::new(),
            names: BTreeMap::new(),
            journal: Journal::new(),
            next_ino: 1,
            metadata_blocks,
            shared: BTreeMap::new(),
        }
    }

    /// Marks a physical block as having one more sharer (deduplication).
    pub(crate) fn share_block(&mut self, p: Plba) {
        *self.shared.entry(p).or_insert(0) += 1;
    }

    /// Whether a physical block is currently shared by multiple mappings.
    pub fn is_shared(&self, p: Plba) -> bool {
        self.shared.contains_key(&p)
    }

    /// Releases one reference to a physical block; frees it only when no
    /// sharer remains. Returns `true` if the block was actually freed.
    pub(crate) fn release_block(&mut self, p: Plba) -> bool {
        match self.shared.get_mut(&p) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.shared.remove(&p);
                }
                false
            }
            None => {
                self.allocator.free(Run { start: p, len: 1 });
                true
            }
        }
    }

    /// Releases every block of a run through the refcounting path.
    fn release_run(&mut self, run: Run) {
        for i in 0..run.len {
            self.release_block(run.start.offset(i));
        }
    }

    /// Mutable access to a file's extent tree (dedup remapping).
    pub(crate) fn extent_tree_mut(&mut self, ino: Ino) -> Result<&mut ExtentTree, FsError> {
        Ok(self.inode_mut(ino)?.extents_mut())
    }

    /// Blocks reserved for metadata at format time.
    pub fn metadata_blocks(&self) -> u64 {
        self.metadata_blocks
    }

    /// Free data blocks.
    pub fn free_blocks(&self) -> u64 {
        self.allocator.free_blocks()
    }

    /// The metadata journal (read-only; commits happen inside operations).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the name is taken.
    pub fn create(&mut self, name: &str) -> Result<Ino, FsError> {
        if self.names.contains_key(name) {
            return Err(FsError::Exists { name: name.into() });
        }
        let ino = Ino(self.next_ino);
        self.next_ino += 1;
        self.inodes.insert(ino, Inode::new());
        self.names.insert(name.into(), ino);
        self.journal.append(JournalRecord::Create {
            ino,
            name: name.into(),
        });
        self.journal.commit();
        Ok(ino)
    }

    /// Resolves a name.
    pub fn lookup(&self, name: &str) -> Option<Ino> {
        self.names.get(name).copied()
    }

    /// Names in the root directory, sorted.
    pub fn list(&self) -> Vec<&str> {
        self.names.keys().map(String::as_str).collect()
    }

    /// Removes a file and frees its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the name does not exist.
    pub fn unlink(&mut self, name: &str) -> Result<(), FsError> {
        let ino = self
            .names
            .remove(name)
            .ok_or_else(|| FsError::NotFound { name: name.into() })?;
        let inode = self.inodes.remove(&ino).expect("name table is consistent");
        let runs: Vec<Run> = inode
            .extents()
            .iter()
            .map(|e| Run {
                start: e.physical,
                len: e.len,
            })
            .collect();
        for run in runs {
            self.release_run(run);
        }
        self.journal
            .append(JournalRecord::Unlink { name: name.into() });
        self.journal.commit();
        Ok(())
    }

    fn inode(&self, ino: Ino) -> Result<&Inode, FsError> {
        self.inodes.get(&ino).ok_or(FsError::BadInode { ino })
    }

    fn inode_mut(&mut self, ino: Ino) -> Result<&mut Inode, FsError> {
        self.inodes.get_mut(&ino).ok_or(FsError::BadInode { ino })
    }

    /// Logical size of a file in bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] if the inode is not live.
    pub fn size_bytes(&self, ino: Ino) -> Result<u64, FsError> {
        Ok(self.inode(ino)?.size_bytes())
    }

    /// The file's extent tree — the fiemap query NeSC's VF-creation path
    /// uses.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] if the inode is not live.
    pub fn extent_tree(&self, ino: Ino) -> Result<&ExtentTree, FsError> {
        Ok(self.inode(ino)?.extents())
    }

    /// Sets the logical size without allocating (POSIX `ftruncate` up:
    /// the tail is a hole). Shrinking punches away blocks past the end.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] if the inode is not live.
    pub fn truncate(&mut self, ino: Ino, new_size: u64) -> Result<MutationStats, FsError> {
        let old_size = self.inode(ino)?.size_bytes();
        if new_size < old_size {
            let first_dead = new_size.div_ceil(BLOCK_SIZE);
            let last_old = old_size.div_ceil(BLOCK_SIZE);
            if last_old > first_dead {
                self.punch_hole_blocks(ino, Vlba(first_dead), last_old - first_dead)?;
            }
        }
        self.inode_mut(ino)?.set_size_bytes(new_size);
        self.journal.append(JournalRecord::SetSize {
            ino,
            size: new_size,
        });
        let bytes = self.journal.commit().map(|c| c.bytes).unwrap_or(0);
        Ok(MutationStats {
            allocated_blocks: 0,
            journal_bytes: bytes,
        })
    }

    /// Ensures file blocks `[start, start+blocks)` are allocated — the
    /// operation the hypervisor performs when NeSC raises a write-miss
    /// interrupt (paper Fig. 5b), and also the core of `fallocate`.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if the device cannot back the range;
    /// [`FsError::BadInode`] if the inode is not live.
    pub fn allocate_range(
        &mut self,
        ino: Ino,
        start: Vlba,
        blocks: u64,
    ) -> Result<MutationStats, FsError> {
        self.inode(ino)?;
        let mut allocated = 0u64;
        let mut v = start;
        let end = start.offset(blocks);
        while v < end {
            if let Some(e) = self.inode(ino)?.extents().lookup(v) {
                // Skip over the already-mapped stretch.
                v = e.end_logical().min(end);
                continue;
            }
            // Length of the unmapped stretch (up to end or next mapping).
            let mut run_len = 0u64;
            let mut probe = v;
            while probe < end && self.inode(ino)?.extents().lookup(probe).is_none() {
                run_len += 1;
                probe = probe.offset(1);
            }
            // Goal: extend the file contiguously after its previous block.
            let goal = if v.0 > 0 {
                self.inode(ino)?
                    .block_at(Vlba(v.0 - 1))
                    .map(|p| p.offset(1))
            } else {
                None
            };
            let runs = self.allocator.allocate(run_len, goal)?;
            let mut logical = v;
            for run in runs {
                let mapping = ExtentMapping::new(logical, run.start, run.len);
                self.inode_mut(ino)?.extents_mut().insert(mapping)?;
                self.journal
                    .append(JournalRecord::AddExtent { ino, mapping });
                logical = logical.offset(run.len);
                allocated += run.len;
            }
            v = probe;
        }
        let bytes = self.journal.commit().map(|c| c.bytes).unwrap_or(0);
        Ok(MutationStats {
            allocated_blocks: allocated,
            journal_bytes: bytes,
        })
    }

    /// Unmaps and frees file blocks `[start, start+blocks)`.
    fn punch_hole_blocks(&mut self, ino: Ino, start: Vlba, blocks: u64) -> Result<(), FsError> {
        // Collect the physical runs being dropped before mutating the tree.
        let mut freed: Vec<Run> = Vec::new();
        {
            let tree = self.inode(ino)?.extents();
            let end = start.offset(blocks);
            for e in tree.iter() {
                let lo = e.logical.max(start);
                let hi = e.end_logical().min(end);
                if lo < hi {
                    // lo is clamped inside the extent, so translate only
                    // fails on a corrupt mapping — skip the run (leaking
                    // the blocks) rather than killing the truncate path.
                    let p = e.translate(lo);
                    debug_assert!(p.is_some(), "lo within extent");
                    if let Some(p) = p {
                        freed.push(Run {
                            start: p,
                            len: hi.distance_from(lo),
                        });
                    }
                }
            }
        }
        self.inode_mut(ino)?
            .extents_mut()
            .remove_range(start, blocks);
        for run in freed {
            self.release_run(run);
        }
        self.journal
            .append(JournalRecord::RemoveRange { ino, start, blocks });
        Ok(())
    }

    /// Punches a hole (frees blocks, keeps the size) and commits.
    ///
    /// # Errors
    ///
    /// [`FsError::BadInode`] if the inode is not live.
    pub fn punch_hole(
        &mut self,
        ino: Ino,
        start: Vlba,
        blocks: u64,
    ) -> Result<MutationStats, FsError> {
        self.punch_hole_blocks(ino, start, blocks)?;
        let bytes = self.journal.commit().map(|c| c.bytes).unwrap_or(0);
        Ok(MutationStats {
            allocated_blocks: 0,
            journal_bytes: bytes,
        })
    }

    /// Writes `data` at byte `offset`, allocating lazily and extending the
    /// size as needed. Returns accounting for the timing model.
    ///
    /// # Errors
    ///
    /// [`FsError::NoSpace`] if allocation fails, [`FsError::Io`] if the
    /// device fails, [`FsError::BadInode`] if the inode is not live.
    pub fn write(
        &mut self,
        io: &mut dyn BlockIo,
        ino: Ino,
        offset: u64,
        data: &[u8],
    ) -> Result<MutationStats, FsError> {
        if data.is_empty() {
            return Ok(MutationStats::default());
        }
        let first_block = offset / BLOCK_SIZE;
        let last_block = (offset + data.len() as u64 - 1) / BLOCK_SIZE;
        let mut stats =
            self.allocate_range(ino, Vlba(first_block), last_block - first_block + 1)?;
        // Move the bytes, block by block (read-modify-write at the edges).
        let mut cursor = 0usize;
        for b in first_block..=last_block {
            // Copy-on-write: never overwrite a deduplicated shared block in
            // place — break the sharing first.
            let mapped = self.inode(ino)?.block_at(Vlba(b)).ok_or({
                // allocate_range succeeded above, so an unmapped block
                // means the extent map lost the range.
                FsError::Unmapped { ino, vlba: Vlba(b) }
            })?;
            let plba = if self.is_shared(mapped) {
                self.cow_block(io, ino, Vlba(b), mapped)?
            } else {
                mapped
            };
            let block_off = if b == first_block {
                (offset % BLOCK_SIZE) as usize
            } else {
                0
            };
            let n = ((BLOCK_SIZE as usize) - block_off).min(data.len() - cursor);
            if n == BLOCK_SIZE as usize {
                io.write_block(plba, &data[cursor..cursor + n])?;
            } else {
                let mut block = io.read_block(plba)?;
                block[block_off..block_off + n].copy_from_slice(&data[cursor..cursor + n]);
                io.write_block(plba, &block)?;
            }
            cursor += n;
        }
        // Grow the size if we wrote past EOF.
        let end = offset + data.len() as u64;
        if end > self.inode(ino)?.size_bytes() {
            self.inode_mut(ino)?.set_size_bytes(end);
            self.journal
                .append(JournalRecord::SetSize { ino, size: end });
            stats.journal_bytes += self.journal.commit().map(|c| c.bytes).unwrap_or(0);
        }
        Ok(stats)
    }

    /// Breaks a shared mapping: allocates a private block, copies the
    /// shared content into it, remaps the file block, and drops one share
    /// reference.
    fn cow_block(
        &mut self,
        io: &mut dyn BlockIo,
        ino: Ino,
        v: Vlba,
        shared: Plba,
    ) -> Result<Plba, FsError> {
        let fresh = self.allocator.allocate(1, Some(shared))?[0].start;
        let data = io.read_block(shared)?;
        io.write_block(fresh, &data)?;
        {
            let tree = self.inode_mut(ino)?.extents_mut();
            tree.remove_range(v, 1);
            tree.insert(ExtentMapping::new(v, fresh, 1))?;
        }
        self.release_block(shared);
        self.journal.append(JournalRecord::RemoveRange {
            ino,
            start: v,
            blocks: 1,
        });
        self.journal.append(JournalRecord::AddExtent {
            ino,
            mapping: ExtentMapping::new(v, fresh, 1),
        });
        Ok(fresh)
    }

    /// Reads up to `len` bytes at byte `offset`; holes read as zeros and
    /// the result is truncated at EOF (short reads past the end).
    ///
    /// # Errors
    ///
    /// [`FsError::Io`] if the device fails, [`FsError::BadInode`] if the
    /// inode is not live.
    pub fn read(
        &self,
        io: &mut dyn BlockIo,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        let size = self.inode(ino)?.size_bytes();
        if offset >= size {
            return Ok(Vec::new());
        }
        let len = len.min((size - offset) as usize);
        let mut out = Vec::with_capacity(len);
        let mut cursor = offset;
        while out.len() < len {
            let b = cursor / BLOCK_SIZE;
            let block_off = (cursor % BLOCK_SIZE) as usize;
            let n = ((BLOCK_SIZE as usize) - block_off).min(len - out.len());
            match self.inode(ino)?.block_at(Vlba(b)) {
                Some(plba) => {
                    let block = io.read_block(plba)?;
                    out.extend_from_slice(&block[block_off..block_off + n]);
                }
                None => out.extend(std::iter::repeat_n(0u8, n)),
            }
            cursor += n as u64;
        }
        Ok(out)
    }

    /// Reconstructs filesystem metadata by replaying a journal — the crash
    /// recovery path. Data block contents are *not* replayed (metadata
    /// journaling only, ext4 `data=ordered` semantics).
    pub fn replay(capacity_blocks: u64, journal: &Journal) -> Self {
        let mut fs = Filesystem::format(capacity_blocks);
        for rec in journal.committed_records() {
            match rec {
                JournalRecord::Create { ino, name } => {
                    fs.inodes.insert(*ino, Inode::new());
                    fs.names.insert(name.clone(), *ino);
                    fs.next_ino = fs.next_ino.max(ino.0 + 1);
                }
                JournalRecord::Unlink { name } => {
                    if let Some(ino) = fs.names.remove(name) {
                        if let Some(inode) = fs.inodes.remove(&ino) {
                            for e in inode.extents().iter() {
                                fs.allocator.free(Run {
                                    start: e.physical,
                                    len: e.len,
                                });
                            }
                        }
                    }
                }
                JournalRecord::SetSize { ino, size } => {
                    if let Some(inode) = fs.inodes.get_mut(ino) {
                        inode.set_size_bytes(*size);
                    }
                }
                JournalRecord::AddExtent { ino, mapping } => {
                    if let Some(inode) = fs.inodes.get_mut(ino) {
                        fs.allocator.reserve(Run {
                            start: mapping.physical,
                            len: mapping.len,
                        });
                        inode
                            .extents_mut()
                            .insert(*mapping)
                            .expect("journal extents are consistent");
                    }
                }
                JournalRecord::RemoveRange { ino, start, blocks } => {
                    if let Some(inode) = fs.inodes.get_mut(ino) {
                        let mut freed: Vec<Run> = Vec::new();
                        let end = start.offset(*blocks);
                        for e in inode.extents().iter() {
                            let lo = e.logical.max(*start);
                            let hi = e.end_logical().min(end);
                            if lo < hi {
                                freed.push(Run {
                                    start: e.translate(lo).expect("in range"),
                                    len: hi.distance_from(lo),
                                });
                            }
                        }
                        inode.extents_mut().remove_range(*start, *blocks);
                        for r in freed {
                            fs.allocator.free(r);
                        }
                    }
                }
            }
        }
        fs
    }
}

/// Reference to a committed transaction's cost, re-exported for harnesses.
pub type Commit = CommitInfo;

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_storage::BlockStore;
    use proptest::prelude::*;

    fn setup() -> (BlockStore, Filesystem) {
        let store = BlockStore::new(8192);
        let fs = Filesystem::format(8192);
        (store, fs)
    }

    #[test]
    fn create_lookup_unlink() {
        let (_, mut fs) = setup();
        let ino = fs.create("a").unwrap();
        assert_eq!(fs.lookup("a"), Some(ino));
        assert_eq!(fs.list(), vec!["a"]);
        assert!(matches!(fs.create("a"), Err(FsError::Exists { .. })));
        fs.unlink("a").unwrap();
        assert_eq!(fs.lookup("a"), None);
        assert!(matches!(fs.unlink("a"), Err(FsError::NotFound { .. })));
    }

    #[test]
    fn write_read_roundtrip_unaligned() {
        let (mut store, mut fs) = setup();
        let ino = fs.create("f").unwrap();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        fs.write(&mut store, ino, 777, &data).unwrap();
        assert_eq!(fs.read(&mut store, ino, 777, 5000).unwrap(), data);
        assert_eq!(fs.size_bytes(ino).unwrap(), 777 + 5000);
        // The leading gap is a hole of zeros.
        assert!(fs
            .read(&mut store, ino, 0, 777)
            .unwrap()
            .iter()
            .all(|&b| b == 0));
    }

    #[test]
    fn sparse_file_reads_zero_in_holes() {
        let (mut store, mut fs) = setup();
        let ino = fs.create("sparse").unwrap();
        fs.write(&mut store, ino, 100 * BLOCK_SIZE, b"tail")
            .unwrap();
        let hole = fs.read(&mut store, ino, 50 * BLOCK_SIZE, 1024).unwrap();
        assert!(hole.iter().all(|&b| b == 0));
        // Only the tail block is allocated.
        assert_eq!(fs.extent_tree(ino).unwrap().mapped_blocks(), 1);
    }

    #[test]
    fn read_past_eof_is_short() {
        let (mut store, mut fs) = setup();
        let ino = fs.create("f").unwrap();
        fs.write(&mut store, ino, 0, b"abc").unwrap();
        assert_eq!(fs.read(&mut store, ino, 0, 100).unwrap(), b"abc");
        assert!(fs.read(&mut store, ino, 10, 100).unwrap().is_empty());
    }

    #[test]
    fn sequential_writes_stay_contiguous() {
        let (mut store, mut fs) = setup();
        let ino = fs.create("big").unwrap();
        for i in 0..64u64 {
            fs.write(
                &mut store,
                ino,
                i * BLOCK_SIZE,
                &vec![i as u8; BLOCK_SIZE as usize],
            )
            .unwrap();
        }
        // The goal-directed allocator keeps a sequentially-written file in
        // one extent — the property that keeps NeSC trees shallow.
        assert_eq!(fs.extent_tree(ino).unwrap().extent_count(), 1);
    }

    #[test]
    fn truncate_frees_blocks() {
        let (mut store, mut fs) = setup();
        let ino = fs.create("t").unwrap();
        fs.write(&mut store, ino, 0, &vec![1u8; 10 * BLOCK_SIZE as usize])
            .unwrap();
        let free_before = fs.free_blocks();
        fs.truncate(ino, BLOCK_SIZE).unwrap();
        assert_eq!(fs.free_blocks(), free_before + 9);
        assert_eq!(fs.size_bytes(ino).unwrap(), BLOCK_SIZE);
        // Growing truncate leaves a hole.
        fs.truncate(ino, 100 * BLOCK_SIZE).unwrap();
        assert_eq!(fs.extent_tree(ino).unwrap().mapped_blocks(), 1);
    }

    #[test]
    fn unlink_returns_space() {
        let (mut store, mut fs) = setup();
        let before = fs.free_blocks();
        let ino = fs.create("f").unwrap();
        fs.write(&mut store, ino, 0, &vec![1u8; 32 * BLOCK_SIZE as usize])
            .unwrap();
        assert_eq!(fs.free_blocks(), before - 32);
        fs.unlink("f").unwrap();
        assert_eq!(fs.free_blocks(), before);
    }

    #[test]
    fn allocate_range_is_idempotent() {
        let (_, mut fs) = setup();
        let ino = fs.create("f").unwrap();
        let s1 = fs.allocate_range(ino, Vlba(0), 16).unwrap();
        assert_eq!(s1.allocated_blocks, 16);
        let s2 = fs.allocate_range(ino, Vlba(0), 16).unwrap();
        assert_eq!(s2.allocated_blocks, 0);
        assert_eq!(s2.journal_bytes, 0);
        // Partial overlap allocates only the gap.
        let s3 = fs.allocate_range(ino, Vlba(8), 16).unwrap();
        assert_eq!(s3.allocated_blocks, 8);
    }

    #[test]
    fn no_space_is_surfaced() {
        let mut fs = Filesystem::format(32);
        let ino = fs.create("f").unwrap();
        let err = fs.allocate_range(ino, Vlba(0), 1000).unwrap_err();
        assert!(matches!(err, FsError::NoSpace { .. }));
        assert!(err.to_string().contains("no space"));
    }

    #[test]
    fn journal_replay_reconstructs_metadata() {
        let (mut store, mut fs) = setup();
        let a = fs.create("a").unwrap();
        let b = fs.create("b").unwrap();
        fs.write(&mut store, a, 0, &vec![1u8; 5 * BLOCK_SIZE as usize])
            .unwrap();
        fs.write(&mut store, b, 3 * BLOCK_SIZE, b"xyz").unwrap();
        fs.unlink("a").unwrap();
        fs.truncate(b, 2 * BLOCK_SIZE).unwrap();

        let recovered = Filesystem::replay(8192, fs.journal());
        assert_eq!(recovered.lookup("a"), None);
        let rb = recovered.lookup("b").unwrap();
        assert_eq!(rb, b);
        assert_eq!(recovered.size_bytes(rb).unwrap(), 2 * BLOCK_SIZE);
        assert_eq!(
            recovered.extent_tree(rb).unwrap(),
            fs.extent_tree(b).unwrap()
        );
        assert_eq!(recovered.free_blocks(), fs.free_blocks());
    }

    #[test]
    fn stale_inode_rejected() {
        let (mut store, mut fs) = setup();
        let ino = fs.create("f").unwrap();
        fs.unlink("f").unwrap();
        assert!(matches!(
            fs.read(&mut store, ino, 0, 4),
            Err(FsError::BadInode { .. })
        ));
    }

    proptest! {
        /// Random writes at random offsets: the filesystem agrees with an
        /// in-memory reference file byte-for-byte.
        #[test]
        fn prop_matches_reference_file(
            writes in proptest::collection::vec((0u64..100_000, 1usize..3000, any::<u8>()), 1..40)
        ) {
            let mut store = BlockStore::new(8192);
            let mut fs = Filesystem::format(8192);
            let ino = fs.create("ref").unwrap();
            let mut reference: Vec<u8> = Vec::new();
            for &(off, len, byte) in &writes {
                let data = vec![byte; len];
                fs.write(&mut store, ino, off, &data).unwrap();
                let end = off as usize + len;
                if reference.len() < end {
                    reference.resize(end, 0);
                }
                reference[off as usize..end].copy_from_slice(&data);
            }
            prop_assert_eq!(fs.size_bytes(ino).unwrap(), reference.len() as u64);
            let got = fs.read(&mut store, ino, 0, reference.len()).unwrap();
            prop_assert_eq!(got, reference);
        }
    }
}
