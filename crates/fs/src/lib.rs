#![warn(missing_docs)]

//! Host filesystem substrate for the NeSC reproduction.
//!
//! NeSC is *filesystem-agnostic*, but it consumes something only a real
//! filesystem can produce: a per-file logical-to-physical extent mapping
//! ("this stage typically consists of translating the filesystem's own
//! per-file extent tree to the NeSC tree format", paper §IV-C). The
//! evaluation also runs every benchmark "through an underlying ext4
//! filesystem" on both the host and the guest.
//!
//! This crate is that substrate: an ext4-flavoured, extent-based filesystem
//! with
//!
//! * a bitmap **block allocator** ([`alloc`]) that serves contiguous runs
//!   with goal hints (so files are mostly-contiguous and extent trees stay
//!   shallow, exactly the property NeSC exploits);
//! * **inodes** whose file-offset→block mapping *is* an
//!   [`ExtentTree`][nesc_extent::ExtentTree] — `fiemap()` hands the mapping
//!   straight to the hypervisor for VF creation;
//! * **lazy allocation** and POSIX hole semantics (unwritten ranges read as
//!   zeros);
//! * a **metadata journal** ([`journal`]) with commit/checkpoint/replay,
//!   which both prices metadata updates for the timing model and lets the
//!   test suite exercise crash recovery and the paper's *nested journaling*
//!   discussion (§IV-D);
//! * a minimal flat **namespace** (create/lookup/unlink).
//!
//! Data moves through the [`BlockIo`] trait so the same filesystem code
//! runs over the raw device (hypervisor use) and over any virtual disk
//! (guest use).

pub mod alloc;
pub mod dedup;
pub mod fs;
pub mod inode;
pub mod io;
pub mod journal;

pub use alloc::BitmapAllocator;
pub use dedup::DedupReport;
pub use fs::{Filesystem, FsError, Ino};
pub use inode::Inode;
pub use io::{BlockIo, IoError};
pub use journal::{CommitInfo, Journal, JournalRecord};
