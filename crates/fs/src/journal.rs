//! Metadata journal.
//!
//! The filesystem journals metadata updates (allocations, size changes,
//! namespace edits) as ext4 does in its default `data=ordered` mode. The
//! journal plays two roles in the reproduction:
//!
//! 1. **Timing** — every committed transaction reports how many bytes of
//!    journal writes it caused, which the hypervisor model charges to the
//!    storage path (this is the "+40 µs per write" filesystem overhead of
//!    the paper's Fig. 11, and the doubled cost of *nested journaling* the
//!    paper discusses in §IV-D).
//! 2. **Correctness** — committed transactions survive a crash; a replay
//!    reconstructs the metadata exactly, which the crash-recovery tests
//!    verify.

use nesc_extent::{ExtentMapping, Vlba};

use crate::fs::Ino;

/// One journaled metadata mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A name was bound to a new inode.
    Create {
        /// New inode number.
        ino: Ino,
        /// Name bound in the root directory.
        name: String,
    },
    /// A name was removed and its inode freed.
    Unlink {
        /// Name removed.
        name: String,
    },
    /// An inode's logical size changed.
    SetSize {
        /// Target inode.
        ino: Ino,
        /// New size in bytes.
        size: u64,
    },
    /// Blocks were allocated to an inode.
    AddExtent {
        /// Target inode.
        ino: Ino,
        /// The new mapping.
        mapping: ExtentMapping,
    },
    /// A logical range of an inode was unmapped (truncate / hole punch).
    RemoveRange {
        /// Target inode.
        ino: Ino,
        /// First logical block unmapped.
        start: Vlba,
        /// Number of blocks unmapped.
        blocks: u64,
    },
}

impl JournalRecord {
    /// On-disk size of this record, used for commit-cost accounting.
    /// Sizes approximate ext4's: a descriptor-tagged block update costs a
    /// few dozen bytes of journal space.
    pub fn bytes(&self) -> u64 {
        match self {
            JournalRecord::Create { name, .. } => 48 + name.len() as u64,
            JournalRecord::Unlink { name } => 32 + name.len() as u64,
            JournalRecord::SetSize { .. } => 32,
            JournalRecord::AddExtent { .. } => 48,
            JournalRecord::RemoveRange { .. } => 48,
        }
    }
}

/// Result of committing a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitInfo {
    /// Transaction sequence number (monotonic from 1).
    pub sequence: u64,
    /// Records committed.
    pub records: usize,
    /// Journal bytes written, including the commit block.
    pub bytes: u64,
}

/// Size of the commit block terminating each transaction.
const COMMIT_BLOCK_BYTES: u64 = 1024;

/// An append-only metadata journal with explicit transactions.
///
/// # Example
///
/// ```
/// use nesc_fs::{Journal, JournalRecord, Ino};
///
/// let mut j = Journal::new();
/// j.append(JournalRecord::SetSize { ino: Ino(1), size: 4096 });
/// let info = j.commit().unwrap();
/// assert_eq!(info.sequence, 1);
/// assert_eq!(info.records, 1);
/// assert_eq!(j.committed_records().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Journal {
    committed: Vec<Vec<JournalRecord>>,
    pending: Vec<JournalRecord>,
    total_bytes: u64,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record to the open transaction.
    pub fn append(&mut self, rec: JournalRecord) {
        self.pending.push(rec);
    }

    /// Commits the open transaction; returns `None` if it was empty (ext4
    /// likewise skips empty commits).
    pub fn commit(&mut self) -> Option<CommitInfo> {
        if self.pending.is_empty() {
            return None;
        }
        let records = std::mem::take(&mut self.pending);
        let bytes = records.iter().map(JournalRecord::bytes).sum::<u64>() + COMMIT_BLOCK_BYTES;
        self.total_bytes += bytes;
        self.committed.push(records);
        Some(CommitInfo {
            sequence: self.committed.len() as u64,
            records: self.committed.last().map(Vec::len).unwrap_or(0),
            bytes,
        })
    }

    /// Discards the open transaction, simulating a crash before commit.
    pub fn crash_discard_pending(&mut self) {
        self.pending.clear();
    }

    /// All committed records in commit order, for replay.
    pub fn committed_records(&self) -> impl Iterator<Item = &JournalRecord> {
        self.committed.iter().flatten()
    }

    /// Committed transaction count.
    pub fn transactions(&self) -> u64 {
        self.committed.len() as u64
    }

    /// Total journal bytes ever written — drives the timing model's
    /// journal-write cost.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Records in the open (uncommitted) transaction.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nesc_extent::Plba;

    #[test]
    fn empty_commit_skipped() {
        let mut j = Journal::new();
        assert!(j.commit().is_none());
        assert_eq!(j.transactions(), 0);
        assert_eq!(j.total_bytes(), 0);
    }

    #[test]
    fn commit_accounts_bytes() {
        let mut j = Journal::new();
        j.append(JournalRecord::AddExtent {
            ino: Ino(1),
            mapping: ExtentMapping::new(Vlba(0), Plba(10), 4),
        });
        j.append(JournalRecord::SetSize {
            ino: Ino(1),
            size: 100,
        });
        let info = j.commit().unwrap();
        assert_eq!(info.records, 2);
        assert_eq!(info.bytes, 48 + 32 + 1024);
        assert_eq!(j.total_bytes(), info.bytes);
    }

    #[test]
    fn crash_discards_only_pending() {
        let mut j = Journal::new();
        j.append(JournalRecord::Unlink { name: "a".into() });
        j.commit();
        j.append(JournalRecord::Unlink { name: "b".into() });
        assert_eq!(j.pending_records(), 1);
        j.crash_discard_pending();
        assert_eq!(j.pending_records(), 0);
        let names: Vec<_> = j
            .committed_records()
            .map(|r| match r {
                JournalRecord::Unlink { name } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["a".to_string()]);
    }

    #[test]
    fn sequences_are_monotonic() {
        let mut j = Journal::new();
        for i in 1..=5u64 {
            j.append(JournalRecord::SetSize {
                ino: Ino(0),
                size: i,
            });
            assert_eq!(j.commit().unwrap().sequence, i);
        }
    }

    #[test]
    fn record_sizes_scale_with_names() {
        let short = JournalRecord::Create {
            ino: Ino(1),
            name: "a".into(),
        };
        let long = JournalRecord::Create {
            ino: Ino(1),
            name: "a-much-longer-name".into(),
        };
        assert!(long.bytes() > short.bytes());
    }
}
