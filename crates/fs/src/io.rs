//! Block I/O abstraction.
//!
//! The filesystem reads and writes data through [`BlockIo`], so the same
//! code serves two roles in the reproduction: the *hypervisor's* filesystem
//! runs over the raw physical device, and a *guest's* filesystem runs over
//! whatever virtual disk its VM was given. A blanket implementation is
//! provided for [`BlockStore`].
//!
//! Addresses here are [`Plba`]s: by the time the filesystem touches a
//! block it has already resolved the file-relative (virtual) offset
//! through its own extent maps, so handing this trait anything but a
//! physical block would be a provenance bug — which is exactly what the
//! typed signature (and lint rule T1) forbids.

use nesc_extent::Plba;
use nesc_storage::{BlockStore, BLOCK_SIZE};

/// Error performing block I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoError {
    /// Access beyond the end of the device.
    OutOfRange {
        /// Offending block address.
        lba: Plba,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// The buffer length did not equal the block size.
    BadLength {
        /// Provided buffer length.
        len: usize,
    },
    /// The backend refused the operation (e.g. a write failure signalled by
    /// a storage controller out of space).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::OutOfRange { lba, capacity } => {
                write!(f, "block {lba} out of range (capacity {capacity})")
            }
            IoError::BadLength { len } => {
                write!(f, "buffer is {len} bytes, expected {BLOCK_SIZE}")
            }
            IoError::Failed { reason } => write!(f, "I/O failed: {reason}"),
        }
    }
}

impl std::error::Error for IoError {}

/// A 1 KiB-block random-access device, addressed by physical block.
pub trait BlockIo {
    /// Device capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Reads one block.
    ///
    /// # Errors
    ///
    /// [`IoError::OutOfRange`] if `lba` is beyond the capacity.
    fn read_block(&mut self, lba: Plba) -> Result<Vec<u8>, IoError>;

    /// Writes one block.
    ///
    /// # Errors
    ///
    /// [`IoError::OutOfRange`] / [`IoError::BadLength`] on bad arguments;
    /// [`IoError::Failed`] if the backend rejects the write.
    fn write_block(&mut self, lba: Plba, data: &[u8]) -> Result<(), IoError>;
}

impl BlockIo for BlockStore {
    fn capacity_blocks(&self) -> u64 {
        BlockStore::capacity_blocks(self)
    }

    fn read_block(&mut self, lba: Plba) -> Result<Vec<u8>, IoError> {
        BlockStore::read_block(self, lba).map_err(|_| IoError::OutOfRange {
            lba,
            capacity: BlockStore::capacity_blocks(self),
        })
    }

    fn write_block(&mut self, lba: Plba, data: &[u8]) -> Result<(), IoError> {
        if data.len() != BLOCK_SIZE as usize {
            return Err(IoError::BadLength { len: data.len() });
        }
        BlockStore::write_block(self, lba, data).map_err(|_| IoError::OutOfRange {
            lba,
            capacity: BlockStore::capacity_blocks(self),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockstore_impl_roundtrips() {
        let mut store = BlockStore::new(8);
        let data = vec![9u8; BLOCK_SIZE as usize];
        BlockIo::write_block(&mut store, Plba(2), &data).unwrap();
        assert_eq!(BlockIo::read_block(&mut store, Plba(2)).unwrap(), data);
        assert_eq!(BlockIo::capacity_blocks(&store), 8);
    }

    #[test]
    fn blockstore_impl_surfaces_errors() {
        let mut store = BlockStore::new(2);
        assert!(matches!(
            BlockIo::read_block(&mut store, Plba(5)),
            Err(IoError::OutOfRange { lba: Plba(5), .. })
        ));
        assert!(matches!(
            BlockIo::write_block(&mut store, Plba(0), &[1, 2]),
            Err(IoError::BadLength { len: 2 })
        ));
    }

    #[test]
    fn error_display() {
        let e = IoError::Failed {
            reason: "quota".into(),
        };
        assert!(e.to_string().contains("quota"));
    }
}
